//! Property-based tests over random series-parallel programs and random
//! deque operation sequences.
//!
//! These were originally written against `proptest`; the build environment
//! is offline, so they now use hand-rolled generators over the in-tree
//! `rand` shim. Each property runs a fixed number of seeded cases, so the
//! suite is deterministic — a failure message prints the case index, which
//! reproduces the exact input.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lhws::dag::builder::Block;
use lhws::dag::offline::{greedy_bound, greedy_schedule, validate_schedule};
use lhws::dag::suspension::{max_prefix_crossing, suspension_width, suspension_width_witness};
use lhws::dag::Metrics;
use lhws::deque::{DequeKind, Steal, WorkerHandle};
use lhws::sim::speedup::{run_lhws, run_ws};

// ---------------------------------------------------------------------
// Random block programs.
// ---------------------------------------------------------------------

/// Random (small) block program: leaves are plain work or a latency
/// followed by work; interior nodes are binary `par` or 1–3-way `seq`,
/// nested up to `depth` levels (mirrors the old proptest strategy).
fn gen_block(rng: &mut StdRng, depth: u32) -> Block {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            Block::work(rng.gen_range(1u64..6))
        } else {
            Block::seq([Block::latency(rng.gen_range(2u64..40)), Block::work(1)])
        };
    }
    if rng.gen_bool(0.5) {
        Block::par(gen_block(rng, depth - 1), gen_block(rng, depth - 1))
    } else {
        let n = rng.gen_range(1usize..4);
        Block::seq(
            (0..n)
                .map(|_| gen_block(rng, depth - 1))
                .collect::<Vec<_>>(),
        )
    }
}

/// Runs `body` for `cases` deterministic seeds, labelling failures with
/// the offending case index (re-run a single case by plugging the index
/// into `StdRng::seed_from_u64(BASE + index)`).
fn for_cases(base_seed: u64, cases: u64, mut body: impl FnMut(&mut StdRng, u64)) {
    for i in 0..cases {
        let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(i));
        body(&mut rng, i);
    }
}

/// Compiled dags always validate and match the block's analytic
/// work/span/U.
#[test]
fn block_compilation_is_consistent() {
    for_cases(0xB10C, 64, |rng, case| {
        let b = gen_block(rng, 5);
        let dag = b.build(); // panics internally if invalid
        let m = Metrics::compute(&dag);
        assert_eq!(m.work, b.analytic_work(), "case {case}");
        assert_eq!(m.span, b.analytic_span(), "case {case}");
        assert_eq!(
            suspension_width(&dag),
            b.analytic_suspension_width(),
            "case {case}"
        );
    });
}

/// The flow-based witness is a valid executed-prefix partition achieving
/// U, and any topological prefix is a lower bound.
#[test]
fn suspension_witness_valid() {
    for_cases(0x5059, 64, |rng, case| {
        let b = gen_block(rng, 5);
        let dag = b.build();
        let (u, in_s) = suspension_width_witness(&dag);
        if u > 0 {
            assert_eq!(
                lhws::dag::suspension::check_partition(&dag, &in_s),
                Some(u),
                "case {case}"
            );
        }
        assert!(
            max_prefix_crossing(&dag, dag.topo_order()) <= u,
            "case {case}"
        );
    });
}

/// Theorem 1 on random programs, all worker counts.
#[test]
fn greedy_bound_holds() {
    for_cases(0x6EED, 64, |rng, case| {
        let b = gen_block(rng, 5);
        let p = rng.gen_range(1usize..12);
        let dag = b.build();
        let s = greedy_schedule(&dag, p);
        assert!(validate_schedule(&dag, &s).is_ok(), "case {case}");
        assert!(s.length <= greedy_bound(&dag, p), "case {case}");
    });
}

/// The LHWS simulator executes every random program correctly and within
/// the paper's structural bounds.
#[test]
fn lhws_sim_correct_on_random_programs() {
    for_cases(0x514A, 64, |rng, case| {
        let b = gen_block(rng, 5);
        let p = rng.gen_range(1usize..9);
        let seed = rng.gen_range(0u64..1000);
        let dag = b.build();
        let u = suspension_width(&dag);
        let s = run_lhws(&dag, p, seed);
        assert!(validate_schedule(&dag, &s.schedule).is_ok(), "case {case}");
        assert_eq!(s.schedule.entries.len(), dag.len(), "case {case}");
        assert!(s.max_deques_per_worker <= u + 1, "Lemma 7, case {case}");
        assert!(s.max_live_suspended <= u, "case {case}");
        assert!(s.token_identity_holds(), "case {case}");
        assert!(
            s.rounds <= s.lemma1_bound(dag.work()) + 1,
            "Lemma 1, case {case}"
        );
    });
}

/// The blocking baseline is also correct (just slower).
#[test]
fn ws_sim_correct_on_random_programs() {
    for_cases(0xB10C2, 64, |rng, case| {
        let b = gen_block(rng, 5);
        let p = rng.gen_range(1usize..9);
        let seed = rng.gen_range(0u64..1000);
        let dag = b.build();
        let s = run_ws(&dag, p, seed);
        assert!(validate_schedule(&dag, &s.schedule).is_ok(), "case {case}");
        assert_eq!(s.schedule.entries.len(), dag.len(), "case {case}");
    });
}

/// Determinism: the same seed replays the same execution.
#[test]
fn sim_deterministic() {
    for_cases(0xDE7E, 64, |rng, case| {
        let b = gen_block(rng, 5);
        let seed = rng.gen_range(0u64..100);
        let dag = b.build();
        let a = run_lhws(&dag, 4, seed);
        let c = run_lhws(&dag, 4, seed);
        assert_eq!(a.rounds, c.rounds, "case {case}");
        assert_eq!(a.steal_attempts, c.steal_attempts, "case {case}");
        assert_eq!(a.schedule.entries, c.schedule.entries, "case {case}");
    });
}

/// Text serialization roundtrips every random program exactly.
#[test]
fn serial_roundtrip() {
    use lhws::dag::serial::{from_text, to_text};
    for_cases(0x5E41, 48, |rng, case| {
        let b = gen_block(rng, 5);
        let dag = b.build();
        let back = from_text(&to_text(&dag)).expect("roundtrip parses");
        assert_eq!(back.len(), dag.len(), "case {case}");
        assert_eq!(
            Metrics::compute(&back),
            Metrics::compute(&dag),
            "case {case}"
        );
        assert_eq!(
            suspension_width(&back),
            suspension_width(&dag),
            "case {case}"
        );
    });
}

/// Both Spoonhower suspension-policy variants execute every random
/// program correctly (they differ in cost, not in correctness).
#[test]
fn suspend_policy_variants_correct() {
    use lhws::sim::{LhwsSim, SimConfig, SuspendPolicy};
    for_cases(0x5057, 48, |rng, case| {
        let b = gen_block(rng, 5);
        let p = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0u64..200);
        let dag = b.build();
        for policy in [SuspendPolicy::WholeDeque, SuspendPolicy::NewDequeOnResume] {
            let s = LhwsSim::new(&dag, SimConfig::new(p).seed(seed).suspend_policy(policy)).run();
            assert!(validate_schedule(&dag, &s.schedule).is_ok(), "case {case}");
            assert_eq!(s.schedule.entries.len(), dag.len(), "case {case}");
        }
    });
}

/// Corollary 1 (enabling span) on random programs at random P.
#[test]
fn enabling_span_bound_random() {
    for_cases(0xE5BA, 48, |rng, case| {
        let b = gen_block(rng, 5);
        let p = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..500);
        let dag = b.build();
        let m = Metrics::compute(&dag);
        let u = suspension_width(&dag);
        let lg = if u <= 1 {
            0
        } else {
            64 - (u - 1).leading_zeros() as u64
        };
        let s = run_lhws(&dag, p, seed);
        let bound = (2 * m.span * (1 + lg)).max(m.span);
        assert!(
            s.enabling_span <= bound,
            "case {case}: S*={} > bound {} (S={}, U={})",
            s.enabling_span,
            bound,
            m.span,
            u
        );
    });
}

// ---------------------------------------------------------------------
// Deque semantics: Chase–Lev vs the mutex oracle.
// ---------------------------------------------------------------------

/// A single-threaded operation sequence applied to both deques must
/// produce identical results (sequential semantics agreement).
#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Steal,
}

fn gen_ops(rng: &mut StdRng) -> Vec<Op> {
    let n = rng.gen_range(0usize..200);
    (0..n)
        .map(|_| match rng.gen_range(0u32..3) {
            0 => Op::Push(rng.gen()),
            1 => Op::Pop,
            _ => Op::Steal,
        })
        .collect()
}

#[test]
fn chase_lev_matches_mutex_oracle() {
    for_cases(0xC1A5, 128, |rng, case| {
        let ops = gen_ops(rng);
        let (cw, cs) = WorkerHandle::<u32>::new(DequeKind::ChaseLev);
        let (mw, ms) = WorkerHandle::<u32>::new(DequeKind::Mutex);
        for op in &ops {
            match op {
                Op::Push(v) => {
                    cw.push_bottom(*v);
                    mw.push_bottom(*v);
                }
                Op::Pop => {
                    assert_eq!(cw.pop_bottom(), mw.pop_bottom(), "case {case}");
                }
                Op::Steal => {
                    // Sequentially, Retry cannot occur.
                    let a = match cs.steal() {
                        Steal::Success(v) => Some(v),
                        _ => None,
                    };
                    let b = match ms.steal() {
                        Steal::Success(v) => Some(v),
                        _ => None,
                    };
                    assert_eq!(a, b, "case {case}");
                }
            }
            assert_eq!(cw.len(), mw.len(), "case {case}");
        }
        // Drain both and compare the leftovers in owner order.
        loop {
            let a = cw.pop_bottom();
            let b = mw.pop_bottom();
            assert_eq!(&a, &b, "case {case}");
            if a.is_none() {
                break;
            }
        }
    });
}

// ---------------------------------------------------------------------
// Concurrent deque linearization under randomized schedules.
// ---------------------------------------------------------------------

/// Under concurrent owner traffic and two thieves, every pushed item is
/// obtained exactly once across pops and steals.
#[test]
fn concurrent_exactly_once() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    for_cases(0xEACE, 8, |rng, case| {
        let total = rng.gen_range(1000usize..5000);
        let burst = rng.gen_range(1usize..8);

        let (w, s) = lhws::deque::chase_lev::deque::<usize>();
        let done = Arc::new(AtomicBool::new(false));
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let s = s.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) && s.is_empty() {
                                    break;
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut mine = Vec::new();
        let mut next = 0;
        while next < total {
            for _ in 0..burst {
                if next < total {
                    w.push_bottom(next);
                    next += 1;
                }
            }
            if let Some(v) = w.pop_bottom() {
                mine.push(v);
            }
        }
        while let Some(v) = w.pop_bottom() {
            mine.push(v);
        }
        done.store(true, Ordering::Release);

        let mut all = mine;
        for t in thieves {
            all.extend(t.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<usize> = (0..total).collect();
        assert_eq!(all, expect, "case {case}");
    });
}
