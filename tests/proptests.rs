//! Property-based tests over random series-parallel programs and random
//! deque operation sequences.

use proptest::prelude::*;

use lhws::dag::builder::Block;
use lhws::dag::offline::{greedy_bound, greedy_schedule, validate_schedule};
use lhws::dag::suspension::{max_prefix_crossing, suspension_width, suspension_width_witness};
use lhws::dag::Metrics;
use lhws::deque::{DequeKind, Steal, WorkerHandle};
use lhws::sim::speedup::{run_lhws, run_ws};

// ---------------------------------------------------------------------
// Random block programs.
// ---------------------------------------------------------------------

/// Strategy for random (small) block programs.
fn arb_block() -> impl Strategy<Value = Block> {
    let leaf = prop_oneof![
        (1u64..6).prop_map(Block::work),
        (2u64..40).prop_map(|d| Block::seq([Block::latency(d), Block::work(1)])),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Block::par(a, b)),
            prop::collection::vec(inner, 1..4).prop_map(Block::seq),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled dags always validate and match the block's analytic
    /// work/span/U.
    #[test]
    fn block_compilation_is_consistent(b in arb_block()) {
        let dag = b.build(); // panics internally if invalid
        let m = Metrics::compute(&dag);
        prop_assert_eq!(m.work, b.analytic_work());
        prop_assert_eq!(m.span, b.analytic_span());
        prop_assert_eq!(suspension_width(&dag), b.analytic_suspension_width());
    }

    /// The flow-based witness is a valid executed-prefix partition
    /// achieving U, and any topological prefix is a lower bound.
    #[test]
    fn suspension_witness_valid(b in arb_block()) {
        let dag = b.build();
        let (u, in_s) = suspension_width_witness(&dag);
        if u > 0 {
            prop_assert_eq!(
                lhws::dag::suspension::check_partition(&dag, &in_s),
                Some(u)
            );
        }
        prop_assert!(max_prefix_crossing(&dag, dag.topo_order()) <= u);
    }

    /// Theorem 1 on random programs, all worker counts.
    #[test]
    fn greedy_bound_holds(b in arb_block(), p in 1usize..12) {
        let dag = b.build();
        let s = greedy_schedule(&dag, p);
        prop_assert!(validate_schedule(&dag, &s).is_ok());
        prop_assert!(s.length <= greedy_bound(&dag, p));
    }

    /// The LHWS simulator executes every random program correctly and
    /// within the paper's structural bounds.
    #[test]
    fn lhws_sim_correct_on_random_programs(
        b in arb_block(),
        p in 1usize..9,
        seed in 0u64..1000,
    ) {
        let dag = b.build();
        let u = suspension_width(&dag);
        let s = run_lhws(&dag, p, seed);
        prop_assert!(validate_schedule(&dag, &s.schedule).is_ok());
        prop_assert_eq!(s.schedule.entries.len(), dag.len());
        prop_assert!(s.max_deques_per_worker <= u + 1, "Lemma 7");
        prop_assert!(s.max_live_suspended <= u);
        prop_assert!(s.token_identity_holds());
        prop_assert!(s.rounds <= s.lemma1_bound(dag.work()) + 1, "Lemma 1");
    }

    /// The blocking baseline is also correct (just slower).
    #[test]
    fn ws_sim_correct_on_random_programs(
        b in arb_block(),
        p in 1usize..9,
        seed in 0u64..1000,
    ) {
        let dag = b.build();
        let s = run_ws(&dag, p, seed);
        prop_assert!(validate_schedule(&dag, &s.schedule).is_ok());
        prop_assert_eq!(s.schedule.entries.len(), dag.len());
    }

    /// Determinism: the same seed replays the same execution.
    #[test]
    fn sim_deterministic(b in arb_block(), seed in 0u64..100) {
        let dag = b.build();
        let a = run_lhws(&dag, 4, seed);
        let c = run_lhws(&dag, 4, seed);
        prop_assert_eq!(a.rounds, c.rounds);
        prop_assert_eq!(a.steal_attempts, c.steal_attempts);
        prop_assert_eq!(a.schedule.entries, c.schedule.entries);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Text serialization roundtrips every random program exactly.
    #[test]
    fn serial_roundtrip(b in arb_block()) {
        use lhws::dag::serial::{from_text, to_text};
        let dag = b.build();
        let back = from_text(&to_text(&dag)).expect("roundtrip parses");
        prop_assert_eq!(back.len(), dag.len());
        prop_assert_eq!(
            Metrics::compute(&back),
            Metrics::compute(&dag)
        );
        prop_assert_eq!(suspension_width(&back), suspension_width(&dag));
    }

    /// Both Spoonhower suspension-policy variants execute every random
    /// program correctly (they differ in cost, not in correctness).
    #[test]
    fn suspend_policy_variants_correct(
        b in arb_block(),
        p in 1usize..6,
        seed in 0u64..200,
    ) {
        use lhws::sim::{LhwsSim, SimConfig, SuspendPolicy};
        let dag = b.build();
        for policy in [SuspendPolicy::WholeDeque, SuspendPolicy::NewDequeOnResume] {
            let s = LhwsSim::new(
                &dag,
                SimConfig::new(p).seed(seed).suspend_policy(policy),
            )
            .run();
            prop_assert!(validate_schedule(&dag, &s.schedule).is_ok());
            prop_assert_eq!(s.schedule.entries.len(), dag.len());
        }
    }

    /// Corollary 1 (enabling span) on random programs at random P.
    #[test]
    fn enabling_span_bound_random(
        b in arb_block(),
        p in 1usize..8,
        seed in 0u64..500,
    ) {
        let dag = b.build();
        let m = Metrics::compute(&dag);
        let u = suspension_width(&dag);
        let lg = if u <= 1 { 0 } else { 64 - (u - 1).leading_zeros() as u64 };
        let s = run_lhws(&dag, p, seed);
        let bound = (2 * m.span * (1 + lg)).max(m.span);
        prop_assert!(
            s.enabling_span <= bound,
            "S*={} > bound {} (S={}, U={})",
            s.enabling_span, bound, m.span, u
        );
    }
}

// ---------------------------------------------------------------------
// Deque semantics: Chase–Lev vs the mutex oracle.
// ---------------------------------------------------------------------

/// A single-threaded operation sequence applied to both deques must
/// produce identical results (sequential semantics agreement).
#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Steal,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Steal),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chase_lev_matches_mutex_oracle(ops in arb_ops()) {
        let (cw, cs) = WorkerHandle::<u32>::new(DequeKind::ChaseLev);
        let (mw, ms) = WorkerHandle::<u32>::new(DequeKind::Mutex);
        for op in &ops {
            match op {
                Op::Push(v) => {
                    cw.push_bottom(*v);
                    mw.push_bottom(*v);
                }
                Op::Pop => {
                    prop_assert_eq!(cw.pop_bottom(), mw.pop_bottom());
                }
                Op::Steal => {
                    // Sequentially, Retry cannot occur.
                    let a = match cs.steal() { Steal::Success(v) => Some(v), _ => None };
                    let b = match ms.steal() { Steal::Success(v) => Some(v), _ => None };
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(cw.len(), mw.len());
        }
        // Drain both and compare the leftovers in owner order.
        loop {
            let a = cw.pop_bottom();
            let b = mw.pop_bottom();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Concurrent deque linearization under randomized schedules.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under concurrent owner traffic and two thieves, every pushed item
    /// is obtained exactly once across pops and steals.
    #[test]
    fn concurrent_exactly_once(total in 1000usize..5000, burst in 1usize..8) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let (w, s) = lhws::deque::chase_lev::deque::<usize>();
        let done = Arc::new(AtomicBool::new(false));
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let s = s.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) && s.is_empty() {
                                    break;
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut mine = Vec::new();
        let mut next = 0;
        while next < total {
            for _ in 0..burst {
                if next < total {
                    w.push_bottom(next);
                    next += 1;
                }
            }
            if let Some(v) = w.pop_bottom() {
                mine.push(v);
            }
        }
        while let Some(v) = w.pop_bottom() {
            mine.push(v);
        }
        done.store(true, Ordering::Release);

        let mut all = mine;
        for t in thieves {
            all.extend(t.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<usize> = (0..total).collect();
        prop_assert_eq!(all, expect);
    }
}
