//! Cross-crate integration tests: the dag model, the simulator, and the
//! real runtime must tell one consistent story.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws::dag::gen::{
    fib, map_reduce, pipeline, random_sp, scatter_gather, server, RandomSpParams,
};
use lhws::dag::offline::{greedy_bound, greedy_schedule, validate_schedule};
use lhws::dag::{suspension_width, Metrics};
use lhws::runtime::{
    fork2, par_map_reduce, simulate_latency, Config, LatencyMode, LatencyProfile, RemoteService,
    Runtime,
};
use lhws::sim::speedup::{run_lhws, run_ws, speedup_sweep};
use lhws::sim::{LhwsSim, SimConfig};

// ---------------------------------------------------------------------
// Model ↔ simulator consistency.
// ---------------------------------------------------------------------

#[test]
fn every_family_validates_under_both_simulators() {
    let dags = [
        map_reduce(32, 30, 6, 1).dag,
        server(20, 25, 6, 1).dag,
        fib(12, 4).dag,
        pipeline(6, 3, 20, 2).dag,
        scatter_gather(32, 80, 3).dag,
    ];
    for (i, dag) in dags.iter().enumerate() {
        for p in [1usize, 2, 5, 9] {
            let lh = run_lhws(dag, p, i as u64);
            validate_schedule(dag, &lh.schedule)
                .unwrap_or_else(|e| panic!("LHWS dag {i} P={p}: {e}"));
            let ws = run_ws(dag, p, i as u64);
            validate_schedule(dag, &ws.schedule)
                .unwrap_or_else(|e| panic!("WS dag {i} P={p}: {e}"));
        }
    }
}

#[test]
fn greedy_is_a_lower_envelope_for_online_schedulers() {
    // The centralized greedy scheduler (perfect knowledge, no steal
    // overhead) should never lose to the online ones by running longer
    // than its own bound, and the online LHWS should stay within a modest
    // multiple of greedy on parallel workloads.
    let wl = map_reduce(64, 50, 8, 1);
    for p in [2usize, 4, 8] {
        let g = greedy_schedule(&wl.dag, p);
        let lh = run_lhws(&wl.dag, p, 3);
        assert!(g.length <= greedy_bound(&wl.dag, p));
        assert!(
            lh.rounds >= g.length,
            "online cannot beat offline greedy: {} < {}",
            lh.rounds,
            g.length
        );
    }
}

#[test]
fn suspension_width_bounds_live_suspensions_everywhere() {
    for seed in 0..10 {
        let wl = random_sp(RandomSpParams::default().seed(seed).target_leaves(40));
        let u = suspension_width(&wl.dag);
        for p in [1usize, 4] {
            let s = run_lhws(&wl.dag, p, seed);
            assert!(s.max_live_suspended <= u, "seed {seed} P={p}");
            assert!(
                s.max_deques_per_worker <= u + 1,
                "Lemma 7, seed {seed} P={p}"
            );
        }
    }
}

#[test]
fn figure11_shape_holds_in_simulation() {
    // High latency: LHWS superlinear, far above WS. Low latency: close.
    let high = map_reduce(128, 2_000, 20, 1);
    let pts = speedup_sweep(&high.dag, &[8], 1);
    assert!(
        pts[0].lhws_speedup_x100 > 3 * pts[0].ws_speedup_x100,
        "delta >> work: LHWS should be >3x WS ({} vs {})",
        pts[0].lhws_speedup_x100,
        pts[0].ws_speedup_x100
    );

    let low = map_reduce(128, 5, 20, 1);
    let pts = speedup_sweep(&low.dag, &[8], 1);
    assert!(
        pts[0].lhws_speedup_x100 < 2 * pts[0].ws_speedup_x100,
        "delta << work: curves should be close"
    );
}

// ---------------------------------------------------------------------
// Simulator ↔ runtime consistency.
// ---------------------------------------------------------------------

#[test]
fn runtime_and_simulator_agree_on_who_wins() {
    // Same workload shape on both: map-reduce with latency >> leaf work.
    // The simulator says LHWS wins big; the real runtime must too.
    let wl = map_reduce(32, 4_000, 10, 1);
    let sim_lh = run_lhws(&wl.dag, 2, 5).rounds;
    let sim_ws = run_ws(&wl.dag, 2, 5).rounds;
    assert!(sim_ws > 2 * sim_lh, "simulator: LHWS wins");

    let run = |mode| {
        let rt = Runtime::new(Config::default().workers(2).mode(mode)).unwrap();
        let start = Instant::now();
        rt.block_on(async {
            let hs: Vec<_> = (0..32)
                .map(|_| {
                    lhws::runtime::spawn(async {
                        simulate_latency(Duration::from_millis(20)).await;
                    })
                })
                .collect();
            for h in hs {
                h.await;
            }
        });
        start.elapsed()
    };
    let hide = run(LatencyMode::Hide);
    let block = run(LatencyMode::Block);
    assert!(
        block > hide * 2,
        "runtime: LHWS must win too (hide {hide:?}, block {block:?})"
    );
}

#[test]
fn u_zero_reduction_on_both() {
    let wl = fib(13, 4);
    let s = run_lhws(&wl.dag, 4, 2);
    assert_eq!(s.max_deques_per_worker, 1);
    assert_eq!(s.pfor_vertices, 0);

    let rt = Runtime::new(Config::default().workers(4)).unwrap();
    fn pfib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
        Box::pin(async move {
            if n < 10 {
                (0..n).fold((0u64, 1u64), |(a, b), _| (b, a + b)).0
            } else {
                let (a, b) = fork2(pfib(n - 1), pfib(n - 2)).await;
                a + b
            }
        })
    }
    rt.block_on(pfib(18));
    let m = rt.metrics();
    assert_eq!(m.max_deques_per_worker, 1, "runtime U=0 reduction");
    assert_eq!(m.suspensions, 0);
}

// ---------------------------------------------------------------------
// End-to-end through the facade.
// ---------------------------------------------------------------------

#[test]
fn facade_map_reduce_end_to_end() {
    let rt = Runtime::new(Config::default().workers(3)).unwrap();
    let svc = Arc::new(RemoteService::new(
        "s",
        LatencyProfile::Uniform(Duration::from_millis(1), Duration::from_millis(6)),
    ));
    let got = rt.block_on(async move {
        par_map_reduce(
            0,
            48,
            move |i| {
                let svc = svc.clone();
                async move { svc.request(i, |k| k * k).await }
            },
            |a, b| a + b,
            0,
        )
        .await
    });
    assert_eq!(got, (0..48).map(|i| i * i).sum::<u64>());
    let m = rt.metrics();
    assert_eq!(m.suspensions, 48);
    assert_eq!(m.resumes, 48);
}

#[test]
fn metrics_pair_suspensions_and_resumes() {
    let rt = Runtime::new(Config::default().workers(2)).unwrap();
    rt.block_on(async {
        for _ in 0..3 {
            let (_, _) = fork2(
                async { simulate_latency(Duration::from_millis(2)).await },
                async { simulate_latency(Duration::from_millis(3)).await },
            )
            .await;
        }
    });
    // Give the timer a beat in case the last resume raced block_on's end.
    std::thread::sleep(Duration::from_millis(20));
    let m = rt.metrics();
    assert_eq!(m.suspensions, 6);
    assert_eq!(m.resumes, 6);
}

#[test]
fn dag_metrics_are_consistent_across_crates() {
    // The facade re-exports must expose one coherent view.
    let wl = map_reduce(16, 40, 4, 1);
    let m = Metrics::compute(&wl.dag);
    assert_eq!(m.work, wl.dag.work());
    assert_eq!(suspension_width(&wl.dag), 16);
    let stats = LhwsSim::new(&wl.dag, SimConfig::new(4)).run();
    assert_eq!(
        stats.schedule.entries.len() as u64,
        m.work,
        "every vertex executed exactly once"
    );
}
