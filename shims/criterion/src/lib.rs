//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! external dependencies cannot be fetched. This crate implements the
//! subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups, `Bencher::iter` / `iter_batched`, [`BatchSize`], [`black_box`]
//! — with a simple warmup + fixed-sample measurement loop instead of
//! criterion's statistical machinery.
//!
//! Supported command-line flags (after `--` with `cargo bench`):
//!
//! * `--test` — run every benchmark exactly once (smoke mode; what
//!   `cargo bench -- --test` does in real criterion).
//! * `--quick` — drastically shortened measurement (1 sample).
//! * any bare argument — substring filter on benchmark names.
//! * `--bench` (passed by cargo itself) — ignored.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. Only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            test_mode: false,
            quick: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`--test`, `--quick`, name filter).
    pub fn configure_from_args(mut self) -> Self {
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => self.test_mode = true,
                "--quick" => self.quick = true,
                "--bench" => {}
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            c: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.run_one(&id, sample_size, measurement_time, f);
    }

    fn run_one(
        &self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher::test_mode();
            f(&mut b);
            println!("Testing {id} ... ok");
            return;
        }
        let (sample_size, measurement_time) = if self.quick {
            (1, measurement_time / 10)
        } else {
            (sample_size, measurement_time)
        };

        // Warmup + per-iteration estimate.
        let mut b = Bencher::calibration(measurement_time / 10);
        f(&mut b);
        let est = b.estimate_ns().max(1);

        // Choose iterations per sample to fill the measurement budget.
        let budget_ns = measurement_time.as_nanos() as u64 / sample_size.max(1) as u64;
        let iters = (budget_ns / est).clamp(1, 1_000_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher::measure(iters);
            f(&mut b);
            samples_ns.push(b.elapsed_ns() as f64 / b.iters_done().max(1) as f64);
        }
        samples_ns.sort_by(|a, z| a.partial_cmp(z).expect("no NaN"));
        let min = samples_ns.first().copied().unwrap_or(0.0);
        let max = samples_ns.last().copied().unwrap_or(0.0);
        let median = samples_ns[samples_ns.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max),
            sample_size,
            iters,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark named `group/id`.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        let (s, m) = (self.sample_size, self.measurement_time);
        self.c.run_one(&id, s, m, f);
    }

    /// Ends the group (nothing to flush in this implementation).
    pub fn finish(self) {}
}

enum Mode {
    /// Run the payload exactly once.
    Test,
    /// Keep running payloads until the deadline; record count + time.
    Calibrate(Duration),
    /// Run exactly `iters` payload executions.
    Measure(u64),
}

/// Passed to benchmark closures; runs the measured payload.
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters_done: u64,
}

impl std::fmt::Debug for Bencher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bencher").finish_non_exhaustive()
    }
}

impl Bencher {
    fn test_mode() -> Self {
        Bencher {
            mode: Mode::Test,
            elapsed: Duration::ZERO,
            iters_done: 0,
        }
    }

    fn calibration(budget: Duration) -> Self {
        Bencher {
            mode: Mode::Calibrate(budget.max(Duration::from_millis(10))),
            elapsed: Duration::ZERO,
            iters_done: 0,
        }
    }

    fn measure(iters: u64) -> Self {
        Bencher {
            mode: Mode::Measure(iters),
            elapsed: Duration::ZERO,
            iters_done: 0,
        }
    }

    fn estimate_ns(&self) -> u64 {
        (self.elapsed.as_nanos() as u64) / self.iters_done.max(1)
    }

    fn elapsed_ns(&self) -> u64 {
        self.elapsed.as_nanos() as u64
    }

    fn iters_done(&self) -> u64 {
        self.iters_done
    }

    /// Measures repeated executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                self.iters_done = 1;
            }
            Mode::Calibrate(budget) => {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < budget || n == 0 {
                    black_box(routine());
                    n += 1;
                }
                self.elapsed = start.elapsed();
                self.iters_done = n;
            }
            Mode::Measure(iters) => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
                self.iters_done = iters;
            }
        }
    }

    /// Measures `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        match self.mode {
            Mode::Test => {
                let input = setup();
                black_box(routine(input));
                self.iters_done = 1;
            }
            Mode::Calibrate(budget) => {
                let mut total = Duration::ZERO;
                let mut n = 0u64;
                let wall = Instant::now();
                while wall.elapsed() < budget || n == 0 {
                    let input = setup();
                    let t = Instant::now();
                    black_box(routine(input));
                    total += t.elapsed();
                    n += 1;
                }
                self.elapsed = total;
                self.iters_done = n;
            }
            Mode::Measure(iters) => {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let t = Instant::now();
                    black_box(routine(input));
                    total += t.elapsed();
                }
                self.elapsed = total;
                self.iters_done = iters;
            }
        }
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut b = Bencher::measure(10);
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 10);
        assert_eq!(b.iters_done(), 10);
    }

    #[test]
    fn batched_setup_excluded() {
        let mut b = Bencher::measure(5);
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                42u64
            },
            |v| v * 2,
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 5);
    }

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher::test_mode();
        let mut n = 0;
        b.iter(|| n += 1);
        assert_eq!(n, 1);
    }
}
