//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! external dependencies cannot be fetched. This crate provides the subset
//! of the `rand` 0.8 API surface the workspace uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12, but the workspace only relies on
//! *determinism per seed*, never on a specific stream.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly sampleable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the inclusive range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                // Unbiased widening-multiply mapping (Lemire) with a
                // rejection step for the biased low zone.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return lo.wrapping_add((m >> 64) as u64 as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let ulo = (lo as $u).wrapping_add(<$t>::MIN as $u);
                let uhi = (hi as $u).wrapping_add(<$t>::MIN as $u);
                let v = <$u>::sample_inclusive(rng, ulo, uhi);
                v.wrapping_sub(<$t>::MIN as $u) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T>
where
    T: SteppedDown,
{
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Helper: predecessor of an integer (to convert `..end` to `..=end-1`).
pub trait SteppedDown {
    /// `self - 1`.
    fn step_down(self) -> Self;
}

macro_rules! impl_stepped_down {
    ($($t:ty),*) => {$(
        impl SteppedDown for $t {
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}
impl_stepped_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension trait with the user-facing sampling methods.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let x: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn gen_typed() {
        let mut r = StdRng::seed_from_u64(4);
        let _: u64 = r.gen();
        let _: u32 = r.gen();
        let b: f64 = r.gen();
        assert!((0.0..1.0).contains(&b));
    }
}
