//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! external dependencies cannot be fetched. This crate provides the subset
//! of the `parking_lot` API the workspace actually uses — `Mutex`,
//! `MutexGuard`, `Condvar`, `WaitTimeoutResult`, `RwLock` — as thin
//! wrappers over `std::sync`. Poisoning is swallowed (parking_lot has no
//! poisoning): a panic while holding a lock does not poison it for later
//! users, matching parking_lot semantics closely enough for this workspace.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed:
    /// the exclusive borrow proves unique access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the `parking_lot::Condvar` API shape.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. May wake spuriously.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 3);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn lock_survives_panic_in_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot has no poisoning; neither do we.
        assert_eq!(*m.lock(), 0);
    }
}
