//! Property tests for the registry's live-set index: sampling uniformity,
//! no lost deques across concurrent register/release/reuse churn (including
//! segment growth and shard-list compaction), and the recycled-slot ABA
//! guard on the swap-remove back-pointers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use lhws_deque::{DequeId, DequeKind, Registry, Steal, WorkerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Registers `n` deques owned round-robin by `owners` workers, returning
/// the ids and their owner-side handles (kept alive so the stealers work).
fn register_n(
    reg: &Registry<u64>,
    n: usize,
    owners: usize,
) -> (Vec<DequeId>, Vec<WorkerHandle<u64>>) {
    let mut ids = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        ids.push(reg.register(i % owners, s).unwrap());
        handles.push(w);
    }
    (ids, handles)
}

#[test]
fn live_sampling_is_roughly_uniform() {
    // 64 live deques, 4 shards, 64k draws: every deque should land within
    // a generous band around the expected 1/64 frequency. A swap-remove
    // index that skewed toward one shard or slot order would blow the band.
    let reg: Registry<u64> = Registry::with_capacity_and_shards(256, 4);
    let (ids, _handles) = register_n(&reg, 64, 8);
    let mut rng = StdRng::seed_from_u64(42);
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let draws = 64 * 1024u64;
    for _ in 0..draws {
        let id = reg.random_live_id(rng.gen()).expect("live set non-empty");
        *counts.entry(id.0).or_default() += 1;
    }
    assert_eq!(counts.len(), ids.len(), "every live deque must be drawn");
    let expected = draws as f64 / ids.len() as f64;
    for (id, c) in counts {
        let ratio = c as f64 / expected;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "deque {id} drawn {c} times (expected ~{expected:.0}); ratio {ratio:.2}"
        );
    }
}

#[test]
fn live_sampling_uniform_after_churn() {
    // Release half the deques (interleaved), then re-register new ones:
    // sampling must stay uniform over the *surviving* set and never draw a
    // released id.
    let reg: Registry<u64> = Registry::with_capacity_and_shards(512, 4);
    let (ids, _handles) = register_n(&reg, 128, 8);
    for id in ids.iter().step_by(2) {
        reg.release(*id);
    }
    let (new_ids, _new_handles) = register_n(&reg, 32, 8);
    let survivors: std::collections::HashSet<u32> = ids
        .iter()
        .skip(1)
        .step_by(2)
        .chain(new_ids.iter())
        .map(|id| id.0)
        .collect();
    let mut rng = StdRng::seed_from_u64(7);
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let draws = 96 * 1024u64;
    for _ in 0..draws {
        let id = reg.random_live_id(rng.gen()).expect("live set non-empty");
        assert!(survivors.contains(&id.0), "drew released deque {id}");
        *counts.entry(id.0).or_default() += 1;
    }
    assert_eq!(counts.len(), survivors.len());
    let expected = draws as f64 / survivors.len() as f64;
    for (id, c) in counts {
        let ratio = c as f64 / expected;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "deque {id} drawn {c} times (expected ~{expected:.0}); ratio {ratio:.2}"
        );
    }
}

#[test]
fn concurrent_churn_loses_no_deque() {
    // Owners churn their deques through release/reuse cycles (driving
    // shard-list swap-removes, back-pointer fixups, and compactions) while
    // thieves hammer `random_live_id` + `steal`. Afterwards every deque
    // must be exactly where its owner left it: live iff the owner's last
    // action was reuse/register, and `random_live_id` must still reach
    // every live deque.
    const OWNERS: usize = 4;
    const PER_OWNER: usize = 64;
    const ROUNDS: usize = 400;

    let reg: Arc<Registry<u64>> = Arc::new(Registry::with_capacity_and_shards(4096, OWNERS));
    let stop = Arc::new(AtomicBool::new(false));
    let stolen = Arc::new(AtomicU64::new(0));

    let thieves: Vec<_> = (0..3)
        .map(|t| {
            let reg = reg.clone();
            let stop = stop.clone();
            let stolen = stolen.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + t);
                while !stop.load(Ordering::Relaxed) {
                    if let Some(id) = reg.random_live_id(rng.gen()) {
                        if let Steal::Success(_) = reg.steal(id) {
                            stolen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    let owners: Vec<_> = (0..OWNERS)
        .map(|o| {
            let reg = reg.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(o as u64);
                let mut deques = Vec::new();
                for i in 0..PER_OWNER {
                    let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
                    let id = reg.register(o, s).unwrap();
                    w.push_bottom((o * PER_OWNER + i) as u64);
                    deques.push((id, w, true));
                }
                for _ in 0..ROUNDS {
                    let i = rng.gen_range(0..deques.len());
                    let (id, w, live) = &mut deques[i];
                    if *live {
                        // Owner retires the deque: drain it first so a
                        // recycled deque starts empty, as in the runtime.
                        while w.pop_bottom().is_some() {}
                        reg.release(*id);
                        *live = false;
                    } else {
                        reg.reuse(*id);
                        w.push_bottom(0xBEEF);
                        *live = true;
                    }
                }
                deques
                    .into_iter()
                    .map(|(id, w, live)| (id, live, w))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let final_states: Vec<_> = owners.into_iter().flat_map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    for t in thieves {
        t.join().unwrap();
    }

    // No deque lost or resurrected: the index agrees with each owner's
    // final action, and the live count adds up.
    let want_live = final_states.iter().filter(|(_, live, _)| *live).count();
    assert_eq!(reg.live_len(), want_live);
    for (id, live, _w) in &final_states {
        assert_eq!(
            reg.is_live(*id),
            *live,
            "deque {id} index state diverged from owner history"
        );
    }
    // Sampling still reaches every live deque after the churn.
    let mut rng = StdRng::seed_from_u64(99);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..200_000 {
        if let Some(id) = reg.random_live_id(rng.gen()) {
            seen.insert(id.0);
        }
        if seen.len() == want_live {
            break;
        }
    }
    assert_eq!(seen.len(), want_live, "some live deque became unreachable");
    assert!(reg.live_high_water() >= want_live);
}

#[test]
fn recycled_slot_aba_guard_holds() {
    // Rapid release/reuse of the same id interleaved with churn of its
    // shard neighbors: the back-pointer fix-up after swap_remove must
    // always track the *current* position, and a reuse after release must
    // land the id back exactly once. A classic ABA bug here would corrupt
    // a neighbor's back-pointer and lose it from the index.
    let reg: Registry<u64> = Registry::with_capacity_and_shards(256, 1);
    let (ids, _handles) = register_n(&reg, 16, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let mut live = vec![true; ids.len()];
    for _ in 0..10_000 {
        let i = rng.gen_range(0..ids.len());
        if live[i] {
            reg.release(ids[i]);
        } else {
            reg.reuse(ids[i]);
        }
        live[i] = !live[i];
        // Invariant after every step: the index is exactly the live set.
        let want = live.iter().filter(|l| **l).count();
        assert_eq!(reg.live_len(), want);
    }
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(reg.is_live(*id), live[i]);
    }
    // Every surviving deque is still reachable by sampling.
    let want: std::collections::HashSet<u32> = ids
        .iter()
        .zip(&live)
        .filter(|(_, l)| **l)
        .map(|(id, _)| id.0)
        .collect();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..100_000 {
        if let Some(id) = reg.random_live_id(rng.gen()) {
            seen.insert(id.0);
        }
        if seen.len() == want.len() {
            break;
        }
    }
    assert_eq!(seen, want);
}

#[test]
fn growth_across_segments_keeps_index_consistent() {
    // Drive allocation well past several segment boundaries (8, 24, 56,
    // 120, 248...) while releasing every third deque: `len()` (allocated
    // prefix), `live_len()`, and per-id `is_live` must stay consistent,
    // and compaction must never drop a survivor.
    let reg: Registry<u64> = Registry::with_capacity_and_shards(2048, 2);
    let mut handles = Vec::new();
    let mut expect_live = Vec::new();
    for i in 0..1000usize {
        let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        let id = reg.register(i % 2, s).unwrap();
        handles.push(w);
        if i % 3 == 0 {
            reg.release(id);
        } else {
            expect_live.push(id);
        }
    }
    assert_eq!(reg.len(), 1000);
    assert_eq!(reg.live_len(), expect_live.len());
    for id in &expect_live {
        assert!(reg.is_live(*id));
    }
    // Mass release to force compaction; survivors stay intact.
    let survivors: Vec<_> = expect_live.split_off(expect_live.len() - 8);
    for id in &expect_live {
        reg.release(*id);
    }
    assert!(reg.compactions() > 0, "mass release must compact shards");
    assert_eq!(reg.live_len(), survivors.len());
    for id in &survivors {
        assert!(reg.is_live(*id), "compaction lost deque {id}");
    }
}
