//! Property tests for steal-half batching ([`StealerHandle::steal_batch_into`]).
//!
//! The batch steal claims items one CAS at a time precisely because a
//! single wide CAS of `top` could double-take items the LIFO owner
//! already popped (see the method docs). These tests drive that race
//! hard: concurrent thieves batch-stealing against an owner that pushes
//! and pops in bursts must neither lose nor duplicate a single item, and
//! every batch must come out in original top-to-bottom order.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lhws_deque::{DequeKind, Steal, StealerHandle, WorkerHandle};

/// Concurrent churn: owner pushes `items` in bursts and pops some back
/// while `thieves` batch-steal with the given limit. Returns
/// (owner-popped values, per-thief stolen batches).
fn churn(
    kind: DequeKind,
    items: usize,
    thieves: usize,
    limit: usize,
) -> (Vec<usize>, Vec<Vec<Vec<usize>>>) {
    let (w, s) = WorkerHandle::<usize>::new(kind);
    let done = Arc::new(AtomicBool::new(false));

    let handles: Vec<_> = (0..thieves)
        .map(|_| {
            let s: StealerHandle<usize> = s.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut batches: Vec<Vec<usize>> = Vec::new();
                let mut scratch = Vec::new();
                loop {
                    scratch.clear();
                    match s.steal_batch_into(limit, &mut scratch) {
                        Steal::Success(n) => {
                            assert_eq!(n, scratch.len(), "count matches items appended");
                            assert!(n >= 1 && n <= limit.max(1), "batch within bounds");
                            batches.push(scratch.clone());
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && s.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                batches
            })
        })
        .collect();

    let mut popped = Vec::new();
    let mut next = 0usize;
    while next < items {
        let burst = 1 + next % 7;
        for _ in 0..burst {
            if next < items {
                w.push_bottom(next);
                next += 1;
            }
        }
        if next.is_multiple_of(3) {
            if let Some(v) = w.pop_bottom() {
                popped.push(v);
            }
        }
    }
    while let Some(v) = w.pop_bottom() {
        popped.push(v);
    }
    done.store(true, Ordering::Release);

    let stolen = handles.into_iter().map(|h| h.join().unwrap()).collect();
    (popped, stolen)
}

#[test]
fn concurrent_steal_half_loses_and_duplicates_nothing() {
    const ITEMS: usize = 50_000;
    for kind in [DequeKind::ChaseLev, DequeKind::Mutex] {
        let (popped, stolen) = churn(kind, ITEMS, 4, 16);
        let mut all = popped;
        for batches in stolen {
            for b in batches {
                all.extend(b);
            }
        }
        assert_eq!(all.len(), ITEMS, "{kind:?}: every item seen exactly once");
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), ITEMS, "{kind:?}: no duplicates");
    }
}

#[test]
fn concurrent_batches_preserve_original_order() {
    // Values are pushed in increasing order and never move between
    // indices (owner pops vacate bottom indices, which later pushes
    // refill with strictly larger values), so a correct batch — claimed
    // from consecutive top indices — is strictly increasing. A reordered
    // or duplicated claim would break monotonicity.
    const ITEMS: usize = 30_000;
    let (_popped, stolen) = churn(DequeKind::ChaseLev, ITEMS, 4, 8);
    let mut batched_items = 0usize;
    for batches in &stolen {
        for b in batches {
            for pair in b.windows(2) {
                assert!(
                    pair[1] > pair[0],
                    "batch must preserve top-to-bottom order, got {b:?}"
                );
            }
            batched_items += b.len();
        }
    }
    assert!(batched_items > 0, "thieves stole something");
}

#[test]
fn batch_limit_one_is_identical_to_single_steal() {
    // Drive two deques through the same operation sequence, one stealing
    // with `steal()` and one with `steal_batch_into(1, ..)`; every
    // observable result must match step for step.
    for kind in [DequeKind::ChaseLev, DequeKind::Mutex] {
        let (w1, s1) = WorkerHandle::<usize>::new(kind);
        let (w2, s2) = WorkerHandle::<usize>::new(kind);
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = 0usize;
        for _ in 0..10_000 {
            // SplitMix-style op mix: push / owner pop / thief steal.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match x >> 61 {
                0..=2 => {
                    w1.push_bottom(next);
                    w2.push_bottom(next);
                    next += 1;
                }
                3..=4 => {
                    assert_eq!(w1.pop_bottom(), w2.pop_bottom(), "{kind:?} pop diverged");
                }
                _ => {
                    let single = s1.steal().success();
                    let mut out = Vec::new();
                    let batch = match s2.steal_batch_into(1, &mut out) {
                        Steal::Success(n) => {
                            assert_eq!(n, 1, "limit=1 never claims more than one");
                            Some(out[0])
                        }
                        _ => None,
                    };
                    assert_eq!(single, batch, "{kind:?} steal diverged");
                }
            }
        }
        assert_eq!(w1.len(), w2.len(), "{kind:?} final lengths diverged");
    }
}

#[test]
fn steal_half_drains_deep_deque_geometrically() {
    // Repeated uncapped steal-half against a quiescent owner must take
    // ceil(live/2) every time: 4096 → 2048 → 1024 → … → 1 → Empty.
    let (w, s) = WorkerHandle::<usize>::new(DequeKind::ChaseLev);
    for i in 0..4096 {
        w.push_bottom(i);
    }
    let mut expect_live = 4096usize;
    let mut out = Vec::new();
    while expect_live > 0 {
        out.clear();
        let want = expect_live.div_ceil(2);
        assert_eq!(
            s.steal_batch_into(usize::MAX, &mut out),
            Steal::Success(want)
        );
        expect_live -= want;
    }
    assert_eq!(s.steal_batch_into(usize::MAX, &mut out), Steal::Empty);
}
