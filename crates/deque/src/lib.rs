//! Work-stealing deque substrate for latency-hiding work stealing.
//!
//! The SPAA'16 paper builds on three deque-related pieces, all provided here:
//!
//! 1. **A lock-free work-stealing deque** ([`chase_lev`]) — the classic
//!    Chase–Lev growable circular deque (the paper's citation \[11\]),
//!    implemented from scratch on atomics. The owner pushes and pops at the
//!    bottom; any number of thieves steal from the top.
//! 2. **A mutex-based deque** ([`mutex_deque`]) with the same handle API,
//!    used as a correctness oracle in tests and as an ablation point for the
//!    benchmarks ("how much does the lock-free deque matter?").
//! 3. **The global deque registry** ([`registry`]) — the paper's `gDeques`
//!    array plus `gTotalDeques` counter (Figure 5). Deques are allocated with
//!    a fetch-and-add, are never deallocated, and are recycled through
//!    per-worker free lists. Thieves pick a uniformly random slot; hitting a
//!    freed (empty) deque is simply a failed steal, exactly as analyzed.
//!
//! The two deque implementations are unified behind the [`WorkerHandle`] /
//! [`StealerHandle`] enums so the runtime can switch implementations from a
//! config knob without generics spreading through every scheduler type.

#![warn(missing_docs)]

pub mod chase_lev;
pub mod mutex_deque;
pub mod registry;

pub use chase_lev::{ChaseLevStealer, ChaseLevWorker};
pub use mutex_deque::{MutexStealer, MutexWorker};
pub use registry::{DequeId, Registry, RegistryError};

/// Outcome of a steal attempt on the top end of a deque.
///
/// Mirrors the three-way result of the Chase–Lev `steal` operation: the deque
/// may be observed empty, the thief may lose a race (and should retry or move
/// on), or it may win an item.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// The thief lost a race with the owner or another thief.
    Retry,
    /// The steal succeeded.
    Success(T),
}

impl<T> Steal<T> {
    /// Returns the stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    /// True if the steal attempt observed an empty deque.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if the thief lost a race and may retry.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// Which deque implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DequeKind {
    /// The lock-free Chase–Lev deque (default; the paper's choice).
    #[default]
    ChaseLev,
    /// A mutex-protected `VecDeque` with identical semantics.
    Mutex,
}

/// Owner-side handle of either deque implementation.
///
/// Exactly one `WorkerHandle` exists per deque; it is not `Sync` and not
/// `Clone`, which statically enforces the single-owner discipline the
/// Chase–Lev algorithm requires ("each deque is always owned by the same
/// single worker" — paper, §3).
#[derive(Debug)]
pub enum WorkerHandle<T> {
    /// Chase–Lev owner handle.
    ChaseLev(ChaseLevWorker<T>),
    /// Mutex-deque owner handle.
    Mutex(MutexWorker<T>),
}

impl<T: Send> WorkerHandle<T> {
    /// Creates a fresh, empty deque of the given kind, returning both ends.
    pub fn new(kind: DequeKind) -> (WorkerHandle<T>, StealerHandle<T>) {
        match kind {
            DequeKind::ChaseLev => {
                let (w, s) = chase_lev::deque();
                (WorkerHandle::ChaseLev(w), StealerHandle::ChaseLev(s))
            }
            DequeKind::Mutex => {
                let (w, s) = mutex_deque::deque();
                (WorkerHandle::Mutex(w), StealerHandle::Mutex(s))
            }
        }
    }

    /// Pushes an item onto the bottom (owner end) of the deque.
    pub fn push_bottom(&self, item: T) {
        match self {
            WorkerHandle::ChaseLev(w) => w.push_bottom(item),
            WorkerHandle::Mutex(w) => w.push_bottom(item),
        }
    }

    /// Pops an item from the bottom (owner end) of the deque.
    pub fn pop_bottom(&self) -> Option<T> {
        match self {
            WorkerHandle::ChaseLev(w) => w.pop_bottom(),
            WorkerHandle::Mutex(w) => w.pop_bottom(),
        }
    }

    /// True if the deque appears empty from the owner's side.
    pub fn is_empty(&self) -> bool {
        match self {
            WorkerHandle::ChaseLev(w) => w.is_empty(),
            WorkerHandle::Mutex(w) => w.is_empty(),
        }
    }

    /// Number of items currently in the deque (owner-side snapshot).
    pub fn len(&self) -> usize {
        match self {
            WorkerHandle::ChaseLev(w) => w.len(),
            WorkerHandle::Mutex(w) => w.len(),
        }
    }

    /// Returns a new stealer end for this deque.
    pub fn stealer(&self) -> StealerHandle<T> {
        match self {
            WorkerHandle::ChaseLev(w) => StealerHandle::ChaseLev(w.stealer()),
            WorkerHandle::Mutex(w) => StealerHandle::Mutex(w.stealer()),
        }
    }
}

/// Thief-side handle of either deque implementation. Cheap to clone.
#[derive(Debug)]
pub enum StealerHandle<T> {
    /// Chase–Lev thief handle.
    ChaseLev(ChaseLevStealer<T>),
    /// Mutex-deque thief handle.
    Mutex(MutexStealer<T>),
}

impl<T> Clone for StealerHandle<T> {
    fn clone(&self) -> Self {
        match self {
            StealerHandle::ChaseLev(s) => StealerHandle::ChaseLev(s.clone()),
            StealerHandle::Mutex(s) => StealerHandle::Mutex(s.clone()),
        }
    }
}

impl<T: Send> StealerHandle<T> {
    /// Attempts to steal the top item (the paper's `popTop`).
    pub fn steal(&self) -> Steal<T> {
        match self {
            StealerHandle::ChaseLev(s) => s.steal(),
            StealerHandle::Mutex(s) => s.steal(),
        }
    }

    /// Steal-half: takes up to `ceil(live / 2)` items (capped at `limit`,
    /// clamped to at least 1) from the top, appending them to `out` in
    /// original top-to-bottom order and returning how many were claimed.
    /// `limit == 1` is exactly the single-item [`steal`](Self::steal).
    pub fn steal_batch_into(&self, limit: usize, out: &mut Vec<T>) -> Steal<usize> {
        match self {
            StealerHandle::ChaseLev(s) => s.steal_batch_into(limit, out),
            StealerHandle::Mutex(s) => s.steal_batch_into(limit, out),
        }
    }

    /// True if the deque appears empty to a thief (racy snapshot).
    pub fn is_empty(&self) -> bool {
        match self {
            StealerHandle::ChaseLev(s) => s.is_empty(),
            StealerHandle::Mutex(s) => s.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip_chase_lev() {
        let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        w.push_bottom(1);
        w.push_bottom(2);
        assert_eq!(w.len(), 2);
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop_bottom(), Some(2));
        assert!(w.is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn handle_roundtrip_mutex() {
        let (w, s) = WorkerHandle::new(DequeKind::Mutex);
        w.push_bottom(10);
        w.push_bottom(20);
        assert_eq!(s.steal().success(), Some(10));
        assert_eq!(w.pop_bottom(), Some(20));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn handle_steal_batch_both_kinds() {
        for kind in [DequeKind::ChaseLev, DequeKind::Mutex] {
            let (w, s) = WorkerHandle::new(kind);
            for i in 0..6 {
                w.push_bottom(i);
            }
            let mut out = Vec::new();
            assert_eq!(s.steal_batch_into(8, &mut out), Steal::Success(3));
            assert_eq!(out, vec![0, 1, 2], "{kind:?} batch in order");
            out.clear();
            assert_eq!(s.steal_batch_into(1, &mut out), Steal::Success(1));
            assert_eq!(out, vec![3], "{kind:?} limit=1 degenerate case");
        }
    }

    #[test]
    fn stealer_handle_clone() {
        let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        let s2 = s.clone();
        w.push_bottom(7);
        assert_eq!(s2.steal().success(), Some(7));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn extra_stealer_from_worker() {
        let (w, _s) = WorkerHandle::new(DequeKind::Mutex);
        let s2 = w.stealer();
        w.push_bottom(5);
        assert_eq!(s2.steal().success(), Some(5));
    }

    #[test]
    fn steal_result_helpers() {
        assert!(Steal::<i32>::Empty.is_empty());
        assert!(Steal::<i32>::Retry.is_retry());
        assert_eq!(Steal::Success(3).success(), Some(3));
        assert_eq!(Steal::<i32>::Retry.success(), None);
    }
}
