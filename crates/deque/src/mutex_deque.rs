//! A mutex-protected deque with the same owner/thief handle API as the
//! Chase–Lev implementation.
//!
//! Serves two purposes:
//!
//! * **Correctness oracle** — property tests drive both implementations with
//!   identical operation sequences and require identical results.
//! * **Ablation point** — the benchmark harness can swap this in to measure
//!   how much the lock-free deque contributes to end-to-end performance
//!   (`ablation -- deque`).
//!
//! The paper notes its prototype "sometimes uses theoretically less
//! efficient data structures or policies, favoring simplicity and
//! practicality" — this is exactly that kind of structure.

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Steal;

/// Creates a new mutex-based deque, returning the owner and thief ends.
pub fn deque<T: Send>() -> (MutexWorker<T>, MutexStealer<T>) {
    let inner = Arc::new(Mutex::new(VecDeque::new()));
    (
        MutexWorker {
            inner: inner.clone(),
            _not_sync: PhantomData,
        },
        MutexStealer { inner },
    )
}

/// Owner end: pushes and pops at the back ("bottom").
pub struct MutexWorker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

unsafe impl<T: Send> Send for MutexWorker<T> {}

impl<T: Send> MutexWorker<T> {
    /// Pushes an item at the bottom.
    pub fn push_bottom(&self, item: T) {
        self.inner.lock().push_back(item);
    }

    /// Pops an item from the bottom.
    pub fn pop_bottom(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// True if the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Creates another stealer end.
    pub fn stealer(&self) -> MutexStealer<T> {
        MutexStealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T> fmt::Debug for MutexWorker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexWorker").finish_non_exhaustive()
    }
}

/// Thief end: steals from the front ("top").
pub struct MutexStealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for MutexStealer<T> {
    fn clone(&self) -> Self {
        MutexStealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send> MutexStealer<T> {
    /// Steals the top item. Never returns [`Steal::Retry`]: the lock
    /// serializes all contenders.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Steals up to `ceil(len / 2)` items (capped at `limit`, clamped to
    /// at least 1) from the front in one locked critical section,
    /// appending them to `out` in original order. Never returns
    /// [`Steal::Retry`]; mirrors
    /// [`ChaseLevStealer::steal_batch_into`](crate::ChaseLevStealer::steal_batch_into).
    pub fn steal_batch_into(&self, limit: usize, out: &mut Vec<T>) -> Steal<usize> {
        let limit = limit.max(1);
        let mut q = self.inner.lock();
        let live = q.len();
        if live == 0 {
            return Steal::Empty;
        }
        let n = live.div_ceil(2).min(limit);
        out.extend(q.drain(..n));
        Steal::Success(n)
    }

    /// True if the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> fmt::Debug for MutexStealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexStealer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let (w, s) = deque::<u32>();
        w.push_bottom(1);
        w.push_bottom(2);
        w.push_bottom(3);
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop_bottom(), Some(3));
        assert_eq!(w.pop_bottom(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn len_tracks_operations() {
        let (w, s) = deque::<u32>();
        assert_eq!(w.len(), 0);
        w.push_bottom(1);
        w.push_bottom(2);
        assert_eq!(w.len(), 2);
        let _ = s.steal();
        assert_eq!(w.len(), 1);
        let _ = w.pop_bottom();
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn steal_batch_half_from_front() {
        let (w, s) = deque::<u32>();
        for i in 0..10 {
            w.push_bottom(i);
        }
        let mut out = Vec::new();
        assert_eq!(s.steal_batch_into(64, &mut out), Steal::Success(5));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        out.clear();
        assert_eq!(s.steal_batch_into(2, &mut out), Steal::Success(2));
        assert_eq!(out, vec![5, 6]);
        assert_eq!(w.pop_bottom(), Some(9));
        out.clear();
        assert_eq!(s.steal_batch_into(1, &mut out), Steal::Success(1));
        assert_eq!(out, vec![7]);
        let _ = w.pop_bottom();
        assert_eq!(s.steal_batch_into(4, &mut out), Steal::Empty);
    }

    #[test]
    fn concurrent_sanity() {
        let (w, s) = deque::<usize>();
        const N: usize = 10_000;
        let thief = {
            let s = s.clone();
            std::thread::spawn(move || {
                let mut got = 0usize;
                let mut empties = 0usize;
                while empties < 100_000 {
                    match s.steal() {
                        Steal::Success(_) => {
                            got += 1;
                            empties = 0;
                        }
                        _ => empties += 1,
                    }
                }
                got
            })
        };
        let mut own = 0usize;
        for i in 0..N {
            w.push_bottom(i);
            if i % 2 == 0 && w.pop_bottom().is_some() {
                own += 1;
            }
        }
        while w.pop_bottom().is_some() {
            own += 1;
        }
        let stolen = thief.join().unwrap();
        assert_eq!(own + stolen, N);
    }
}
