//! A growable lock-free Chase–Lev work-stealing deque, from scratch.
//!
//! This is the dynamic circular work-stealing deque of Chase & Lev (SPAA'05),
//! with the memory orderings of Lê, Pop, Cohen & Zappa Nardelli ("Correct and
//! Efficient Work-Stealing for Weak Memory Models", PPoPP'13). The owner
//! operates on the *bottom* end ([`ChaseLevWorker::push_bottom`] /
//! [`ChaseLevWorker::pop_bottom`]); any number of thieves concurrently
//! [`ChaseLevStealer::steal`] from the *top*.
//!
//! Design notes:
//!
//! * The ring buffer grows geometrically when full. Old buffers are retired
//!   into a garbage list (freed when the deque is dropped) rather than freed
//!   eagerly, because a racing thief may still hold a pointer to a stale
//!   buffer and perform a speculative read from it. Such a read is always
//!   followed by a compare-and-swap on `top` that fails if the read was
//!   stale, so the speculatively read value is discarded without being
//!   dropped or used.
//! * Elements are moved in and out of the buffer with raw reads/writes of
//!   `MaybeUninit<T>`; ownership is tracked by the `top`/`bottom` indices.
//! * `isize` indices increase monotonically and are mapped onto the buffer
//!   with a power-of-two mask, the standard Chase–Lev trick.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Steal;

/// Minimum ring capacity. Must be a power of two.
const MIN_CAP: usize = 16;

/// A fixed-capacity ring of `MaybeUninit<T>` slots.
struct Buffer<T> {
    storage: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: isize,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Buffer<T>> {
        debug_assert!(cap.is_power_of_two());
        let storage: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(Buffer {
            storage,
            mask: cap as isize - 1,
        })
    }

    fn cap(&self) -> usize {
        self.storage.len()
    }

    /// Writes `item` at logical index `i`. Caller must own the slot.
    unsafe fn write(&self, i: isize, item: T) {
        let slot = self.storage[(i & self.mask) as usize].get();
        (*slot).write(item);
    }

    /// Reads the value at logical index `i` without taking ownership
    /// decisions; the caller must either keep it (after winning the index
    /// race) or `mem::forget` it.
    unsafe fn read(&self, i: isize) -> T {
        let slot = self.storage[(i & self.mask) as usize].get();
        (*slot).assume_init_read()
    }
}

/// Shared state of one deque.
struct Inner<T> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Retired buffers, kept alive until the deque is dropped so stale
    /// thieves can still read (and then discard) from them.
    garbage: Mutex<Vec<*mut Buffer<T>>>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    fn new() -> Self {
        let buf = Box::into_raw(Buffer::<T>::alloc(MIN_CAP));
        Inner {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(buf),
            garbage: Mutex::new(Vec::new()),
        }
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop live elements, then free buffers.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        let buf = *self.buffer.get_mut();
        unsafe {
            let mut i = t;
            while i < b {
                drop((*buf).read(i));
                i += 1;
            }
            drop(Box::from_raw(buf));
            for g in self.garbage.get_mut().drain(..) {
                drop(Box::from_raw(g));
            }
        }
    }
}

/// Creates a new Chase–Lev deque, returning the unique owner handle and a
/// cloneable stealer handle.
pub fn deque<T: Send>() -> (ChaseLevWorker<T>, ChaseLevStealer<T>) {
    let inner = Arc::new(Inner::new());
    (
        ChaseLevWorker {
            inner: inner.clone(),
            _not_sync: PhantomData,
        },
        ChaseLevStealer { inner },
    )
}

/// Owner end of the deque. Not `Clone`, not `Sync`: exactly one thread may
/// push/pop the bottom, which is what the algorithm requires.
pub struct ChaseLevWorker<T> {
    inner: Arc<Inner<T>>,
    /// Makes the type `!Sync` so `&ChaseLevWorker` cannot be shared across
    /// threads; the owner discipline is enforced statically.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

// The worker can be *moved* to another thread (ownership transfer is fine);
// it just cannot be used from two threads at once.
unsafe impl<T: Send> Send for ChaseLevWorker<T> {}

impl<T: Send> ChaseLevWorker<T> {
    /// Pushes an item onto the bottom of the deque, growing if needed.
    pub fn push_bottom(&self, item: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);

        unsafe {
            if b - t >= (*buf).cap() as isize {
                buf = self.grow(t, b, buf);
            }
            (*buf).write(b, item);
        }
        // Publish the element before publishing the new bottom, so a thief
        // that observes the incremented bottom also observes the write.
        fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Doubles the buffer, copying live elements. Returns the new buffer.
    ///
    /// Only the owner calls this, and only from `push_bottom`.
    unsafe fn grow(&self, t: isize, b: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Buffer::<T>::alloc((*old).cap() * 2);
        let mut i = t;
        while i < b {
            // Raw bit-copy: ownership conceptually moves to the new buffer.
            let slot_old = (*old).storage[(i & (*old).mask) as usize].get();
            let slot_new = new.storage[(i & new.mask) as usize].get();
            std::ptr::copy_nonoverlapping(slot_old, slot_new, 1);
            i += 1;
        }
        let new = Box::into_raw(new);
        self.inner.buffer.store(new, Ordering::Release);
        self.inner.garbage.lock().push(old);
        new
    }

    /// Pops an item from the bottom of the deque.
    pub fn pop_bottom(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // Order the bottom decrement before reading top, against thieves'
        // (read top; read bottom) sequence.
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);

        if t <= b {
            // Non-empty.
            let item = unsafe { (*buf).read(b) };
            if t == b {
                // Single element: race against thieves for it.
                if inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // A thief won; it owns the element now. Discard our copy
                    // without dropping it.
                    std::mem::forget(item);
                    inner.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                inner.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(item)
        } else {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Owner-side emptiness check.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-side length snapshot.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Creates another stealer end for this deque.
    pub fn stealer(&self) -> ChaseLevStealer<T> {
        ChaseLevStealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T> fmt::Debug for ChaseLevWorker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaseLevWorker").finish_non_exhaustive()
    }
}

/// Thief end of the deque. Cloneable and shareable across threads.
pub struct ChaseLevStealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for ChaseLevStealer<T> {
    fn clone(&self) -> Self {
        ChaseLevStealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send> ChaseLevStealer<T> {
    /// Attempts to steal the item at the top of the deque.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // Order the top read before the bottom read, against the owner's
        // pop sequence (decrement bottom; read top).
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);

        if t < b {
            // Speculatively read the element, then validate with a CAS on
            // top. On CAS failure the read value is discarded unread.
            let buf = inner.buffer.load(Ordering::Acquire);
            let item = unsafe { (*buf).read(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(item)
            } else {
                std::mem::forget(item);
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }

    /// Attempts to steal up to half of the deque in one attempt
    /// ("steal-half"), appending the stolen items to `out` in their
    /// original top-to-bottom order (oldest first).
    ///
    /// The batch size is `ceil(live / 2)` at the initial size-up read,
    /// capped at `limit` (clamped to at least 1). Returns
    /// `Steal::Success(n)` with the number of items appended,
    /// `Steal::Empty` if the deque was observed empty, or `Steal::Retry`
    /// if a race was lost before *any* item was claimed. With `limit == 1`
    /// this performs exactly the single-item [`steal`](Self::steal)
    /// protocol.
    ///
    /// # Why items are claimed one CAS at a time
    ///
    /// A single wide CAS of `top` from `t` to `t + n` would be unsound
    /// against the unchanged Chase–Lev owner: `pop_bottom` takes interior
    /// indices without touching `top` (only the final element is
    /// CAS-raced), so a wide CAS could claim an index the owner already
    /// popped, handing the same item to two threads. Instead each claim
    /// repeats the single-steal validation — re-read `bottom` behind a
    /// seq-cst fence, speculative read, CAS `top` forward by one — and the
    /// batch stops at the first failed validation. The monotonicity of
    /// `top` plus the fence pairing then gives the same exactly-once
    /// guarantee as the single steal, per claimed index.
    pub fn steal_batch_into(&self, limit: usize, out: &mut Vec<T>) -> Steal<usize> {
        let limit = limit.max(1);
        let inner = &*self.inner;
        let mut t = inner.top.load(Ordering::Acquire);
        // Order the top read before the bottom read, as in `steal`.
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);

        let live = b - t;
        if live <= 0 {
            return Steal::Empty;
        }
        let want = (live as usize).div_ceil(2).min(limit);
        let mut got = 0usize;
        while got < want {
            if got > 0 {
                // Re-validate against a fresh bottom: the owner may have
                // popped the region down to `t` since the size-up read,
                // and claiming a popped index would double-take it.
                fence(Ordering::SeqCst);
                let b = inner.bottom.load(Ordering::Acquire);
                if b - t <= 0 {
                    break;
                }
            }
            let buf = inner.buffer.load(Ordering::Acquire);
            let item = unsafe { (*buf).read(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                // Lost the claim race (owner or another thief); the batch
                // ends at whatever was claimed so far.
                std::mem::forget(item);
                break;
            }
            out.push(item);
            t += 1;
            got += 1;
        }
        if got == 0 {
            Steal::Retry
        } else {
            Steal::Success(got)
        }
    }

    /// Racy emptiness snapshot.
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        t >= b
    }
}

impl<T> fmt::Debug for ChaseLevStealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaseLevStealer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifo_for_owner() {
        let (w, _s) = deque::<u32>();
        w.push_bottom(1);
        w.push_bottom(2);
        w.push_bottom(3);
        assert_eq!(w.pop_bottom(), Some(3));
        assert_eq!(w.pop_bottom(), Some(2));
        assert_eq!(w.pop_bottom(), Some(1));
        assert_eq!(w.pop_bottom(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let (w, s) = deque::<u32>();
        for i in 0..5 {
            w.push_bottom(i);
        }
        assert_eq!(s.steal().success(), Some(0));
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop_bottom(), Some(4));
        assert_eq!(s.steal().success(), Some(2));
        assert_eq!(w.pop_bottom(), Some(3));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn empty_deque_behaviour() {
        let (w, s) = deque::<u32>();
        assert_eq!(w.pop_bottom(), None);
        assert!(s.steal().is_empty());
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        // Empty pops must not corrupt state.
        w.push_bottom(42);
        assert_eq!(w.pop_bottom(), Some(42));
        assert_eq!(w.pop_bottom(), None);
        assert_eq!(w.pop_bottom(), None);
        w.push_bottom(43);
        assert_eq!(s.steal().success(), Some(43));
    }

    #[test]
    fn growth_preserves_order() {
        let (w, s) = deque::<usize>();
        let n = MIN_CAP * 8 + 3;
        for i in 0..n {
            w.push_bottom(i);
        }
        assert_eq!(w.len(), n);
        for i in 0..n / 2 {
            assert_eq!(s.steal().success(), Some(i));
        }
        for i in (n / 2..n).rev() {
            assert_eq!(w.pop_bottom(), Some(i));
        }
        assert!(w.is_empty());
    }

    #[test]
    fn growth_after_wraparound() {
        let (w, s) = deque::<usize>();
        // Advance top/bottom far beyond capacity with interleaved traffic so
        // the ring wraps, then force growth.
        for round in 0..10 {
            for i in 0..MIN_CAP - 1 {
                w.push_bottom(round * 1000 + i);
            }
            for _ in 0..MIN_CAP - 1 {
                assert!(s.steal().success().is_some());
            }
        }
        let n = MIN_CAP * 4;
        for i in 0..n {
            w.push_bottom(i);
        }
        for i in 0..n {
            assert_eq!(s.steal().success(), Some(i));
        }
    }

    #[test]
    fn drop_frees_remaining_elements() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (w, s) = deque::<D>();
            for _ in 0..40 {
                w.push_bottom(D);
            }
            drop(w.pop_bottom()); // 1 drop
            drop(s.steal().success()); // 1 drop
            drop(s);
            drop(w);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn boxed_items_survive_growth() {
        let (w, s) = deque::<Box<String>>();
        for i in 0..200 {
            w.push_bottom(Box::new(format!("item-{i}")));
        }
        for i in 0..100 {
            assert_eq!(*s.steal().success().unwrap(), format!("item-{i}"));
        }
        for i in (100..200).rev() {
            assert_eq!(*w.pop_bottom().unwrap(), format!("item-{i}"));
        }
    }

    #[test]
    fn concurrent_owner_and_thieves_each_item_once() {
        const ITEMS: usize = 50_000;
        const THIEVES: usize = 4;
        let (w, s) = deque::<usize>();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = s.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) && s.is_empty() {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut popped = Vec::new();
        let mut next = 0usize;
        while next < ITEMS {
            // Push in small bursts, popping some back, to exercise the
            // owner/thief race on the last element.
            let burst = 1 + next % 7;
            for _ in 0..burst {
                if next < ITEMS {
                    w.push_bottom(next);
                    next += 1;
                }
            }
            if next.is_multiple_of(3) {
                if let Some(v) = w.pop_bottom() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = w.pop_bottom() {
            popped.push(v);
        }
        done.store(true, Ordering::Release);

        let mut all: Vec<usize> = popped;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), ITEMS, "every item seen exactly once");
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), ITEMS, "no duplicates");
    }

    #[test]
    fn last_element_race_exactly_one_winner() {
        // The hardest Chase-Lev path: owner pop and several thieves racing
        // for a single remaining element. Exactly one side may win each
        // round.
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        const ROUNDS: usize = 5_000;
        const THIEVES: usize = 3;

        let (w, s) = deque::<usize>();
        let barrier = Arc::new(Barrier::new(THIEVES + 1));
        let wins = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = s.clone();
                let barrier = barrier.clone();
                let wins = wins.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    loop {
                        barrier.wait(); // round start: one element present
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        if let Steal::Success(_) = s.steal() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                        barrier.wait(); // round end
                    }
                })
            })
            .collect();

        let mut owner_wins = 0usize;
        for _ in 0..ROUNDS {
            w.push_bottom(1);
            barrier.wait();
            if w.pop_bottom().is_some() {
                owner_wins += 1;
            }
            barrier.wait();
            assert!(w.pop_bottom().is_none(), "element must be gone");
        }
        stop.store(true, Ordering::Release);
        barrier.wait();
        for t in thieves {
            t.join().unwrap();
        }
        assert_eq!(
            owner_wins + wins.load(Ordering::Relaxed),
            ROUNDS,
            "every element claimed exactly once"
        );
    }

    #[test]
    fn steal_batch_takes_half_in_order() {
        let (w, s) = deque::<u32>();
        for i in 0..8 {
            w.push_bottom(i);
        }
        let mut out = Vec::new();
        // ceil(8/2) = 4, below the cap.
        assert_eq!(s.steal_batch_into(64, &mut out), Steal::Success(4));
        assert_eq!(out, vec![0, 1, 2, 3]);
        // 4 remain: ceil(4/2) = 2.
        out.clear();
        assert_eq!(s.steal_batch_into(64, &mut out), Steal::Success(2));
        assert_eq!(out, vec![4, 5]);
        // Owner still sees the rest, LIFO.
        assert_eq!(w.pop_bottom(), Some(7));
        assert_eq!(w.pop_bottom(), Some(6));
        assert_eq!(w.pop_bottom(), None);
        out.clear();
        assert_eq!(s.steal_batch_into(64, &mut out), Steal::Empty);
        assert!(out.is_empty());
    }

    #[test]
    fn steal_batch_respects_limit() {
        let (w, s) = deque::<u32>();
        for i in 0..100 {
            w.push_bottom(i);
        }
        let mut out = Vec::new();
        assert_eq!(s.steal_batch_into(3, &mut out), Steal::Success(3));
        assert_eq!(out, vec![0, 1, 2]);
        // A zero limit is clamped to one (the degenerate single steal).
        out.clear();
        assert_eq!(s.steal_batch_into(0, &mut out), Steal::Success(1));
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn steal_batch_limit_one_matches_single_steal() {
        // limit=1 must behave exactly like `steal` on every shape:
        // empty, single element, and deep deque.
        let (w, s) = deque::<u32>();
        let mut out = Vec::new();
        assert_eq!(s.steal_batch_into(1, &mut out), Steal::Empty);
        w.push_bottom(7);
        assert_eq!(s.steal_batch_into(1, &mut out), Steal::Success(1));
        assert_eq!(out, vec![7]);
        for i in 0..50 {
            w.push_bottom(i);
        }
        for i in 0..50 {
            out.clear();
            assert_eq!(s.steal_batch_into(1, &mut out), Steal::Success(1));
            assert_eq!(out, vec![i], "limit=1 steals exactly the top item");
        }
    }

    #[test]
    fn concurrent_growth_under_steals() {
        const ITEMS: usize = 20_000;
        let (w, s) = deque::<Box<usize>>();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thief = {
            let s = s.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut sum = 0usize;
                let mut count = 0usize;
                loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            sum += *v;
                            count += 1;
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && s.is_empty() {
                                break;
                            }
                        }
                    }
                }
                (sum, count)
            })
        };

        let mut own_sum = 0usize;
        let mut own_count = 0usize;
        // Push everything at once to force repeated buffer growth while the
        // thief is active.
        for i in 0..ITEMS {
            w.push_bottom(Box::new(i));
        }
        while let Some(v) = w.pop_bottom() {
            own_sum += *v;
            own_count += 1;
        }
        done.store(true, Ordering::Release);
        let (stolen_sum, stolen_count) = thief.join().unwrap();
        assert_eq!(own_count + stolen_count, ITEMS);
        assert_eq!(own_sum + stolen_sum, ITEMS * (ITEMS - 1) / 2);
    }
}
