//! The global deque registry: the paper's `gDeques` array and `gTotalDeques`
//! counter (Figure 5).
//!
//! The paper's implementation notes, verbatim:
//!
//! * a global (across all workers) array of deques, `gDeques`;
//! * a global counter `gTotalDeques` giving the index of the next deque to
//!   allocate, incremented with an atomic fetch-and-add;
//! * `free()` does **not** deallocate — the deque goes onto the owning
//!   worker's `emptyDeques` set and is reused by later `newDeque()` calls;
//! * `randomDeque()` picks a uniformly random index in
//!   `[0, gTotalDeques)`; the chosen deque may have been freed, in which
//!   case the steal simply fails. The worst-case analysis already accounts
//!   for these failed steals.
//!
//! This module implements exactly that: a fixed-capacity slab of
//! once-initialized slots. Each slot stores the thief end of one deque plus
//! the id of the worker that owns it (owners keep the worker end privately
//! and recycle freed deques through their own free lists). Slots are written
//! once and never removed, so thieves can read them without locks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::{Steal, StealerHandle};

/// Index of a deque in the global registry.
///
/// Identifies a deque for the whole lifetime of the scheduler; because
/// deques are recycled rather than deallocated, an id stays valid forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DequeId(pub u32);

impl DequeId {
    /// The slab index of this deque.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DequeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// The fixed-capacity slab is full. The capacity bounds the total number
    /// of deques ever allocated, which by Lemma 7 is at most `P * (U + 1)`;
    /// configure the registry capacity accordingly.
    Full,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Full => write!(
                f,
                "deque registry full: more than capacity deques allocated \
                 (need capacity >= P * (U + 1))"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One registered deque: the stealable end plus owner metadata.
#[derive(Debug)]
pub struct Slot<T> {
    /// Thief end of the deque.
    pub stealer: StealerHandle<T>,
    /// Id of the worker that owns (and forever will own) this deque.
    pub owner: usize,
}

/// The global deque slab (`gDeques` + `gTotalDeques`).
pub struct Registry<T> {
    slots: Box<[OnceLock<Slot<T>>]>,
    count: AtomicUsize,
}

impl<T: Send> Registry<T> {
    /// Creates a registry with room for `capacity` deques.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots: Box<[OnceLock<Slot<T>>]> = (0..capacity).map(|_| OnceLock::new()).collect();
        Registry {
            slots,
            count: AtomicUsize::new(0),
        }
    }

    /// Registers a new deque owned by `owner`, returning its global id.
    ///
    /// This is the allocation path of `newDeque()` (Figure 5): an atomic
    /// fetch-and-add on `gTotalDeques` followed by a write of the slot.
    /// A thief may observe the incremented counter before the slot write
    /// lands; it then sees an unset slot and treats it as a failed steal.
    pub fn register(
        &self,
        owner: usize,
        stealer: StealerHandle<T>,
    ) -> Result<DequeId, RegistryError> {
        let i = self.count.fetch_add(1, Ordering::Relaxed);
        if i >= self.slots.len() {
            // Back out so `len()` keeps meaning "allocated prefix"; several
            // racing over-allocations all land here and all back out.
            self.count.fetch_sub(1, Ordering::Relaxed);
            return Err(RegistryError::Full);
        }
        let slot = Slot { stealer, owner };
        self.slots[i]
            .set(slot)
            .unwrap_or_else(|_| unreachable!("registry slot {i} written twice"));
        Ok(DequeId(i as u32))
    }

    /// The current value of `gTotalDeques`: number of deques ever allocated.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// True if no deque has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of deques this registry can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Returns the slot for `id`, if the registering write has landed.
    pub fn get(&self, id: DequeId) -> Option<&Slot<T>> {
        self.slots.get(id.index()).and_then(|s| s.get())
    }

    /// Id of the worker that owns deque `id`, if the registering write has
    /// landed. Owners never change (freed deques are recycled by the same
    /// worker), so the answer is stable once `Some`.
    pub fn owner_of(&self, id: DequeId) -> Option<usize> {
        self.get(id).map(|s| s.owner)
    }

    /// Attempts to steal from deque `id` (the paper's `popTop` on
    /// `randomDeque()`'s result). An unset slot reads as an empty deque.
    pub fn steal(&self, id: DequeId) -> Steal<T> {
        match self.get(id) {
            Some(slot) => slot.stealer.steal(),
            None => Steal::Empty,
        }
    }

    /// Maps a uniform random value onto an allocated deque id, i.e.
    /// `randomDeque()`. Returns `None` when no deque exists yet.
    ///
    /// Uses the widening-multiply mapping `(uniform * n) >> 64` instead of
    /// `uniform % n`: same cost, and the result is uniform to within
    /// 2⁻⁶⁴·n instead of the modulo's bias toward small ids (which for the
    /// analyzed `randomDeque()` would systematically favor the deques
    /// allocated first).
    pub fn random_id(&self, uniform: u64) -> Option<DequeId> {
        let n = self.len() as u64;
        if n == 0 {
            None
        } else {
            Some(DequeId(((uniform as u128 * n as u128) >> 64) as u32))
        }
    }
}

impl<T> std::fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DequeKind, WorkerHandle};

    #[test]
    fn register_and_steal() {
        let reg = Registry::with_capacity(8);
        let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        let id = reg.register(0, s).unwrap();
        assert_eq!(id, DequeId(0));
        assert_eq!(reg.len(), 1);
        w.push_bottom(99);
        assert_eq!(reg.steal(id).success(), Some(99));
        assert!(reg.steal(id).is_empty());
    }

    #[test]
    fn sequential_ids() {
        let reg: Registry<u32> = Registry::with_capacity(4);
        for i in 0..4 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            let id = reg.register(i, s).unwrap();
            assert_eq!(id.index(), i);
        }
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn capacity_exhaustion() {
        let reg: Registry<u32> = Registry::with_capacity(2);
        let (_w1, s1) = WorkerHandle::new(DequeKind::Mutex);
        let (_w2, s2) = WorkerHandle::new(DequeKind::Mutex);
        let (_w3, s3) = WorkerHandle::new(DequeKind::Mutex);
        assert!(reg.register(0, s1).is_ok());
        assert!(reg.register(0, s2).is_ok());
        assert_eq!(reg.register(0, s3), Err(RegistryError::Full));
        // A failed registration must not corrupt the count.
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn random_id_distribution_covers_all() {
        let reg: Registry<u32> = Registry::with_capacity(16);
        for _ in 0..5 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            reg.register(0, s).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        // Uniform values spread across the whole u64 range (the mapping is
        // `(u * n) >> 64`, so coverage needs full-range inputs).
        for i in 0..100u64 {
            let u = i.wrapping_mul(u64::MAX / 100);
            let id = reg.random_id(u).unwrap();
            assert!(id.index() < 5, "id out of range");
            seen.insert(id);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn random_id_empty_registry() {
        let reg: Registry<u32> = Registry::with_capacity(4);
        assert_eq!(reg.random_id(12345), None);
    }

    #[test]
    fn owner_metadata() {
        let reg: Registry<u32> = Registry::with_capacity(4);
        let (_w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        let id = reg.register(7, s).unwrap();
        assert_eq!(reg.get(id).unwrap().owner, 7);
        assert_eq!(reg.owner_of(id), Some(7));
        assert_eq!(reg.owner_of(DequeId(3)), None, "unset slot has no owner");
    }

    #[test]
    fn concurrent_registration_unique_ids() {
        let reg = std::sync::Arc::new(Registry::<u32>::with_capacity(1024));
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..100 {
                    let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
                    ids.push(reg.register(t, s).unwrap());
                    // Keep the worker alive long enough to register; deque
                    // contents do not matter for this test.
                    drop(w);
                }
                ids
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 800, "ids are unique");
        assert_eq!(reg.len(), 800);
    }
}
