//! The global deque registry: the paper's `gDeques` array and `gTotalDeques`
//! counter (Figure 5), extended with a **live-set index** so thieves sample
//! uniformly over *live* deques instead of over all capacity.
//!
//! The paper's implementation notes, verbatim:
//!
//! * a global (across all workers) array of deques, `gDeques`;
//! * a global counter `gTotalDeques` giving the index of the next deque to
//!   allocate, incremented with an atomic fetch-and-add;
//! * `free()` does **not** deallocate — the deque goes onto the owning
//!   worker's `emptyDeques` set and is reused by later `newDeque()` calls;
//! * `randomDeque()` picks a uniformly random index in
//!   `[0, gTotalDeques)`; the chosen deque may have been freed, in which
//!   case the steal simply fails. The worst-case analysis already accounts
//!   for these failed steals.
//!
//! This module keeps that contract — [`Registry::random_id`] still samples
//! the whole allocated prefix, and slots are written once and never removed
//! — but adds two scalability layers on top:
//!
//! 1. **Segmented slot storage.** Slots live in power-of-two-sized segments
//!    (8, 16, 32, …) allocated lazily on first use, so a registry configured
//!    with a large safety capacity costs memory proportional to the deques
//!    actually allocated, while every `&Slot` handed out stays valid forever
//!    (segments are never moved or freed).
//! 2. **A sharded live-set index.** Each shard owns a dense array of live
//!    deque ids maintained by swap-remove, plus a per-slot back-pointer
//!    (`live_pos`) locating the id inside its shard. Owners insert on
//!    [`register`](Registry::register)/[`reuse`](Registry::reuse) and remove
//!    on [`release`](Registry::release), serialized on a per-shard mutex;
//!    thieves call [`random_live_id`](Registry::random_live_id) to sample
//!    uniformly over live deques and hit a stealable target in O(1)
//!    expected probes even when most of the allocated prefix has been
//!    freed. The id array is stored in never-moved atomic segments, so a
//!    thief's draw is a handful of atomic loads — no lock and no
//!    read-modify-write on the steal hot path. The back-pointer doubles as
//!    an ABA guard: a release must find its own id at the recorded
//!    position, so a recycled slot can never evict a later incarnation of
//!    itself from the index.
//!
//! "Live" means *registered and not currently freed*: a suspended deque
//! waiting on a resume is empty but live (its owner will push into it
//! again), matching the paper's semantics where only `free()`d deques are
//! dead weight for thieves.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::{Steal, StealerHandle};

/// Index of a deque in the global registry.
///
/// Identifies a deque for the whole lifetime of the scheduler; because
/// deques are recycled rather than deallocated, an id stays valid forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DequeId(pub u32);

impl DequeId {
    /// The slab index of this deque.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DequeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// The configured capacity is exhausted. The capacity bounds the total
    /// number of deques ever allocated, which by Lemma 7 is at most
    /// `P * (U + 1)`; configure the registry capacity accordingly.
    Full,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Full => write!(
                f,
                "deque registry full: more than capacity deques allocated \
                 (need capacity >= P * (U + 1))"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One registered deque: the stealable end plus owner metadata.
#[derive(Debug)]
pub struct Slot<T> {
    /// Thief end of the deque.
    pub stealer: StealerHandle<T>,
    /// Id of the worker that owns (and forever will own) this deque.
    pub owner: usize,
}

/// Sentinel for "not in the live index".
const DEAD: usize = usize::MAX;

/// Smallest segment: segment `k` holds `SEG_BASE << k` slots.
const SEG_BASE: usize = 8;

/// Number of segments: enough for `8 * (2^28 - 1)` ≈ 2³¹ slots, far past
/// any `u32` deque id a scheduler could allocate.
const NSEG: usize = 28;

/// One slot cell: the once-written slot plus its live-index back-pointer.
struct SlotCell<T> {
    slot: OnceLock<Slot<T>>,
    /// Position of this deque's id inside its shard's live list, or
    /// [`DEAD`]. Written only by the owning worker (under the shard lock);
    /// read locklessly by thieves via [`Registry::is_live`].
    live_pos: AtomicUsize,
}

impl<T> SlotCell<T> {
    fn new() -> Self {
        SlotCell {
            slot: OnceLock::new(),
            live_pos: AtomicUsize::new(DEAD),
        }
    }
}

/// One shard of the live-set index: a dense swap-remove array of live ids.
///
/// The id array lives in lazily allocated power-of-two segments that are
/// never freed or moved (the registry's recycle-never-deallocate
/// discipline applied to its own index), so thieves read it **locklessly**:
/// one atomic length load plus one atomic entry load per draw, with no
/// read-modify-write to stall the steal hot path. Owner-side mutations
/// (insert, swap-remove, compaction bookkeeping) serialize on the shard
/// mutex; a thief racing a mutation at worst reads an id that was released
/// a moment ago, which its steal then finds empty — indistinguishable from
/// any lost race.
struct LiveShard {
    /// Owner-side mutation guard holding the authoritative length and the
    /// compaction threshold.
    state: Mutex<LiveShardState>,
    /// Mirror of the dense length, readable without the lock (thieves sum
    /// these to size their sample).
    len: AtomicUsize,
    /// Lazily allocated entry segments (segment `k` holds `SEG_BASE << k`
    /// ids); never freed or moved, which is what keeps readers safe.
    entries: Segments<AtomicU32>,
}

/// Mutex-guarded part of a [`LiveShard`].
struct LiveShardState {
    /// Dense length of the id array.
    len: usize,
    /// Logical capacity: the high-water of `len` since the last
    /// compaction. Segment memory is recycled, never deallocated; a
    /// compaction re-arms this threshold after a mass release (and is what
    /// the registry's compaction counter counts).
    cap: usize,
}

impl LiveShard {
    fn new() -> Self {
        LiveShard {
            state: Mutex::new(LiveShardState { len: 0, cap: 0 }),
            len: AtomicUsize::new(0),
            entries: (0..NSEG).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Entry slot `i`, allocating its segment if needed (writer path; must
    /// hold the shard mutex).
    fn entry_or_alloc(&self, i: usize) -> &AtomicU32 {
        let (k, off) = locate(i);
        let seg = self.entries[k].get_or_init(|| {
            (0..(SEG_BASE << k))
                .map(|_| AtomicU32::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        &seg[off]
    }

    /// Entry slot `i`, if its segment exists (lock-free reader path).
    fn entry(&self, i: usize) -> Option<&AtomicU32> {
        let (k, off) = locate(i);
        self.entries.get(k)?.get()?.get(off)
    }
}

/// Lazily allocated, never-moved power-of-two segment array addressed by
/// [`locate`]: the storage scheme shared by the slot slab and each
/// shard's live-id array.
type Segments<E> = Box<[OnceLock<Box<[E]>>]>;

/// Splits a global slot index into (segment, offset-within-segment).
///
/// Segment `k` covers indices `[8·(2ᵏ−1), 8·(2ᵏ⁺¹−1))`, so the segment of
/// index `i` is `floor(log2(i/8 + 1))` and the offset is what remains.
fn locate(i: usize) -> (usize, usize) {
    let q = (i >> 3) + 1;
    let k = (usize::BITS - 1 - q.leading_zeros()) as usize;
    let offset = i - (((1usize << k) - 1) << 3);
    (k, offset)
}

/// The global deque slab (`gDeques` + `gTotalDeques`) plus the live-set
/// index thieves sample from.
pub struct Registry<T> {
    /// Lazily allocated power-of-two segments; never freed or moved.
    segments: Segments<SlotCell<T>>,
    /// `gTotalDeques`: next slot index to allocate.
    count: AtomicUsize,
    /// Hard cap on `count` (Full past this).
    capacity: usize,
    /// Live-set shards; a deque lives in shard `owner % shards.len()`, so
    /// each worker's updates stay on one shard.
    shards: Box<[LiveShard]>,
    /// High-water mark of the live-set size (all shards summed).
    live_high_water: AtomicUsize,
    /// Number of shard-list compactions (capacity shrinks after mass
    /// releases).
    compactions: AtomicU64,
}

impl<T: Send> Registry<T> {
    /// Creates a registry with room for `capacity` deques and a single
    /// live-set shard. Equivalent to `with_capacity_and_shards(capacity, 1)`.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_shards(capacity, 1)
    }

    /// Creates a registry with room for `capacity` deques and `shards`
    /// live-set shards (clamped to at least 1). Shard count should match
    /// the number of workers: a deque's shard is `owner % shards`, so with
    /// one shard per worker, owners never contend on each other's shard.
    pub fn with_capacity_and_shards(capacity: usize, shards: usize) -> Self {
        let segments: Segments<SlotCell<T>> = (0..NSEG).map(|_| OnceLock::new()).collect();
        let shards: Box<[LiveShard]> = (0..shards.max(1)).map(|_| LiveShard::new()).collect();
        Registry {
            segments,
            count: AtomicUsize::new(0),
            capacity,
            shards,
            live_high_water: AtomicUsize::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Returns the cell for slot `i`, if its segment has been allocated.
    fn cell(&self, i: usize) -> Option<&SlotCell<T>> {
        let (k, off) = locate(i);
        self.segments.get(k)?.get()?.get(off)
    }

    fn shard_of(&self, owner: usize) -> &LiveShard {
        &self.shards[owner % self.shards.len()]
    }

    /// Inserts `id` into its owner's shard. Caller must be the owner (or
    /// hold exclusive use of the deque, e.g. during registration).
    fn live_insert(&self, id: DequeId, owner: usize) {
        let shard = self.shard_of(owner);
        let mut st = shard.state.lock();
        let cell = self.cell(id.index()).expect("inserting unallocated slot");
        debug_assert_eq!(
            cell.live_pos.load(Ordering::Relaxed),
            DEAD,
            "deque {id} inserted into live index twice"
        );
        shard.entry_or_alloc(st.len).store(id.0, Ordering::Release);
        cell.live_pos.store(st.len, Ordering::Release);
        st.len += 1;
        st.cap = st.cap.max(st.len);
        shard.len.store(st.len, Ordering::Release);
        drop(st);
        let total = self.live_len();
        self.live_high_water.fetch_max(total, Ordering::Relaxed);
    }

    /// Registers a new deque owned by `owner`, returning its global id.
    ///
    /// This is the allocation path of `newDeque()` (Figure 5): an atomic
    /// fetch-and-add on `gTotalDeques` followed by a write of the slot.
    /// A thief may observe the incremented counter before the slot write
    /// lands; it then sees an unset slot and treats it as a failed steal.
    /// The new deque is immediately live.
    pub fn register(
        &self,
        owner: usize,
        stealer: StealerHandle<T>,
    ) -> Result<DequeId, RegistryError> {
        let i = self.count.fetch_add(1, Ordering::Relaxed);
        if i >= self.capacity {
            // Back out so `len()` keeps meaning "allocated prefix"; several
            // racing over-allocations all land here and all back out.
            self.count.fetch_sub(1, Ordering::Relaxed);
            return Err(RegistryError::Full);
        }
        let (k, off) = locate(i);
        let seg = self.segments[k].get_or_init(|| {
            (0..(SEG_BASE << k))
                .map(|_| SlotCell::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        seg[off]
            .slot
            .set(Slot { stealer, owner })
            .unwrap_or_else(|_| unreachable!("registry slot {i} written twice"));
        let id = DequeId(i as u32);
        self.live_insert(id, owner);
        Ok(id)
    }

    /// Removes `id` from the live index (the deque was `free()`d into its
    /// owner's recycling pool). Must be called by the owner, at most once
    /// per registration/reuse cycle. Returns `true` when the removal
    /// triggered a shard-list compaction.
    ///
    /// The swap-remove is ABA-guarded: the id recorded at the slot's
    /// back-pointer position must be `id` itself, so a stale release can
    /// never evict a different (recycled) deque from the index.
    pub fn release(&self, id: DequeId) -> bool {
        let Some(cell) = self.cell(id.index()) else {
            debug_assert!(false, "releasing unallocated deque {id}");
            return false;
        };
        let owner = match cell.slot.get() {
            Some(slot) => slot.owner,
            None => {
                debug_assert!(false, "releasing unregistered deque {id}");
                return false;
            }
        };
        let shard = self.shard_of(owner);
        let mut st = shard.state.lock();
        let pos = cell.live_pos.swap(DEAD, Ordering::AcqRel);
        if pos == DEAD {
            debug_assert!(false, "deque {id} released while not live");
            return false;
        }
        debug_assert_eq!(
            shard.entry(pos).map(|e| e.load(Ordering::Relaxed)),
            Some(id.0),
            "live index corrupt at {id}"
        );
        st.len -= 1;
        if pos != st.len {
            // The former tail moves into `pos`; fix its back-pointer. A
            // lock-free reader may briefly see the tail id at both
            // positions (or the released id at `pos`) — either way it
            // reads an id that was live an instant ago, so its steal just
            // misses.
            let moved = shard
                .entry(st.len)
                .expect("tail entry exists")
                .load(Ordering::Relaxed);
            shard
                .entry(pos)
                .expect("released entry exists")
                .store(moved, Ordering::Release);
            self.cell(moved as usize)
                .expect("moved id has a cell")
                .live_pos
                .store(pos, Ordering::Release);
        }
        shard.len.store(st.len, Ordering::Release);
        // Compaction after a mass release: when the array is mostly dead,
        // re-arm the threshold at twice the survivors. Segment memory is
        // recycled, never deallocated (readers depend on it staying put);
        // the counted event marks the shard absorbing a release burst.
        if st.cap > 64 && st.len < st.cap / 4 {
            st.cap = st.len * 2;
            self.compactions.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Re-inserts a recycled deque into the live index: the owner popped it
    /// from its free pool and will use it as its active deque again. Must be
    /// called by the owner, only after a matching [`release`](Self::release).
    pub fn reuse(&self, id: DequeId) {
        let owner = self
            .owner_of(id)
            .expect("reusing a deque that was never registered");
        self.live_insert(id, owner);
    }

    /// True if `id` is currently in the live index. Lock-free; racy by
    /// nature (the answer may change the instant it is returned).
    pub fn is_live(&self, id: DequeId) -> bool {
        self.cell(id.index())
            .map(|c| c.live_pos.load(Ordering::Acquire) != DEAD)
            .unwrap_or(false)
    }

    /// Number of deques currently in the live index (racy snapshot summed
    /// over shards).
    pub fn live_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Acquire))
            .sum()
    }

    /// High-water mark of [`live_len`](Self::live_len) over the registry's
    /// lifetime. By Lemma 7 this is bounded by `P * (U + 1)`.
    pub fn live_high_water(&self) -> usize {
        self.live_high_water.load(Ordering::Relaxed)
    }

    /// Number of shard-list compactions performed by
    /// [`release`](Self::release).
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Number of live-set shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current value of `gTotalDeques`: number of deques ever allocated.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed).min(self.capacity)
    }

    /// True if no deque has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of deques this registry can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the slot for `id`, if the registering write has landed.
    pub fn get(&self, id: DequeId) -> Option<&Slot<T>> {
        self.cell(id.index()).and_then(|c| c.slot.get())
    }

    /// Id of the worker that owns deque `id`, if the registering write has
    /// landed. Owners never change (freed deques are recycled by the same
    /// worker), so the answer is stable once `Some`.
    pub fn owner_of(&self, id: DequeId) -> Option<usize> {
        self.get(id).map(|s| s.owner)
    }

    /// Attempts to steal from deque `id` (the paper's `popTop` on
    /// `randomDeque()`'s result). An unset slot reads as an empty deque.
    pub fn steal(&self, id: DequeId) -> Steal<T> {
        match self.get(id) {
            Some(slot) => slot.stealer.steal(),
            None => Steal::Empty,
        }
    }

    /// Steal-half from deque `id`: up to `ceil(live / 2)` items (capped at
    /// `limit`, clamped to at least 1) appended to `out` in original
    /// order. An unset slot reads as an empty deque. `limit == 1` is
    /// exactly [`steal`](Self::steal).
    pub fn steal_batch(&self, id: DequeId, limit: usize, out: &mut Vec<T>) -> Steal<usize> {
        match self.get(id) {
            Some(slot) => slot.stealer.steal_batch_into(limit, out),
            None => Steal::Empty,
        }
    }

    /// Maps a uniform random value onto an allocated deque id, i.e. the
    /// paper's `randomDeque()` over `[0, gTotalDeques)`. Returns `None`
    /// when no deque exists yet.
    ///
    /// The sampled slot may be dead (freed); the caller eats a failed
    /// steal, exactly as the paper's analysis assumes. This is the
    /// ablation baseline for [`random_live_id`](Self::random_live_id).
    ///
    /// Uses the widening-multiply mapping `(uniform * n) >> 64` instead of
    /// `uniform % n`: same cost, and the result is uniform to within
    /// 2⁻⁶⁴·n instead of the modulo's bias toward small ids (which for the
    /// analyzed `randomDeque()` would systematically favor the deques
    /// allocated first).
    pub fn random_id(&self, uniform: u64) -> Option<DequeId> {
        let n = self.len() as u64;
        if n == 0 {
            None
        } else {
            Some(DequeId(((uniform as u128 * n as u128) >> 64) as u32))
        }
    }

    /// Maps a uniform random value onto a **live** deque id: uniform over
    /// the live set (to within the race window of concurrent
    /// register/release traffic). Returns `None` when the live set is
    /// empty.
    ///
    /// The thief sums the shard lengths without locks, widening-multiplies
    /// the uniform value onto the total, walks shards to the target, and
    /// reads the landing entry with a single atomic load — the entire draw
    /// is lock-free and RMW-free, so consecutive draws pipeline instead of
    /// serializing on a mutex. If concurrent releases shrink a shard
    /// mid-walk the target index is clamped; if they drain the landing
    /// shard entirely the walk continues into the next non-empty shard, so
    /// a live deque is returned whenever one exists for the duration of
    /// the call. A draw racing a release may return an id that died
    /// mid-call; the steal then finds it empty, like any lost race.
    pub fn random_live_id(&self, uniform: u64) -> Option<DequeId> {
        let total: usize = self.live_len();
        if total == 0 {
            return None;
        }
        let mut target = ((uniform as u128 * total as u128) >> 64) as usize;
        // Two passes over the shards: the first walks to the sampled
        // position, the second absorbs concurrent shrinks by taking the
        // first non-empty shard after the landing point.
        for shard in self.shards.iter().chain(self.shards.iter()) {
            let n = shard.len.load(Ordering::Acquire);
            if n == 0 {
                continue;
            }
            if target < n {
                if let Some(e) = shard.entry(target) {
                    return Some(DequeId(e.load(Ordering::Acquire)));
                }
                // Landing segment raced away (cannot normally happen —
                // segments are never freed): take the next shard's head.
                target = 0;
            } else {
                target -= n;
            }
        }
        // Everything we looked at drained mid-walk; last resort, scan for
        // any remaining live id.
        for shard in self.shards.iter() {
            if shard.len.load(Ordering::Acquire) > 0 {
                if let Some(e) = shard.entry(0) {
                    return Some(DequeId(e.load(Ordering::Acquire)));
                }
            }
        }
        None
    }

    /// Maps a uniform random value onto a live deque id **within shard
    /// `shard`** (taken modulo the shard count), or `None` when that shard
    /// is currently empty. Same lock-free single-entry-load draw as
    /// [`random_live_id`](Self::random_live_id), restricted to one shard —
    /// the locality-preferring half of an affinity steal policy (deques
    /// land in shard `owner % shards`, so one shard groups the deques of
    /// related workers). Racy like every live-set read: a returned id may
    /// die before the steal reaches it.
    pub fn random_live_id_in_shard(&self, shard: usize, uniform: u64) -> Option<DequeId> {
        let shard = &self.shards[shard % self.shards.len()];
        let n = shard.len.load(Ordering::Acquire);
        if n == 0 {
            return None;
        }
        let mut target = ((uniform as u128 * n as u128) >> 64) as usize;
        // Clamp against a concurrent shrink between the length load and
        // the entry read; a stale entry just yields a failed steal.
        target = target.min(n - 1);
        shard
            .entry(target)
            .map(|e| DequeId(e.load(Ordering::Acquire)))
    }
}

impl<T> std::fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field(
                "live_high_water",
                &self.live_high_water.load(Ordering::Relaxed),
            )
            .field("compactions", &self.compactions.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DequeKind, WorkerHandle};

    #[test]
    fn register_and_steal() {
        let reg = Registry::with_capacity(8);
        let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        let id = reg.register(0, s).unwrap();
        assert_eq!(id, DequeId(0));
        assert_eq!(reg.len(), 1);
        w.push_bottom(99);
        assert_eq!(reg.steal(id).success(), Some(99));
        assert!(reg.steal(id).is_empty());
    }

    #[test]
    fn sequential_ids() {
        let reg: Registry<u32> = Registry::with_capacity(4);
        for i in 0..4 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            let id = reg.register(i, s).unwrap();
            assert_eq!(id.index(), i);
        }
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn capacity_exhaustion() {
        let reg: Registry<u32> = Registry::with_capacity(2);
        let (_w1, s1) = WorkerHandle::new(DequeKind::Mutex);
        let (_w2, s2) = WorkerHandle::new(DequeKind::Mutex);
        let (_w3, s3) = WorkerHandle::new(DequeKind::Mutex);
        assert!(reg.register(0, s1).is_ok());
        assert!(reg.register(0, s2).is_ok());
        assert_eq!(reg.register(0, s3), Err(RegistryError::Full));
        // A failed registration must not corrupt the count.
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn random_id_distribution_covers_all() {
        let reg: Registry<u32> = Registry::with_capacity(16);
        for _ in 0..5 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            reg.register(0, s).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        // Uniform values spread across the whole u64 range (the mapping is
        // `(u * n) >> 64`, so coverage needs full-range inputs).
        for i in 0..100u64 {
            let u = i.wrapping_mul(u64::MAX / 100);
            let id = reg.random_id(u).unwrap();
            assert!(id.index() < 5, "id out of range");
            seen.insert(id);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn random_id_empty_registry() {
        let reg: Registry<u32> = Registry::with_capacity(4);
        assert_eq!(reg.random_id(12345), None);
        assert_eq!(reg.random_live_id(12345), None);
    }

    #[test]
    fn owner_metadata() {
        let reg: Registry<u32> = Registry::with_capacity(4);
        let (_w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        let id = reg.register(7, s).unwrap();
        assert_eq!(reg.get(id).unwrap().owner, 7);
        assert_eq!(reg.owner_of(id), Some(7));
        assert_eq!(reg.owner_of(DequeId(3)), None, "unset slot has no owner");
    }

    #[test]
    fn concurrent_registration_unique_ids() {
        let reg = std::sync::Arc::new(Registry::<u32>::with_capacity_and_shards(1024, 4));
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..100 {
                    let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
                    ids.push(reg.register(t, s).unwrap());
                    // Keep the worker alive long enough to register; deque
                    // contents do not matter for this test.
                    drop(w);
                }
                ids
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 800, "ids are unique");
        assert_eq!(reg.len(), 800);
        assert_eq!(reg.live_len(), 800, "all registered deques are live");
        assert_eq!(reg.live_high_water(), 800);
    }

    #[test]
    fn segment_math_is_contiguous() {
        // Every index maps into exactly one (segment, offset) and offsets
        // are in range for the segment's size.
        let mut prev = (0usize, usize::MAX);
        for i in 0..10_000usize {
            let (k, off) = locate(i);
            assert!(off < (SEG_BASE << k), "offset {off} out of segment {k}");
            if (k, off) == (prev.0, prev.1) {
                panic!("indices {i} and {} collide", i - 1);
            }
            if k == prev.0 {
                assert_eq!(off, prev.1.wrapping_add(1), "gap inside segment {k}");
            } else {
                assert_eq!(k, prev.0 + 1, "segment skipped at index {i}");
                assert_eq!(off, 0, "new segment {k} does not start at 0");
            }
            prev = (k, off);
        }
    }

    #[test]
    fn register_across_segment_boundaries() {
        let reg: Registry<u32> = Registry::with_capacity(1 << 12);
        let mut ids = Vec::new();
        for i in 0..100 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            ids.push(reg.register(i, s).unwrap());
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(reg.owner_of(*id), Some(i), "slot {i} survived growth");
        }
    }

    #[test]
    fn release_and_reuse_cycle() {
        let reg: Registry<u32> = Registry::with_capacity(8);
        let (_w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        let id = reg.register(0, s).unwrap();
        assert!(reg.is_live(id));
        assert_eq!(reg.live_len(), 1);
        reg.release(id);
        assert!(!reg.is_live(id));
        assert_eq!(reg.live_len(), 0);
        assert_eq!(reg.len(), 1, "release never deallocates");
        reg.reuse(id);
        assert!(reg.is_live(id));
        assert_eq!(reg.live_len(), 1);
    }

    #[test]
    fn random_live_id_skips_dead() {
        let reg: Registry<u32> = Registry::with_capacity(64);
        let mut ids = Vec::new();
        for _ in 0..16 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            ids.push(reg.register(0, s).unwrap());
        }
        // Kill all but three.
        let survivors: Vec<_> = vec![ids[3], ids[8], ids[15]];
        for id in &ids {
            if !survivors.contains(id) {
                reg.release(*id);
            }
        }
        assert_eq!(reg.live_len(), 3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..300u64 {
            let u = i.wrapping_mul(u64::MAX / 300);
            let id = reg.random_live_id(u).unwrap();
            assert!(survivors.contains(&id), "sampled dead deque {id}");
            seen.insert(id);
        }
        assert_eq!(seen.len(), 3, "all live deques reachable");
    }

    #[test]
    fn swap_remove_fixes_moved_backpointer() {
        let reg: Registry<u32> = Registry::with_capacity(8);
        let mut ids = Vec::new();
        for _ in 0..4 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            ids.push(reg.register(0, s).unwrap());
        }
        // Releasing the head swap-moves the tail into position 0; the
        // tail must then still be releasable (its back-pointer was fixed).
        reg.release(ids[0]);
        reg.release(ids[3]);
        assert_eq!(reg.live_len(), 2);
        assert!(reg.is_live(ids[1]));
        assert!(reg.is_live(ids[2]));
    }

    #[test]
    fn compaction_fires_after_mass_release() {
        let reg: Registry<u32> = Registry::with_capacity(2048);
        let mut ids = Vec::new();
        for _ in 0..1024 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            ids.push(reg.register(0, s).unwrap());
        }
        let mut compacted = false;
        for id in &ids[..1000] {
            compacted |= reg.release(*id);
        }
        assert!(compacted, "mass release should compact the shard list");
        assert!(reg.compactions() > 0);
        assert_eq!(reg.live_len(), 24);
        assert_eq!(reg.live_high_water(), 1024);
    }

    #[test]
    fn steal_batch_through_registry() {
        let reg = Registry::with_capacity(8);
        let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        let id = reg.register(0, s).unwrap();
        for i in 0..8u32 {
            w.push_bottom(i);
        }
        let mut out = Vec::new();
        assert_eq!(reg.steal_batch(id, 16, &mut out), Steal::Success(4));
        assert_eq!(out, vec![0, 1, 2, 3]);
        // Unset slot reads as empty.
        assert_eq!(reg.steal_batch(DequeId(5), 16, &mut out), Steal::Empty);
    }

    #[test]
    fn shard_scoped_draw_stays_in_shard() {
        let reg: Registry<u32> = Registry::with_capacity_and_shards(64, 4);
        // Owners 0..8 spread over 4 shards; shard k holds owners k, k+4.
        let mut ids = Vec::new();
        for owner in 0..8 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            ids.push(reg.register(owner, s).unwrap());
        }
        for shard in 0..4 {
            let expect: Vec<DequeId> = vec![ids[shard], ids[shard + 4]];
            let mut seen = std::collections::HashSet::new();
            for i in 0..100u64 {
                let u = i.wrapping_mul(u64::MAX / 100);
                let id = reg.random_live_id_in_shard(shard, u).unwrap();
                assert!(expect.contains(&id), "draw left shard {shard}");
                seen.insert(id);
            }
            assert_eq!(seen.len(), 2, "both shard members reachable");
        }
        // Draining a shard makes its draw return None.
        reg.release(ids[1]);
        reg.release(ids[5]);
        assert_eq!(reg.random_live_id_in_shard(1, 12345), None);
        // Out-of-range shard indices wrap instead of panicking.
        assert!(reg.random_live_id_in_shard(4, 12345).is_some());
    }

    #[test]
    fn live_ids_spread_over_shards() {
        let reg: Registry<u32> = Registry::with_capacity_and_shards(64, 4);
        assert_eq!(reg.shard_count(), 4);
        for owner in 0..8 {
            let (_w, s) = WorkerHandle::new(DequeKind::Mutex);
            reg.register(owner, s).unwrap();
        }
        assert_eq!(reg.live_len(), 8);
        // Sampling must reach deques in every shard.
        let mut seen = std::collections::HashSet::new();
        for i in 0..400u64 {
            let u = i.wrapping_mul(u64::MAX / 400);
            seen.insert(reg.random_live_id(u).unwrap());
        }
        assert_eq!(seen.len(), 8);
    }
}
