//! Work, span, and depth metrics for weighted dags (§2 of the paper).
//!
//! * **Work** `W` — number of vertices (edge weights excluded).
//! * **Span** `S` — longest weighted path, i.e. sum of edge weights along a
//!   root-to-final path; for an unweighted dag this is the classic
//!   edge-count span.
//! * **Weighted depth** `d_G(v)` — length of the longest weighted path from
//!   the root to `v` (used by the paper's enabling-tree analysis).

use crate::dag::{VertexId, VertexKind, WDag, Weight};

/// Summary metrics of a weighted dag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    /// Work `W`: number of vertices.
    pub work: u64,
    /// Weighted span `S`: longest weighted root-to-final path (edge-weight
    /// sum).
    pub span: u64,
    /// Number of heavy edges in the dag.
    pub heavy_edges: u64,
    /// Sum of `δ − 1` over all heavy edges: the total latency that could be
    /// hidden.
    pub total_latency: u64,
    /// Number of vertices of each kind `(compute, fork, join, io, nop)`.
    pub kind_counts: KindCounts,
    /// Average parallelism `W / S` (floored; `S ≥ 1` for any dag with ≥ 2
    /// vertices, and defined as `W` for a single-vertex dag).
    pub parallelism_x100: u64,
}

/// Vertex counts per [`VertexKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// `VertexKind::Compute` count.
    pub compute: u64,
    /// `VertexKind::Fork` count.
    pub fork: u64,
    /// `VertexKind::Join` count.
    pub join: u64,
    /// `VertexKind::Io` count.
    pub io: u64,
    /// `VertexKind::Nop` count.
    pub nop: u64,
}

impl Metrics {
    /// Computes all metrics in one topological pass.
    pub fn compute(dag: &WDag) -> Metrics {
        let depths = weighted_depths(dag);
        let span = depths[dag.final_vertex().index()];

        let mut heavy_edges = 0;
        let mut total_latency = 0;
        for (_, e) in dag.heavy_edges() {
            heavy_edges += 1;
            total_latency += e.weight - 1;
        }

        let mut kind_counts = KindCounts::default();
        for v in dag.vertices() {
            match dag.kind(v) {
                VertexKind::Compute => kind_counts.compute += 1,
                VertexKind::Fork => kind_counts.fork += 1,
                VertexKind::Join => kind_counts.join += 1,
                VertexKind::Io => kind_counts.io += 1,
                VertexKind::Nop => kind_counts.nop += 1,
            }
        }

        let work = dag.work();
        let parallelism_x100 = (work * 100).checked_div(span).unwrap_or(work * 100);

        Metrics {
            work,
            span,
            heavy_edges,
            total_latency,
            kind_counts,
            parallelism_x100,
        }
    }
}

/// Longest weighted path from the root to each vertex (`d_G(v)`), measured
/// as the sum of edge weights; the root has depth 0.
pub fn weighted_depths(dag: &WDag) -> Vec<u64> {
    let mut d = vec![0u64; dag.len()];
    for &u in dag.topo_order() {
        let du = d[u.index()];
        for e in dag.out(u).iter() {
            let cand = du + e.weight;
            if cand > d[e.dst.index()] {
                d[e.dst.index()] = cand;
            }
        }
    }
    d
}

/// Unweighted depth (edge count on the longest path, ignoring weights) of
/// each vertex — the traditional "level".
pub fn levels(dag: &WDag) -> Vec<u64> {
    let mut d = vec![0u64; dag.len()];
    for &u in dag.topo_order() {
        let du = d[u.index()];
        for e in dag.out(u).iter() {
            let cand = du + 1;
            if cand > d[e.dst.index()] {
                d[e.dst.index()] = cand;
            }
        }
    }
    d
}

/// The longest weighted path from each vertex *to the final vertex* —
/// the "remaining span" of a vertex. The final vertex has remaining span 0.
pub fn remaining_span(dag: &WDag) -> Vec<u64> {
    let mut d = vec![0u64; dag.len()];
    for &u in dag.topo_order().iter().rev() {
        let mut best = 0;
        for e in dag.out(u).iter() {
            best = best.max(e.weight + d[e.dst.index()]);
        }
        d[u.index()] = best;
    }
    d
}

/// Finds one critical (longest weighted) path from root to final vertex.
pub fn critical_path(dag: &WDag) -> Vec<VertexId> {
    let rem = remaining_span(dag);
    let mut path = vec![dag.root()];
    let mut cur = dag.root();
    while cur != dag.final_vertex() {
        // Follow an out-edge on the critical path: weight + remaining of
        // target equals remaining of cur.
        let next = dag
            .out(cur)
            .iter()
            .find(|e| e.weight + rem[e.dst.index()] == rem[cur.index()])
            .expect("critical path is connected");
        cur = next.dst;
        path.push(cur);
    }
    path
}

/// Per-level vertex counts on *unweighted* levels — used by the Brent
/// level-by-level scheduler.
pub fn level_histogram(dag: &WDag) -> Vec<u64> {
    let lv = levels(dag);
    let max = lv.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; max + 1];
    for l in lv {
        hist[l as usize] += 1;
    }
    hist
}

/// Sum of edge weights along an explicit path (for tests/diagnostics).
pub fn path_weight(dag: &WDag, path: &[VertexId]) -> Option<Weight> {
    let mut total = 0;
    for w in path.windows(2) {
        let e = dag.out(w[0]).iter().find(|e| e.dst == w[1])?;
        total += e.weight;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Block;
    use crate::dag::{RawDagBuilder, VertexKind};

    fn figure_one(delta: u64) -> WDag {
        Block::par(
            Block::work(1),
            Block::seq([Block::latency(delta), Block::work(1)]),
        )
        .build()
    }

    #[test]
    fn single_vertex_metrics() {
        let mut b = RawDagBuilder::new();
        b.add_vertex(VertexKind::Compute);
        let d = b.build().unwrap();
        let m = Metrics::compute(&d);
        assert_eq!(m.work, 1);
        assert_eq!(m.span, 0);
        assert_eq!(m.heavy_edges, 0);
        assert_eq!(m.parallelism_x100, 100);
    }

    #[test]
    fn chain_span_counts_edges() {
        let d = Block::work(10).build();
        let m = Metrics::compute(&d);
        assert_eq!(m.work, 10);
        assert_eq!(m.span, 9);
    }

    #[test]
    fn figure_one_metrics() {
        let d = figure_one(8);
        let m = Metrics::compute(&d);
        assert_eq!(m.work, 5);
        assert_eq!(m.span, 10); // fork -> io -(8)-> double -> join
        assert_eq!(m.heavy_edges, 1);
        assert_eq!(m.total_latency, 7);
        assert_eq!(m.kind_counts.fork, 1);
        assert_eq!(m.kind_counts.join, 1);
        assert_eq!(m.kind_counts.io, 1);
        assert_eq!(m.kind_counts.compute, 2);
    }

    #[test]
    fn weighted_vs_unweighted_depth() {
        let d = figure_one(8);
        let wd = weighted_depths(&d);
        let lv = levels(&d);
        let m = Metrics::compute(&d);
        assert_eq!(*wd.iter().max().unwrap(), m.span);
        // Unweighted span of the same dag is 3 edges.
        assert_eq!(*lv.iter().max().unwrap(), 3);
    }

    #[test]
    fn remaining_span_root_equals_span() {
        let d = figure_one(5);
        let rem = remaining_span(&d);
        let m = Metrics::compute(&d);
        assert_eq!(rem[d.root().index()], m.span);
        assert_eq!(rem[d.final_vertex().index()], 0);
    }

    #[test]
    fn critical_path_has_span_weight() {
        let b = Block::seq([
            Block::work(3),
            Block::par(
                Block::seq([Block::latency(20), Block::work(1)]),
                Block::work(50),
            ),
            Block::work(2),
        ]);
        let d = b.build();
        let m = Metrics::compute(&d);
        let p = critical_path(&d);
        assert_eq!(p.first().copied(), Some(d.root()));
        assert_eq!(p.last().copied(), Some(d.final_vertex()));
        assert_eq!(path_weight(&d, &p), Some(m.span));
    }

    #[test]
    fn critical_path_prefers_long_latency() {
        // Latency 100 dominates a 50-vertex chain.
        let b = Block::par(
            Block::seq([Block::latency(100), Block::work(1)]),
            Block::work(50),
        );
        let d = b.build();
        let m = Metrics::compute(&d);
        assert_eq!(m.span, 102); // fork -> io -(100)-> work -> join
    }

    #[test]
    fn work_path_dominates_short_latency() {
        let b = Block::par(
            Block::seq([Block::latency(5), Block::work(1)]),
            Block::work(50),
        );
        let d = b.build();
        let m = Metrics::compute(&d);
        assert_eq!(m.span, 51); // fork -> 50-chain -> join
    }

    #[test]
    fn level_histogram_sums_to_work() {
        let d = Block::par_tree(16, &mut |_| Block::work(2)).build();
        let h = level_histogram(&d);
        assert_eq!(h.iter().sum::<u64>(), d.work());
        assert_eq!(h[0], 1); // only the root at level 0
    }

    #[test]
    fn path_weight_rejects_non_paths() {
        let d = Block::work(3).build();
        let bad = vec![d.final_vertex(), d.root()];
        assert_eq!(path_weight(&d, &bad), None);
    }

    #[test]
    fn parallelism_of_wide_dag() {
        let d = Block::par_tree(64, &mut |_| Block::work(32)).build();
        let m = Metrics::compute(&d);
        assert!(m.parallelism_x100 > 30 * 100, "wide dag is parallel");
    }
}
