//! A from-scratch Dinic max-flow solver.
//!
//! Substrate for the exact suspension-width computation
//! ([`crate::suspension`]), which reduces to a maximum-weight-closure
//! problem and hence to a single s-t min-cut. Kept deliberately small and
//! dependency-free: integer capacities, adjacency-list representation,
//! level-graph BFS + blocking-flow DFS.

/// Capacity type. `CAP_INF` represents an uncuttable edge.
pub type Cap = u64;

/// Effectively infinite capacity (safe to sum without overflow).
pub const CAP_INF: Cap = u64::MAX / 4;

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    cap: Cap,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network on `n` nodes.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<FlowEdge>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from -> to` with capacity `cap` (and the
    /// implicit residual reverse edge with capacity 0).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: Cap) {
        debug_assert!(from < self.graph.len() && to < self.graph.len());
        debug_assert_ne!(from, to, "self-loops are useless in a flow network");
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(FlowEdge {
            to,
            cap,
            rev: rev_from,
        });
        self.graph[to].push(FlowEdge {
            to: from,
            cap: 0,
            rev: rev_to,
        });
    }

    /// Computes the maximum flow from `s` to `t` (Dinic's algorithm),
    /// mutating residual capacities in place.
    pub fn max_flow(&mut self, s: usize, t: usize) -> Cap {
        assert_ne!(s, t);
        let n = self.graph.len();
        let mut flow = 0;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];

        loop {
            // BFS: build the level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[s] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for e in &self.graph[v] {
                    if e.cap > 0 && level[e.to] < 0 {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[t] < 0 {
                return flow;
            }
            // DFS: find blocking flow.
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, CAP_INF, &level, &mut iter);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
    }

    fn dfs(&mut self, v: usize, t: usize, up_to: Cap, level: &[i32], iter: &mut [usize]) -> Cap {
        if v == t {
            return up_to;
        }
        while iter[v] < self.graph[v].len() {
            let (to, cap, rev) = {
                let e = &self.graph[v][iter[v]];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[v] < level[to] {
                let d = self.dfs(to, t, up_to.min(cap), level, iter);
                if d > 0 {
                    self.graph[v][iter[v]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0
    }

    /// After [`Self::max_flow`], returns the source side of a minimum cut:
    /// nodes reachable from `s` in the residual graph.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.graph.len();
        let mut seen = vec![false; n];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for e in &self.graph[v] {
                if e.cap > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 7);
        assert_eq!(f.max_flow(0, 1), 7);
    }

    #[test]
    fn series_edges_bottleneck() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 10);
        f.add_edge(1, 2, 3);
        assert_eq!(f.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 4);
        f.add_edge(1, 3, 4);
        f.add_edge(0, 2, 5);
        f.add_edge(2, 3, 5);
        assert_eq!(f.max_flow(0, 3), 9);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS-style 6-node example; known max flow 23.
        let mut f = FlowNetwork::new(6);
        f.add_edge(0, 1, 16);
        f.add_edge(0, 2, 13);
        f.add_edge(1, 2, 10);
        f.add_edge(2, 1, 4);
        f.add_edge(1, 3, 12);
        f.add_edge(3, 2, 9);
        f.add_edge(2, 4, 14);
        f.add_edge(4, 3, 7);
        f.add_edge(3, 5, 20);
        f.add_edge(4, 5, 4);
        assert_eq!(f.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 5);
        f.add_edge(2, 3, 5);
        assert_eq!(f.max_flow(0, 3), 0);
    }

    #[test]
    fn min_cut_matches_flow_value() {
        let mut f = FlowNetwork::new(6);
        f.add_edge(0, 1, 16);
        f.add_edge(0, 2, 13);
        f.add_edge(1, 3, 12);
        f.add_edge(2, 4, 14);
        f.add_edge(3, 5, 20);
        f.add_edge(4, 5, 4);
        f.add_edge(3, 2, 9);
        f.add_edge(4, 3, 7);
        let orig = f.clone();
        let value = f.max_flow(0, 5);
        let side = f.min_cut_source_side(0);
        assert!(side[0] && !side[5]);
        // Sum original capacities crossing the cut equals the flow value.
        let mut cut = 0;
        for v in 0..6 {
            if !side[v] {
                continue;
            }
            for e in &orig.graph[v] {
                // Skip residual (cap-0) reverse edges.
                if e.cap > 0 && !side[e.to] {
                    cut += e.cap;
                }
            }
        }
        assert_eq!(cut, value);
    }

    #[test]
    fn infinite_edges_never_cut() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 5);
        f.add_edge(1, 2, CAP_INF);
        f.add_edge(2, 3, 7);
        assert_eq!(f.max_flow(0, 3), 5);
        let side = f.min_cut_source_side(0);
        // The infinite edge must not cross the cut.
        assert_eq!(side[1], side[2]);
    }

    #[test]
    fn randomized_flow_conservation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(4..12);
            let mut f = FlowNetwork::new(n);
            let mut caps = Vec::new();
            for u in 0..n - 1 {
                for v in u + 1..n {
                    if rng.gen_bool(0.5) {
                        let c = rng.gen_range(1..20);
                        f.add_edge(u, v, c);
                        caps.push((u, v, c));
                    }
                }
            }
            let orig = f.clone();
            let value = f.max_flow(0, n - 1);
            // Max-flow = min-cut check on the residual graph.
            let side = f.min_cut_source_side(0);
            let mut cut = 0;
            for (u, v, c) in &caps {
                if side[*u] && !side[*v] {
                    cut += c;
                }
            }
            assert_eq!(cut, value, "max-flow equals min-cut");
            drop(orig);
        }
    }
}
