//! Pure fork-join Fibonacci: the `U = 0` workload.
//!
//! `fib(n)` forks `fib(n−1)` and `fib(n−2)` and adds the results. No edge
//! carries latency, so the dag is a traditional unweighted computation and
//! the paper proves the latency-hiding scheduler *is* standard work
//! stealing on it (one deque per worker, classic `O(W/P + S)` bound). The
//! benchmark harness uses this workload to demonstrate the "no penalty for
//! computations that don't suspend" claim.

use super::Workload;
use crate::builder::Block;

/// Builds the fork-join Fibonacci dag.
///
/// * `n` — Fibonacci index.
/// * `grain` — sequential cutoff: calls with `n ≤ grain` become a single
///   work chain whose length models the sequential fib cost (`fib(n)`
///   additions, clamped to ≥ 1).
///
/// Analytic values: `U = 0`; work grows as the Fibonacci tree above the
/// cutoff.
pub fn fib(n: u64, grain: u64) -> Workload {
    let block = fib_block(n, grain);
    Workload::from_block(format!("fib(n={n}, grain={grain})"), block)
}

fn fib_block(n: u64, grain: u64) -> Block {
    if n <= grain.max(1) {
        Block::work(seq_cost(n))
    } else {
        Block::seq([
            Block::par(fib_block(n - 1, grain), fib_block(n - 2, grain)),
            Block::work(1), // the addition
        ])
    }
}

/// Number of unit operations sequential fib(n) performs (≈ number of calls).
fn seq_cost(n: u64) -> u64 {
    // fib_count(n) = 2·fib(n+1) − 1 calls; cap to keep leaf chains sane.
    let mut a = 1u64; // fib(1)
    let mut b = 1u64; // fib(2)
    for _ in 2..=n {
        let c = a.saturating_add(b);
        a = b;
        b = c;
    }
    (2 * b - 1).min(1 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::suspension::suspension_width;

    #[test]
    fn fib_is_unweighted() {
        let w = fib(12, 3);
        assert!(w.dag.is_unweighted());
        assert_eq!(w.expected_u, 0);
        assert_eq!(suspension_width(&w.dag), 0);
    }

    #[test]
    fn small_n_is_single_chain() {
        let w = fib(2, 5);
        let m = Metrics::compute(&w.dag);
        assert_eq!(m.kind_counts.fork, 0);
        assert_eq!(m.work, m.span + 1); // pure chain
    }

    #[test]
    fn fork_count_follows_fib_recursion() {
        // Number of Par nodes for fib(n) with grain g equals the number of
        // internal calls: T(n) = T(n-1) + T(n-2) + 1, T(k<=g) = 0.
        fn forks(n: u64, g: u64) -> u64 {
            if n <= g {
                0
            } else {
                1 + forks(n - 1, g) + forks(n - 2, g)
            }
        }
        for (n, g) in [(8u64, 2u64), (10, 3), (12, 5)] {
            let w = fib(n, g);
            let m = Metrics::compute(&w.dag);
            assert_eq!(m.kind_counts.fork, forks(n, g), "n={n} g={g}");
        }
    }

    #[test]
    fn parallelism_grows_with_n() {
        let small = Metrics::compute(&fib(8, 2).dag);
        let large = Metrics::compute(&fib(14, 2).dag);
        assert!(large.parallelism_x100 > small.parallelism_x100);
    }
}
