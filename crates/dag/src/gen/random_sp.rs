//! Seeded random series-parallel programs with latency leaves.
//!
//! Generates random [`Block`] trees; every dag they compile to satisfies
//! the paper's structural assumptions by construction, so these are the
//! fuzzing workhorse for the property tests (metrics agreement, suspension
//! width, scheduler correctness, bound checks).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::Workload;
use crate::builder::Block;
use crate::dag::Weight;

/// Parameters for [`random_sp`]. Build with the fluent setters.
#[derive(Debug, Clone, Copy)]
pub struct RandomSpParams {
    /// RNG seed (same seed ⇒ same dag).
    pub seed: u64,
    /// Rough target for the number of leaves (work/latency blocks).
    pub target_leaves: u32,
    /// Probability that a leaf is a latency instruction.
    pub latency_prob: f64,
    /// Latencies are drawn uniformly from `2..=max_delta`.
    pub max_delta: Weight,
    /// Work chains are drawn uniformly from `1..=max_work`.
    pub max_work: u64,
}

impl Default for RandomSpParams {
    fn default() -> Self {
        RandomSpParams {
            seed: 0,
            target_leaves: 40,
            latency_prob: 0.3,
            max_delta: 50,
            max_work: 8,
        }
    }
}

impl RandomSpParams {
    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the target leaf count.
    pub fn target_leaves(mut self, n: u32) -> Self {
        self.target_leaves = n.max(1);
        self
    }

    /// Sets the probability that a leaf incurs latency.
    pub fn latency_prob(mut self, p: f64) -> Self {
        self.latency_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum latency.
    pub fn max_delta(mut self, d: Weight) -> Self {
        self.max_delta = d.max(2);
        self
    }

    /// Sets the maximum leaf work-chain length.
    pub fn max_work(mut self, w: u64) -> Self {
        self.max_work = w.max(1);
        self
    }
}

/// Generates a random series-parallel workload.
pub fn random_sp(params: RandomSpParams) -> Workload {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let block = gen_block(&mut rng, params.target_leaves, &params);
    Workload::from_block(
        format!(
            "random_sp(seed={}, leaves={}, p_lat={})",
            params.seed, params.target_leaves, params.latency_prob
        ),
        block,
    )
}

fn gen_block(rng: &mut StdRng, budget: u32, p: &RandomSpParams) -> Block {
    if budget <= 1 {
        return gen_leaf(rng, p);
    }
    // Split the leaf budget between two children, composed either
    // sequentially or in parallel.
    let left = rng.gen_range(1..budget);
    let right = budget - left;
    let a = gen_block(rng, left, p);
    let b = gen_block(rng, right, p);
    if rng.gen_bool(0.5) {
        Block::seq([a, b])
    } else {
        Block::par(a, b)
    }
}

fn gen_leaf(rng: &mut StdRng, p: &RandomSpParams) -> Block {
    if rng.gen_bool(p.latency_prob) {
        // A latency followed by a unit of post-processing keeps the dag
        // shaped like the paper's `input(); use(x)` pattern.
        Block::seq([
            Block::latency(rng.gen_range(2..=p.max_delta)),
            Block::work(1),
        ])
    } else {
        Block::work(rng.gen_range(1..=p.max_work))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::suspension::suspension_width;

    #[test]
    fn deterministic_per_seed() {
        let a = random_sp(RandomSpParams::default().seed(11));
        let b = random_sp(RandomSpParams::default().seed(11));
        assert_eq!(a.dag.work(), b.dag.work());
        assert_eq!(Metrics::compute(&a.dag).span, Metrics::compute(&b.dag).span);
        let c = random_sp(RandomSpParams::default().seed(12));
        // Overwhelmingly likely to differ.
        assert!(
            a.dag.work() != c.dag.work()
                || Metrics::compute(&a.dag).span != Metrics::compute(&c.dag).span
        );
    }

    #[test]
    fn analytic_values_hold_for_many_seeds() {
        for seed in 0..25 {
            let w = random_sp(RandomSpParams::default().seed(seed));
            let m = Metrics::compute(&w.dag);
            assert_eq!(m.work, w.block.analytic_work(), "seed {seed}");
            assert_eq!(m.span, w.block.analytic_span(), "seed {seed}");
            assert_eq!(
                suspension_width(&w.dag),
                w.expected_u,
                "seed {seed}: exact U must match the block's analytic U"
            );
        }
    }

    #[test]
    fn zero_latency_prob_is_unweighted() {
        let w = random_sp(RandomSpParams::default().seed(3).latency_prob(0.0));
        assert!(w.dag.is_unweighted());
        assert_eq!(w.expected_u, 0);
    }

    #[test]
    fn all_latency_leaves() {
        let w = random_sp(
            RandomSpParams::default()
                .seed(5)
                .latency_prob(1.0)
                .target_leaves(20),
        );
        let m = Metrics::compute(&w.dag);
        assert_eq!(m.kind_counts.io, 20);
        assert!(w.expected_u >= 1);
    }
}
