//! The "server" example (the paper's Figures 9 and 10).
//!
//! The server takes inputs one at a time from a user: `getInput()` incurs
//! latency; on each input the computation forks `f(input)` in parallel with
//! a recursive server instance, and all results are reduced with `g` as the
//! recursion unwinds. Because the recursive call happens only *after*
//! `getInput()` returns, at most one instruction is suspended at any time:
//! `U = 1` — the paper's minimal example.

use super::Workload;
use crate::builder::Block;
use crate::dag::Weight;

/// Builds the server workload.
///
/// * `requests` — number of inputs before the user types "Done".
/// * `delta` — latency of each `getInput()`.
/// * `f_work` — units of work to process one input (`f(input)`).
/// * `g_work` — units of work per combine `g(res1, res2)`.
///
/// Analytic values: `U = 1` (for `delta > 1`, `requests ≥ 1`);
/// `W = Θ(requests · (f_work + g_work))`;
/// span = `Θ(requests · (delta + g_work))` — the latencies of sequential
/// inputs all sit on the critical path, which is exactly why the paper's
/// bound charges latency only through `S`.
pub fn server(requests: u64, delta: Weight, f_work: u64, g_work: u64) -> Workload {
    fn go(k: u64, delta: Weight, f_work: u64, g_work: u64) -> Block {
        if k == 0 {
            // input = "Done": return the identity.
            Block::work(1)
        } else {
            Block::seq([
                Block::latency(delta), // getInput()
                Block::par(
                    Block::work(f_work.max(1)),       // f(input)
                    go(k - 1, delta, f_work, g_work), // server(f, g)
                ),
                Block::work(g_work.max(1)), // g(res1, res2)
            ])
        }
    }
    let block = go(requests, delta, f_work, g_work);
    Workload::from_block(
        format!("server(requests={requests}, delta={delta}, f={f_work}, g={g_work})"),
        block,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::suspension::suspension_width;

    #[test]
    fn u_is_one_regardless_of_requests() {
        for k in [1u64, 2, 10, 50] {
            let w = server(k, 40, 6, 1);
            assert_eq!(suspension_width(&w.dag), 1, "requests={k}");
            assert_eq!(w.expected_u, 1);
        }
    }

    #[test]
    fn zero_requests_is_trivial() {
        let w = server(0, 40, 6, 1);
        assert_eq!(w.expected_u, 0);
        assert_eq!(w.dag.work(), 1);
    }

    #[test]
    fn latencies_accumulate_on_span() {
        let w1 = server(10, 100, 4, 1);
        let w2 = server(10, 200, 4, 1);
        let s1 = Metrics::compute(&w1.dag).span;
        let s2 = Metrics::compute(&w2.dag).span;
        // 10 sequential getInputs: span grows by 10 × 100.
        assert_eq!(s2 - s1, 1_000);
    }

    #[test]
    fn f_work_is_mostly_off_critical_path() {
        // With long latencies, all f branches except the innermost one
        // (which has no further getInput to hide behind) stay off the
        // critical path: growing f from 2 to 500 moves the span only by
        // the innermost arm's difference, not by 5 × 498.
        let w1 = server(5, 1_000, 2, 1);
        let w2 = server(5, 1_000, 500, 1);
        let s1 = Metrics::compute(&w1.dag).span;
        let s2 = Metrics::compute(&w2.dag).span;
        // Innermost Par: f arm = f+1, base-case arm = 2.
        assert_eq!(s2 - s1, (500 + 1) - 3);
    }

    #[test]
    fn io_count_matches_requests() {
        let w = server(17, 30, 5, 2);
        let m = Metrics::compute(&w.dag);
        assert_eq!(m.kind_counts.io, 17);
        assert_eq!(m.kind_counts.fork, 17);
    }
}
