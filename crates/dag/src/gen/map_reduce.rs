//! Distributed map-and-reduce (the paper's Figures 7 and 8).
//!
//! `distMapReduce(f, g, id, lo, hi)` forks a balanced binary tree over `n`
//! values; each leaf fetches its value from a remote server (`getValue`, a
//! latency-incurring instruction), applies `f`, and the results are
//! combined up the tree with `g`. All `n` fetches can be outstanding
//! simultaneously, so the suspension width equals `n` — the paper's maximal
//! example, and the workload of its Figure 11 evaluation.

use super::Workload;
use crate::builder::Block;
use crate::dag::Weight;

/// Builds the map-reduce workload.
///
/// * `n` — number of remote values (leaves). Must be ≥ 1.
/// * `delta` — latency of each `getValue` in steps (δ > 1 makes it heavy).
/// * `leaf_work` — units of work for `f(x)` at each leaf (the paper's
///   evaluation used `fib(30)` here).
/// * `reduce_work` — units of work for each combine `g(x, y)`.
///
/// Analytic values: `U = n` (for `delta > 1`),
/// `W = n·(1 + leaf_work) + (n−1)·(2 + reduce_work + …buffers)`, and the
/// span is `O(lg n) + delta + leaf_work + O(lg n · reduce_work)`.
pub fn map_reduce(n: u64, delta: Weight, leaf_work: u64, reduce_work: u64) -> Workload {
    assert!(n >= 1, "map_reduce needs at least one value");
    let mut leaf = |_i: u64| {
        Block::seq([
            Block::latency(delta),         // getValue(i)
            Block::work(leaf_work.max(1)), // f(x)
        ])
    };
    let tree = Block::par_tree(n, &mut leaf);
    // Reductions happen at the join vertices; model g's cost as extra work
    // after each join by wrapping levels — simplest faithful shape: a
    // combine chain after the whole tree per internal node is wrong, so we
    // instead attach g to each Par via composition below.
    let block = attach_reduce(tree, reduce_work);
    Workload::from_block(
        format!("map_reduce(n={n}, delta={delta}, leaf={leaf_work}, g={reduce_work})"),
        block,
    )
}

/// Recursively rewrites `Par(a, b)` into `Seq[Par(a', b'), Work(g)]` so each
/// combine performs `g_work` units after its join, matching Figure 8 where
/// `g(res1, res2)` runs after the fork2 returns.
fn attach_reduce(b: Block, g_work: u64) -> Block {
    match b {
        Block::Par(l, r) => {
            let l = attach_reduce(*l, g_work);
            let r = attach_reduce(*r, g_work);
            Block::seq([Block::par(l, r), Block::work(g_work.max(1))])
        }
        Block::Seq(items) => Block::Seq(
            items
                .into_iter()
                .map(|i| attach_reduce(i, g_work))
                .collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::suspension::suspension_width;

    #[test]
    fn u_equals_n() {
        for n in [1u64, 2, 5, 16, 33] {
            let w = map_reduce(n, 100, 10, 2);
            assert_eq!(suspension_width(&w.dag), n);
            assert_eq!(w.expected_u, n);
        }
    }

    #[test]
    fn light_delta_means_u_zero() {
        let w = map_reduce(8, 1, 10, 2);
        assert_eq!(w.expected_u, 0);
        assert_eq!(suspension_width(&w.dag), 0);
        assert!(w.dag.is_unweighted());
    }

    #[test]
    fn work_scales_linearly_in_n() {
        let w1 = map_reduce(16, 10, 8, 1);
        let w2 = map_reduce(32, 10, 8, 1);
        let m1 = Metrics::compute(&w1.dag);
        let m2 = Metrics::compute(&w2.dag);
        assert!(m2.work > 19 * m1.work / 10, "roughly doubles");
        assert!(m2.work < 21 * m1.work / 10);
    }

    #[test]
    fn span_contains_single_delta() {
        // The critical path goes through exactly one leaf fetch, so span
        // grows by ~delta when delta grows, not n·delta.
        let w_small = map_reduce(16, 10, 8, 1);
        let w_big = map_reduce(16, 1_010, 8, 1);
        let s_small = Metrics::compute(&w_small.dag).span;
        let s_big = Metrics::compute(&w_big.dag).span;
        assert_eq!(s_big - s_small, 1_000);
    }

    #[test]
    fn leaf_count_matches_io_vertices() {
        let w = map_reduce(13, 50, 4, 1);
        let m = Metrics::compute(&w.dag);
        assert_eq!(m.kind_counts.io, 13);
        assert_eq!(m.kind_counts.fork, 12);
        assert_eq!(m.kind_counts.join, 12);
    }
}
