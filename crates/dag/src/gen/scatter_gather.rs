//! Scatter–gather: synchronized mass resume.
//!
//! A single thread issues `n` asynchronous requests one per step (a chain
//! of `Io` vertices); the remote side answers all of them at the same
//! instant (`round_trip` steps after the first request), so all `n`
//! suspended continuations resume **in the same round on the same deque**.
//! This is the regime the paper's pfor-tree machinery exists for: "since
//! there can be arbitrarily many resumed vertices at a check point, a
//! worker cannot handle them by itself without harming performance" (§3).
//!
//! Request `i` is issued at step `i + 1` and carries latency
//! `round_trip − i`, so every response lands at step `round_trip + 1`.
//! Each response runs a `tail_work`-vertex continuation; the results are
//! combined by a binary join tree.

use super::Workload;
use crate::builder::Block;
use crate::dag::{RawDagBuilder, VertexId, VertexKind, WDag};

/// Builds the scatter–gather workload directly (it is not expressible as a
/// series-parallel [`Block`], so the analytic numbers are computed here).
///
/// * `n` — number of outstanding requests (`U = n`).
/// * `round_trip` — steps until the synchronized response (must exceed
///   `n`, so every latency stays heavy).
/// * `tail_work` — vertices per response continuation.
pub fn scatter_gather(n: u64, round_trip: u64, tail_work: u64) -> Workload {
    assert!(n >= 1);
    assert!(
        round_trip >= n + 2,
        "round_trip must exceed n+1 so every request latency is >= 2 (heavy)"
    );
    let tail_work = tail_work.max(1);

    let mut b = RawDagBuilder::with_capacity((n * (tail_work + 2)) as usize);

    // The request chain: c_0 -> c_1 -> ... ; c_i also fires request i.
    let chain: Vec<VertexId> = (0..n).map(|_| b.add_vertex(VertexKind::Io)).collect();
    for w in chain.windows(2) {
        b.add_edge(w[0], w[1], 1);
    }

    // Response tails: request i resumes at round round_trip + 1.
    let mut tails = Vec::with_capacity(n as usize);
    for (i, &c) in chain.iter().enumerate() {
        let entry = b.add_vertex(VertexKind::Compute);
        b.add_edge(c, entry, round_trip - i as u64);
        let mut cur = entry;
        for _ in 1..tail_work {
            let v = b.add_vertex(VertexKind::Compute);
            b.add_edge(cur, v, 1);
            cur = v;
        }
        tails.push(cur);
    }

    // Binary join tree over the tails.
    let mut layer = tails;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len() / 2 + 1);
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(bv) => {
                    let j = b.add_vertex(VertexKind::Join);
                    b.add_edge(a, j, 1);
                    b.add_edge(bv, j, 1);
                    next.push(j);
                }
                None => next.push(a),
            }
        }
        layer = next;
    }

    let dag: WDag = b.build().expect("scatter_gather builds a valid dag");
    Workload {
        name: format!("scatter_gather(n={n}, rt={round_trip}, tail={tail_work})"),
        // Not series-parallel; keep a trivial placeholder block with the
        // right vertex count semantics unused by consumers of this field.
        block: Block::work(1),
        dag,
        expected_u: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::suspension::suspension_width;

    #[test]
    fn u_equals_n() {
        for n in [1u64, 4, 16, 50] {
            let w = scatter_gather(n, n + 10, 3);
            assert_eq!(suspension_width(&w.dag), n, "n={n}");
        }
    }

    #[test]
    fn structure_counts() {
        let n = 8;
        let tail = 4;
        let w = scatter_gather(n, 20, tail);
        let m = Metrics::compute(&w.dag);
        assert_eq!(m.kind_counts.io, n);
        assert_eq!(m.kind_counts.compute, n * tail);
        assert_eq!(m.kind_counts.join, n - 1);
        assert_eq!(m.heavy_edges, n);
    }

    #[test]
    fn span_reflects_round_trip() {
        // Critical path: c_0 -(rt)-> tail -> join tree.
        let w = scatter_gather(16, 100, 2);
        let m = Metrics::compute(&w.dag);
        // rt + (tail-1) + ceil(lg 16) join edges.
        assert_eq!(m.span, 100 + 1 + 4);
    }

    #[test]
    #[should_panic(expected = "round_trip must exceed")]
    fn rejects_short_round_trip() {
        let _ = scatter_gather(10, 5, 1);
    }
}
