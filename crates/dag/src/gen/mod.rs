//! Workload generators.
//!
//! Each generator produces a [`Workload`]: a validated weighted dag plus the
//! analytically known values of its structural parameters, so tests can
//! cross-check the computed metrics ([`crate::metrics`],
//! [`crate::suspension`]) against closed forms.
//!
//! The first two generators are the paper's own examples (§5):
//!
//! * [`map_reduce`] — distributed map-and-reduce over `n` remote values
//!   (Figures 7/8): every `getValue` can be suspended at once, `U = n`.
//! * [`server`] — the interactive "server" (Figures 9/10): inputs arrive
//!   one at a time, `U = 1`.
//!
//! The rest parameterize the space between those extremes:
//!
//! * [`fib`] — pure fork-join Fibonacci, `U = 0` (the reduction-to-standard
//!   work-stealing case).
//! * [`pipeline`] — `width` parallel lanes each performing `depth`
//!   latency/compute stages sequentially: `U = width`, independent of the
//!   number of heavy edges (`width × depth`).
//! * [`random_sp`] — seeded random series-parallel programs with latency
//!   leaves, for property tests.
//! * [`scatter_gather`] — `n` requests answered simultaneously: the
//!   synchronized-mass-resume regime that exercises the pfor machinery.

mod fib;
mod map_reduce;
mod pipeline;
mod random_sp;
mod scatter_gather;
mod server;

pub use fib::fib;
pub use map_reduce::map_reduce;
pub use pipeline::pipeline;
pub use random_sp::{random_sp, RandomSpParams};
pub use scatter_gather::scatter_gather;
pub use server::server;

use crate::builder::Block;
use crate::dag::WDag;

/// A generated dag together with its analytically known parameters.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name including the parameters.
    pub name: String,
    /// The block program the dag was compiled from.
    pub block: Block,
    /// The compiled, validated dag.
    pub dag: WDag,
    /// Analytic suspension width (what Definition 1 should evaluate to).
    pub expected_u: u64,
}

impl Workload {
    pub(crate) fn from_block(name: String, block: Block) -> Workload {
        let dag = block.build();
        let expected_u = block.analytic_suspension_width();
        Workload {
            name,
            block,
            dag,
            expected_u,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::suspension::suspension_width;

    /// Every generator's dag must validate and match its analytic numbers.
    #[test]
    fn all_generators_consistent() {
        let workloads = vec![
            map_reduce(8, 20, 5, 1),
            map_reduce(1, 20, 5, 1),
            server(12, 30, 4, 1),
            fib(10, 3),
            pipeline(4, 5, 15, 3),
            random_sp(RandomSpParams::default().seed(7)),
        ];
        for w in workloads {
            let m = Metrics::compute(&w.dag);
            assert_eq!(m.work, w.block.analytic_work(), "{}: work", w.name);
            assert_eq!(m.span, w.block.analytic_span(), "{}: span", w.name);
            assert_eq!(suspension_width(&w.dag), w.expected_u, "{}: U", w.name);
        }
    }
}
