//! Bounded-suspension pipeline: `U = width`, decoupled from the number of
//! heavy edges.
//!
//! `width` parallel lanes run concurrently; each lane sequentially performs
//! `depth` rounds of (latency, compute). The dag has `width × depth` heavy
//! edges, but within a lane at most one can be pending, so the suspension
//! width is exactly `width`. Sweeping `width` at fixed total latency lets
//! the bound tables isolate the `U`-dependence of
//! `O(W/P + S·U·(1 + lg U))` — something neither of the paper's two
//! examples can do alone.

use super::Workload;
use crate::builder::Block;
use crate::dag::Weight;

/// Builds the pipeline workload.
///
/// * `width` — number of parallel lanes (`U = width` when `delta > 1`).
/// * `depth` — latency/compute stages per lane.
/// * `delta` — latency per stage.
/// * `stage_work` — compute units per stage.
pub fn pipeline(width: u64, depth: u64, delta: Weight, stage_work: u64) -> Workload {
    assert!(width >= 1 && depth >= 1);
    let mut lane = |_i: u64| {
        Block::seq((0..depth).flat_map(|_| [Block::latency(delta), Block::work(stage_work.max(1))]))
    };
    let block = Block::par_tree(width, &mut lane);
    Workload::from_block(
        format!("pipeline(width={width}, depth={depth}, delta={delta}, work={stage_work})"),
        block,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::suspension::suspension_width;

    #[test]
    fn u_equals_width_not_heavy_count() {
        for (w, d) in [(1u64, 8u64), (3, 5), (8, 4), (16, 2)] {
            let wl = pipeline(w, d, 25, 2);
            let m = Metrics::compute(&wl.dag);
            assert_eq!(m.heavy_edges, w * d, "heavy edges = width×depth");
            assert_eq!(suspension_width(&wl.dag), w, "U = width");
            assert_eq!(wl.expected_u, w);
        }
    }

    #[test]
    fn span_scales_with_depth_times_delta() {
        let a = Metrics::compute(&pipeline(4, 2, 100, 1).dag).span;
        let b = Metrics::compute(&pipeline(4, 4, 100, 1).dag).span;
        assert_eq!(b - a, 2 * 101); // two more (latency+work) stages
    }

    #[test]
    fn single_lane_is_sequential_chain_of_stages() {
        let wl = pipeline(1, 3, 10, 2);
        let m = Metrics::compute(&wl.dag);
        assert_eq!(m.kind_counts.fork, 0);
        assert_eq!(m.kind_counts.io, 3);
    }
}
