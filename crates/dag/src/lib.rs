//! Weighted computation-dag model for latency-hiding work stealing.
//!
//! This crate implements §2 of the SPAA'16 paper: parallel computations are
//! **weighted dags** whose vertices are unit-work instructions and whose
//! edges carry integer latencies. An edge of weight 1 is *light* (the child
//! may run immediately after the parent); weight `δ > 1` is *heavy* (the
//! child is *enabled* when its parent executes but *ready* only `δ` steps
//! later — it is *suspended* in between).
//!
//! Provided here:
//!
//! * [`WDag`] — the dag representation with validation of the paper's four
//!   structural assumptions (single root/final, out-degree ≤ 2, heavy
//!   in-edge ⇒ in-degree 1, acyclicity).
//! * [`builder`] — a [`Block`] combinator language (work /
//!   latency / sequence / parallel-pair) mirroring the fork-join-with-
//!   latency programming model, guaranteed to emit valid dags.
//! * [`metrics`] — work `W`, weighted span `S`, weighted depths, per-kind
//!   counts.
//! * [`flow`] — a from-scratch Dinic max-flow solver (substrate for the
//!   suspension-width computation).
//! * [`suspension`] — **exact suspension width `U`** via a max-weight-
//!   closure reduction solved with min-cut, plus prefix-based lower bounds.
//! * [`gen`] — workload generators: the paper's distributed map-reduce
//!   (Figure 7/8, `U = n`) and server (Figure 9/10, `U = 1`), fork-join
//!   Fibonacci (`U = 0`), a bounded-width pipeline (`U = width`), and
//!   seeded random series-parallel dags.
//! * [`offline`] — offline schedulers: the greedy scheduler of Theorem 1
//!   (length ≤ `W/P + S`), Brent-style level-by-level for unweighted dags,
//!   and schedule validation.
//! * [`dot`] — Graphviz export (heavy edges drawn thick, as in the paper's
//!   figures) and textual summaries.
//! * [`serial`] — plain-text save/load of dags for reproducible experiment
//!   inputs.

#![warn(missing_docs)]

pub mod builder;
pub mod dag;
pub mod dot;
pub mod flow;
pub mod gen;
pub mod metrics;
pub mod offline;
pub mod serial;
pub mod suspension;

pub use builder::Block;
pub use dag::{DagError, OutEdge, RawDagBuilder, VertexId, VertexKind, WDag, Weight};
pub use metrics::Metrics;
pub use suspension::suspension_width;
