//! Exact suspension width `U` (Definition 1 of the paper).
//!
//! The suspension width of a weighted dag is the maximum number of heavy
//! edges crossing a source–sink partition `(S, T)` where `S` contains the
//! root, `T` the final vertex, and both induce connected subdags. The paper
//! introduces `U` as the operational quantity "the maximum number of
//! vertices that can be suspended at any point during the run", realized by
//! partitions `(S_i, T_i)` where `S_i` is the set of instructions executed
//! by the end of step `i` — i.e. **down-closed** vertex sets (executed
//! prefixes). We compute the maximum over exactly these prefix partitions.
//! (Every down-closed `S` containing the root induces a connected subdag —
//! each `v ∈ S` is reached from the root through ancestors, all in `S` —
//! and its complement is up-closed and connected to the final vertex
//! symmetrically, so every prefix partition is admissible in Definition 1.)
//!
//! ### Reduction
//!
//! For a down-closed `S`, membership indicators satisfy `x_u ≥ x_v` for
//! every edge `(u, v)`, hence a heavy edge `(u, v)` crosses iff
//! `x_u − x_v = 1` and the number of crossing heavy edges is
//!
//! ```text
//! Σ_{heavy (u,v)} (x_u − x_v)  =  Σ_u x_u · (heavyOut(u) − heavyIn(u))
//! ```
//!
//! Maximizing this linear objective over down-closed sets is a
//! **maximum-weight closure** problem with per-vertex weight
//! `w(u) = heavyOut(u) − heavyIn(u)`, solved with a single s-t min-cut
//! ([`crate::flow`]): source → `u` with capacity `w(u)` for positive
//! weights, `u` → sink with capacity `−w(u)` for negative weights, and an
//! uncuttable edge `v → u` for every dag edge `(u, v)` enforcing
//! down-closure. The final vertex is forced out of `S` with an uncuttable
//! edge to the sink; the root needs no forcing (any maximizer can include
//! it for free).

use crate::dag::{VertexId, WDag};
use crate::flow::{FlowNetwork, CAP_INF};

/// Computes the exact suspension width `U` of a weighted dag.
///
/// Runs one Dinic max-flow on a network with `n + 2` nodes; cost is
/// polynomial and in practice fast even for dags with millions of edges of
/// which few are heavy (vertices with weight 0 only contribute closure
/// edges).
pub fn suspension_width(dag: &WDag) -> u64 {
    if dag.is_unweighted() {
        return 0;
    }

    let n = dag.len();
    // Per-vertex weight: heavy out-edges minus heavy in-edges.
    let mut weight = vec![0i64; n];
    for (u, e) in dag.heavy_edges() {
        weight[u.index()] += 1;
        weight[e.dst.index()] -= 1;
    }

    let source = n;
    let sink = n + 1;
    let mut net = FlowNetwork::new(n + 2);
    let mut positive_total: u64 = 0;

    for (v, &w) in weight.iter().enumerate() {
        match w {
            w if w > 0 => {
                net.add_edge(source, v, w as u64);
                positive_total += w as u64;
            }
            w if w < 0 => net.add_edge(v, sink, (-w) as u64),
            _ => {}
        }
    }
    // Closure constraint: selecting v requires selecting each parent u.
    for (u, e) in dag.edges() {
        net.add_edge(e.dst.index(), u.index(), CAP_INF);
    }
    // The final vertex must stay outside S.
    net.add_edge(dag.final_vertex().index(), sink, CAP_INF);

    let cut = net.max_flow(source, sink);
    positive_total - cut
}

/// Returns a maximizing executed-prefix partition: the down-closed set `S`
/// (as a boolean membership vector) achieving `U` crossing heavy edges.
pub fn suspension_width_witness(dag: &WDag) -> (u64, Vec<bool>) {
    if dag.is_unweighted() {
        let mut s = vec![false; dag.len()];
        s[dag.root().index()] = true;
        return (0, s);
    }
    let n = dag.len();
    let mut weight = vec![0i64; n];
    for (u, e) in dag.heavy_edges() {
        weight[u.index()] += 1;
        weight[e.dst.index()] -= 1;
    }
    let source = n;
    let sink = n + 1;
    let mut net = FlowNetwork::new(n + 2);
    let mut positive_total: u64 = 0;
    for (v, &w) in weight.iter().enumerate() {
        match w {
            w if w > 0 => {
                net.add_edge(source, v, w as u64);
                positive_total += w as u64;
            }
            w if w < 0 => net.add_edge(v, sink, (-w) as u64),
            _ => {}
        }
    }
    for (u, e) in dag.edges() {
        net.add_edge(e.dst.index(), u.index(), CAP_INF);
    }
    net.add_edge(dag.final_vertex().index(), sink, CAP_INF);
    let cut = net.max_flow(source, sink);
    let side = net.min_cut_source_side(source);
    let s: Vec<bool> = (0..n).map(|v| side[v]).collect();
    (positive_total - cut, s)
}

/// Number of heavy edges crossing the prefix consisting of the first `k`
/// vertices of `order`; `order` must be a topological order. Maximizing over
/// all `k` and all topological orders yields `U`; any single order yields a
/// lower bound, which tests use to sandwich the flow-based answer.
pub fn max_prefix_crossing(dag: &WDag, order: &[VertexId]) -> u64 {
    debug_assert_eq!(order.len(), dag.len());
    let mut in_s = vec![false; dag.len()];
    let mut crossing: i64 = 0;
    let mut best: i64 = 0;
    let mut heavy_in_weight = vec![0i64; dag.len()];
    for (_, e) in dag.heavy_edges() {
        heavy_in_weight[e.dst.index()] += 1;
    }
    for &v in order {
        // Adding v to S: its heavy out-edges start crossing; its heavy
        // in-edge (if the parent is already in S) stops crossing.
        in_s[v.index()] = true;
        crossing += dag.out(v).iter().filter(|e| e.is_heavy()).count() as i64;
        crossing -= heavy_in_weight[v.index()];
        debug_assert!(crossing >= 0, "prefix of a topological order");
        best = best.max(crossing);
    }
    best as u64
}

/// Verifies that a membership vector is down-closed, contains the root,
/// excludes the final vertex, and counts its crossing heavy edges.
/// Diagnostic helper for tests.
pub fn check_partition(dag: &WDag, in_s: &[bool]) -> Option<u64> {
    if !in_s[dag.root().index()] || in_s[dag.final_vertex().index()] {
        return None;
    }
    for (u, e) in dag.edges() {
        // Down-closed: v in S implies u in S.
        if in_s[e.dst.index()] && !in_s[u.index()] {
            return None;
        }
    }
    Some(
        dag.heavy_edges()
            .filter(|(u, e)| in_s[u.index()] && !in_s[e.dst.index()])
            .count() as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Block;

    #[test]
    fn unweighted_dag_has_u_zero() {
        let d = Block::par_tree(8, &mut |_| Block::work(4)).build();
        assert_eq!(suspension_width(&d), 0);
    }

    #[test]
    fn single_latency_has_u_one() {
        let d = Block::seq([Block::latency(10), Block::work(1)]).build();
        assert_eq!(suspension_width(&d), 1);
    }

    #[test]
    fn sequential_latencies_do_not_stack() {
        // input(); compute; input(); compute — only one can be pending.
        let d = Block::seq([
            Block::latency(10),
            Block::work(1),
            Block::latency(10),
            Block::work(1),
        ])
        .build();
        assert_eq!(suspension_width(&d), 1);
    }

    #[test]
    fn parallel_latencies_stack() {
        let d = Block::par(
            Block::seq([Block::latency(10), Block::work(1)]),
            Block::seq([Block::latency(10), Block::work(1)]),
        )
        .build();
        assert_eq!(suspension_width(&d), 2);
    }

    #[test]
    fn map_reduce_has_u_n() {
        for n in [1u64, 2, 3, 8, 13, 64] {
            let b = Block::par_tree(n, &mut |_| Block::seq([Block::latency(50), Block::work(3)]));
            let d = b.build();
            assert_eq!(suspension_width(&d), n, "map-reduce n={n}");
            assert_eq!(b.analytic_suspension_width(), n);
        }
    }

    #[test]
    fn server_has_u_one() {
        // getInput; fork(f, recurse); g — Figure 10 with k requests.
        fn server(k: u64) -> Block {
            if k == 0 {
                Block::work(1)
            } else {
                Block::seq([
                    Block::latency(30),
                    Block::par(Block::work(5), server(k - 1)),
                    Block::work(1),
                ])
            }
        }
        let d = server(10).build();
        assert_eq!(suspension_width(&d), 1);
    }

    #[test]
    fn mixed_block_analytic_agreement() {
        let b = Block::seq([
            Block::par(
                Block::seq([Block::latency(9), Block::work(2)]),
                Block::par(
                    Block::seq([Block::latency(9), Block::work(2)]),
                    Block::work(7),
                ),
            ),
            Block::latency(4),
            Block::work(2),
        ]);
        let d = b.build();
        assert_eq!(suspension_width(&d), b.analytic_suspension_width());
        assert_eq!(suspension_width(&d), 2);
    }

    #[test]
    fn witness_is_valid_and_achieves_u() {
        let b = Block::par_tree(9, &mut |i| {
            Block::seq([Block::latency(5 + i), Block::work(2)])
        });
        let d = b.build();
        let (u, in_s) = suspension_width_witness(&d);
        assert_eq!(u, 9);
        assert_eq!(check_partition(&d, &in_s), Some(9));
    }

    #[test]
    fn prefix_crossing_lower_bounds_u() {
        let b = Block::par_tree(6, &mut |_| Block::seq([Block::latency(4), Block::work(1)]));
        let d = b.build();
        let u = suspension_width(&d);
        let lb = max_prefix_crossing(&d, d.topo_order());
        assert!(lb <= u);
        assert!(lb >= 1);
    }

    #[test]
    fn check_partition_rejects_non_downclosed() {
        let d = Block::work(3).build();
        // S = {root, final-but-not-middle} is not down-closed / excludes
        // final incorrectly.
        let mut in_s = vec![false; d.len()];
        in_s[d.root().index()] = true;
        in_s[d.final_vertex().index()] = true;
        assert_eq!(check_partition(&d, &in_s), None);
    }

    #[test]
    fn latency_weight_does_not_change_u() {
        for delta in [2u64, 10, 1000] {
            let d = Block::par(
                Block::seq([Block::latency(delta), Block::work(1)]),
                Block::seq([Block::latency(delta), Block::work(1)]),
            )
            .build();
            assert_eq!(suspension_width(&d), 2);
        }
    }
}
