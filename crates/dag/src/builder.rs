//! Block combinators: a tiny "program" language that compiles to valid
//! weighted dags.
//!
//! The paper's programming model is fork-join parallelism plus
//! latency-incurring instructions. A [`Block`] is one of:
//!
//! * [`Block::Work`]`(k)` — a chain of `k` unit-work compute vertices;
//! * [`Block::Latency`]`(δ)` — one `Io` vertex whose *outgoing* edge carries
//!   weight `δ` (the paper's `input()` pattern: a unit of work that starts
//!   an operation completing `δ − 1` steps later);
//! * [`Block::Seq`] — sequential composition;
//! * [`Block::Par`] — binary fork-join of two blocks (a `Fork` vertex, the
//!   two branches, a `Join` vertex).
//!
//! Compilation maintains the paper's structural assumptions by
//! construction. In particular, when a `Par` branch ends in a pending heavy
//! edge, a `Nop` *buffer* vertex is inserted before the join so the join
//! never has a heavy in-edge together with in-degree two — the
//! "distributing edges over multiple vertices" fix the paper describes for
//! assumption 3.
//!
//! Each block also knows its **analytic** work, span and suspension width,
//! which the test-suite cross-checks against the values computed from the
//! compiled dag ([`crate::metrics`], [`crate::suspension`]).

use crate::dag::{RawDagBuilder, VertexId, VertexKind, WDag, Weight};

/// A composable program fragment that compiles to part of a weighted dag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// `k ≥ 1` unit-work instructions in sequence.
    Work(u64),
    /// One instruction that initiates an operation with latency `δ ≥ 1`;
    /// its outgoing edge has weight `δ`. `Latency(1)` is just a unit of
    /// work with an ordinary light out-edge.
    Latency(Weight),
    /// Sequential composition (must be non-empty).
    Seq(Vec<Block>),
    /// Fork-join parallel pair: left branch is the continuation (left
    /// child), right branch is the spawned thread (right child).
    Par(Box<Block>, Box<Block>),
}

impl Block {
    /// A chain of `k` unit-work vertices (`k` is clamped to ≥ 1).
    pub fn work(k: u64) -> Block {
        Block::Work(k.max(1))
    }

    /// A latency-incurring instruction with latency `δ` (clamped to ≥ 1).
    pub fn latency(delta: Weight) -> Block {
        Block::Latency(delta.max(1))
    }

    /// Sequential composition of the given blocks.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn seq(items: impl IntoIterator<Item = Block>) -> Block {
        let v: Vec<Block> = items.into_iter().collect();
        assert!(!v.is_empty(), "Block::seq of zero blocks");
        if v.len() == 1 {
            v.into_iter().next().unwrap()
        } else {
            Block::Seq(v)
        }
    }

    /// Fork-join parallel pair.
    pub fn par(a: Block, b: Block) -> Block {
        Block::Par(Box::new(a), Box::new(b))
    }

    /// Balanced parallel tree over `n ≥ 1` leaves produced by `leaf(i)`.
    pub fn par_tree(n: u64, leaf: &mut impl FnMut(u64) -> Block) -> Block {
        fn go(lo: u64, hi: u64, leaf: &mut impl FnMut(u64) -> Block) -> Block {
            debug_assert!(lo < hi);
            if hi - lo == 1 {
                leaf(lo)
            } else {
                let mid = lo + (hi - lo) / 2;
                Block::par(go(lo, mid, leaf), go(mid, hi, leaf))
            }
        }
        assert!(n >= 1, "par_tree over zero leaves");
        go(0, n, leaf)
    }

    /// Predicted number of vertices the block compiles to — its
    /// contribution to the work `W`. Includes fork/join/buffer vertices.
    pub fn analytic_work(&self) -> u64 {
        match self {
            Block::Work(k) => (*k).max(1),
            Block::Latency(_) => 1,
            Block::Seq(items) => items.iter().map(Block::analytic_work).sum(),
            Block::Par(a, b) => {
                // fork + join + branches + buffer vertices for pending
                // heavy branch exits.
                let buf = u64::from(a.exit_weight() > 1) + u64::from(b.exit_weight() > 1);
                2 + buf + a.analytic_work() + b.analytic_work()
            }
        }
    }

    /// The weight of the (pending) edge leaving this block's exit vertex.
    fn exit_weight(&self) -> Weight {
        match self {
            Block::Work(_) => 1,
            Block::Latency(d) => *d,
            Block::Seq(items) => items.last().expect("non-empty").exit_weight(),
            Block::Par(_, _) => 1, // exits at the join vertex
        }
    }

    /// Longest weighted path (sum of edge weights) from the block's entry
    /// vertex to its exit vertex.
    fn internal_span(&self) -> u64 {
        match self {
            Block::Work(k) => (*k).max(1) - 1,
            Block::Latency(_) => 0,
            Block::Seq(items) => {
                let mut s = 0;
                for (i, item) in items.iter().enumerate() {
                    s += item.internal_span();
                    if i + 1 < items.len() {
                        s += item.exit_weight(); // connecting edge
                    }
                }
                s
            }
            Block::Par(a, b) => {
                // fork -> branch entry (1), branch internal, branch exit ->
                // [buffer ->] join. A buffered exit contributes δ + 1, an
                // unbuffered one contributes 1 (its light exit edge).
                let arm = |x: &Block| {
                    let w = x.exit_weight();
                    let tail = if w > 1 { w + 1 } else { 1 };
                    1 + x.internal_span() + tail
                };
                arm(a).max(arm(b))
            }
        }
    }

    /// Predicted weighted span `S` of the compiled dag: the longest
    /// weighted path from root to final vertex.
    pub fn analytic_span(&self) -> u64 {
        // The top-level dag may gain a terminal Nop when the program ends
        // in a pending heavy edge.
        let extra = if self.exit_weight() > 1 {
            self.exit_weight()
        } else {
            0
        };
        self.internal_span() + extra
    }

    /// Predicted suspension width of the compiled dag: the maximum number
    /// of heavy edges leaving any "executed prefix" of the computation.
    ///
    /// For series-parallel blocks this is exactly computable: a `Latency`
    /// contributes 1 while pending; sequential parts cannot overlap
    /// (max over items); parallel branches can (sum over branches).
    pub fn analytic_suspension_width(&self) -> u64 {
        match self {
            Block::Work(_) => 0,
            Block::Latency(d) => u64::from(*d > 1),
            Block::Seq(items) => items
                .iter()
                .map(Block::analytic_suspension_width)
                .max()
                .unwrap_or(0),
            Block::Par(a, b) => a.analytic_suspension_width() + b.analytic_suspension_width(),
        }
    }

    /// Compiles the block to a validated weighted dag.
    pub fn build(&self) -> WDag {
        let mut b = RawDagBuilder::with_capacity(self.analytic_work() as usize + 1);
        let (_, exit, w) = self.emit(&mut b);
        if w > 1 {
            // The program ends in a pending latency; give it a target.
            let t = b.add_vertex(VertexKind::Nop);
            b.add_edge(exit, t, w);
        }
        b.build()
            .expect("Block compilation produces valid dags by construction")
    }

    /// Emits the block into `b`, returning `(entry, exit, exit_weight)`.
    fn emit(&self, b: &mut RawDagBuilder) -> (VertexId, VertexId, Weight) {
        match self {
            Block::Work(k) => {
                let k = (*k).max(1);
                let first = b.add_vertex(VertexKind::Compute);
                let mut last = first;
                for _ in 1..k {
                    let v = b.add_vertex(VertexKind::Compute);
                    b.add_edge(last, v, 1);
                    last = v;
                }
                (first, last, 1)
            }
            Block::Latency(d) => {
                let v = b.add_vertex(VertexKind::Io);
                (v, v, *d)
            }
            Block::Seq(items) => {
                let mut it = items.iter();
                let (entry, mut exit, mut w) = it.next().expect("non-empty Seq").emit(b);
                for item in it {
                    let (e2, x2, w2) = item.emit(b);
                    b.add_edge(exit, e2, w);
                    exit = x2;
                    w = w2;
                }
                (entry, exit, w)
            }
            Block::Par(left, right) => {
                let fork = b.add_vertex(VertexKind::Fork);
                let (el, mut xl, wl) = left.emit(b);
                let (er, mut xr, wr) = right.emit(b);
                let join = b.add_vertex(VertexKind::Join);
                // Left child first: it is the continuation edge.
                b.add_edge(fork, el, 1);
                b.add_edge(fork, er, 1);
                if wl > 1 {
                    let buf = b.add_vertex(VertexKind::Nop);
                    b.add_edge(xl, buf, wl);
                    xl = buf;
                }
                if wr > 1 {
                    let buf = b.add_vertex(VertexKind::Nop);
                    b.add_edge(xr, buf, wr);
                    xr = buf;
                }
                b.add_edge(xl, join, 1);
                b.add_edge(xr, join, 1);
                (fork, join, 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn work_block_is_chain() {
        let d = Block::work(5).build();
        assert_eq!(d.work(), 5);
        let m = Metrics::compute(&d);
        assert_eq!(m.span, 4);
        assert!(d.is_unweighted());
    }

    #[test]
    fn work_zero_clamps_to_one() {
        let d = Block::work(0).build();
        assert_eq!(d.work(), 1);
    }

    #[test]
    fn latency_block_gets_terminal_nop() {
        let d = Block::latency(10).build();
        // Io vertex plus the appended Nop target.
        assert_eq!(d.work(), 2);
        assert_eq!(d.heavy_edge_count(), 1);
        let m = Metrics::compute(&d);
        assert_eq!(m.span, 10);
    }

    #[test]
    fn latency_one_is_light() {
        let d = Block::seq([Block::latency(1), Block::work(1)]).build();
        assert!(d.is_unweighted());
        assert_eq!(d.work(), 2);
    }

    #[test]
    fn seq_connects_with_exit_weight() {
        // input() ; compute — the paper's Figure 1 right branch.
        let b = Block::seq([Block::latency(7), Block::work(3)]);
        let d = b.build();
        assert_eq!(d.work(), 4);
        let m = Metrics::compute(&d);
        // io -(7)-> c1 -> c2 -> c3 : span 7 + 2.
        assert_eq!(m.span, 9);
        assert_eq!(m.span, b.analytic_span());
    }

    #[test]
    fn par_inserts_fork_and_join() {
        let b = Block::par(Block::work(1), Block::work(1));
        let d = b.build();
        assert_eq!(d.work(), 4); // fork + 2 + join
        let m = Metrics::compute(&d);
        assert_eq!(m.span, 2); // fork -> leaf -> join
        assert_eq!(b.analytic_work(), 4);
        assert_eq!(b.analytic_span(), 2);
    }

    #[test]
    fn figure_one_dag() {
        // The paper's Figure 1: fork; left = 6*7 (1 unit); right =
        // input() then double (heavy edge δ); join adds.
        let delta = 5;
        let b = Block::par(
            Block::work(1),
            Block::seq([Block::latency(delta), Block::work(1)]),
        );
        let d = b.build();
        // fork, left work, io, double, join = 5 vertices.
        assert_eq!(d.work(), 5);
        assert_eq!(d.heavy_edge_count(), 1);
        let m = Metrics::compute(&d);
        // fork -> io -(δ)-> double -> join = 2 + δ.
        assert_eq!(m.span, 2 + delta);
        assert_eq!(b.analytic_span(), 2 + delta);
        assert_eq!(b.analytic_work(), d.work());
    }

    #[test]
    fn par_branch_ending_in_latency_gets_buffer() {
        // Both branches end in a pending heavy edge; joins must not
        // receive heavy in-edges with in-degree 2.
        let b = Block::par(Block::latency(4), Block::latency(9));
        let d = b.build(); // would fail validation without buffers
        assert_eq!(d.heavy_edge_count(), 2);
        assert_eq!(d.work(), 6); // fork, 2 io, 2 buffers, join
        assert_eq!(b.analytic_work(), 6);
        let m = Metrics::compute(&d);
        // fork -> io -(9)-> buf -> join = 1 + 9 + 1.
        assert_eq!(m.span, 11);
        assert_eq!(b.analytic_span(), 11);
    }

    #[test]
    fn par_tree_leaf_count() {
        let b = Block::par_tree(8, &mut |_| Block::work(1));
        let d = b.build();
        // 8 leaves + 7 forks + 7 joins.
        assert_eq!(d.work(), 22);
        let m = Metrics::compute(&d);
        assert_eq!(m.span, 6); // 3 forks + leaf + 3 joins edges
    }

    #[test]
    fn par_tree_single_leaf() {
        let b = Block::par_tree(1, &mut |_| Block::work(3));
        assert_eq!(b, Block::Work(3));
    }

    #[test]
    fn analytic_matches_computed_on_nested_block() {
        let b = Block::seq([
            Block::work(2),
            Block::par(
                Block::seq([Block::latency(6), Block::work(2)]),
                Block::par(Block::latency(3), Block::work(4)),
            ),
            Block::work(1),
        ]);
        let d = b.build();
        assert_eq!(b.analytic_work(), d.work());
        let m = Metrics::compute(&d);
        assert_eq!(b.analytic_span(), m.span);
    }

    #[test]
    fn analytic_suspension_width_cases() {
        assert_eq!(Block::work(10).analytic_suspension_width(), 0);
        assert_eq!(Block::latency(5).analytic_suspension_width(), 1);
        assert_eq!(Block::latency(1).analytic_suspension_width(), 0);
        // Sequential latencies never overlap.
        let s = Block::seq([Block::latency(5), Block::latency(5)]);
        assert_eq!(s.analytic_suspension_width(), 1);
        // Parallel latencies do.
        let p = Block::par(Block::latency(5), Block::latency(5));
        assert_eq!(p.analytic_suspension_width(), 2);
    }

    #[test]
    #[should_panic(expected = "Block::seq of zero blocks")]
    fn empty_seq_panics() {
        let _ = Block::seq([]);
    }
}
