//! Plain-text serialization of weighted dags.
//!
//! A small line-oriented format so experiment inputs can be saved, diffed,
//! and replayed without extra dependencies:
//!
//! ```text
//! lhws-dag v1
//! vertices 5
//! kinds FCIcJ        # one letter per vertex: C/F/J/I/N (case-insensitive)
//! e 0 1 1            # edge <src> <dst> <weight>
//! e 0 2 1
//! e 2 3 7
//! e 1 4 1
//! e 3 4 1
//! ```
//!
//! Deserialization re-validates through [`RawDagBuilder::build`], so a
//! hand-edited file can never produce an invalid dag.

use crate::dag::{DagError, RawDagBuilder, VertexId, VertexKind, WDag};

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong magic header.
    BadHeader,
    /// Malformed line with its 1-based number.
    BadLine(usize, String),
    /// Unknown vertex-kind letter.
    BadKind(char),
    /// The `kinds` string length disagrees with `vertices`.
    KindCount {
        /// Declared vertex count.
        expected: usize,
        /// Letters found in the kinds string.
        got: usize,
    },
    /// Vertex index out of range.
    BadVertex(u64),
    /// The parsed dag failed structural validation.
    Invalid(DagError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing 'lhws-dag v1' header"),
            ParseError::BadLine(n, l) => write!(f, "malformed line {n}: {l:?}"),
            ParseError::BadKind(c) => write!(f, "unknown vertex kind {c:?}"),
            ParseError::KindCount { expected, got } => {
                write!(f, "kinds string has {got} letters, expected {expected}")
            }
            ParseError::BadVertex(v) => write!(f, "vertex index {v} out of range"),
            ParseError::Invalid(e) => write!(f, "invalid dag: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn kind_char(k: VertexKind) -> char {
    match k {
        VertexKind::Compute => 'C',
        VertexKind::Fork => 'F',
        VertexKind::Join => 'J',
        VertexKind::Io => 'I',
        VertexKind::Nop => 'N',
    }
}

fn char_kind(c: char) -> Result<VertexKind, ParseError> {
    match c.to_ascii_uppercase() {
        'C' => Ok(VertexKind::Compute),
        'F' => Ok(VertexKind::Fork),
        'J' => Ok(VertexKind::Join),
        'I' => Ok(VertexKind::Io),
        'N' => Ok(VertexKind::Nop),
        other => Err(ParseError::BadKind(other)),
    }
}

/// Serializes the dag to the text format.
pub fn to_text(dag: &WDag) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("lhws-dag v1\n");
    let _ = writeln!(out, "vertices {}", dag.len());
    out.push_str("kinds ");
    for v in dag.vertices() {
        out.push(kind_char(dag.kind(v)));
    }
    out.push('\n');
    for (u, e) in dag.edges() {
        let _ = writeln!(out, "e {} {} {}", u.0, e.dst.0, e.weight);
    }
    out
}

/// Parses the text format, re-validating the dag.
pub fn from_text(text: &str) -> Result<WDag, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
    if header != "lhws-dag v1" {
        return Err(ParseError::BadHeader);
    }

    let (ln, vline) = lines.next().ok_or(ParseError::BadHeader)?;
    let n: usize = vline
        .strip_prefix("vertices ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| ParseError::BadLine(ln, vline.to_string()))?;

    let (ln, kline) = lines.next().ok_or(ParseError::BadHeader)?;
    let kinds_str = kline
        .strip_prefix("kinds ")
        .ok_or_else(|| ParseError::BadLine(ln, kline.to_string()))?
        .trim();
    if kinds_str.chars().count() != n {
        return Err(ParseError::KindCount {
            expected: n,
            got: kinds_str.chars().count(),
        });
    }

    let mut b = RawDagBuilder::with_capacity(n);
    for c in kinds_str.chars() {
        b.add_vertex(char_kind(c)?);
    }

    for (ln, line) in lines {
        let rest = line
            .strip_prefix("e ")
            .ok_or_else(|| ParseError::BadLine(ln, line.to_string()))?;
        let mut it = rest.split_whitespace();
        let parse3 = (|| {
            let u: u64 = it.next()?.parse().ok()?;
            let v: u64 = it.next()?.parse().ok()?;
            let w: u64 = it.next()?.parse().ok()?;
            if it.next().is_some() {
                return None;
            }
            Some((u, v, w))
        })();
        let (u, v, w) = parse3.ok_or_else(|| ParseError::BadLine(ln, line.to_string()))?;
        if u >= n as u64 {
            return Err(ParseError::BadVertex(u));
        }
        if v >= n as u64 {
            return Err(ParseError::BadVertex(v));
        }
        b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
    }

    b.build().map_err(ParseError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Block;
    use crate::gen::{map_reduce, random_sp, RandomSpParams};
    use crate::metrics::Metrics;
    use crate::suspension::suspension_width;

    fn roundtrip(dag: &WDag) {
        let text = to_text(dag);
        let back = from_text(&text).expect("roundtrip parses");
        assert_eq!(back.len(), dag.len());
        assert_eq!(back.root(), dag.root());
        assert_eq!(back.final_vertex(), dag.final_vertex());
        for v in dag.vertices() {
            assert_eq!(back.kind(v), dag.kind(v));
            let a: Vec<_> = dag.out(v).iter().copied().collect();
            let b: Vec<_> = back.out(v).iter().copied().collect();
            assert_eq!(a, b, "out-edges of {v}");
        }
        assert_eq!(Metrics::compute(&back), Metrics::compute(dag));
        assert_eq!(suspension_width(&back), suspension_width(dag));
    }

    #[test]
    fn roundtrip_figure_one() {
        let d = Block::par(
            Block::work(1),
            Block::seq([Block::latency(7), Block::work(1)]),
        )
        .build();
        roundtrip(&d);
    }

    #[test]
    fn roundtrip_map_reduce() {
        roundtrip(&map_reduce(16, 40, 4, 1).dag);
    }

    #[test]
    fn roundtrip_random_programs() {
        for seed in 0..10 {
            roundtrip(&random_sp(RandomSpParams::default().seed(seed)).dag);
        }
    }

    #[test]
    fn roundtrip_non_series_parallel() {
        // scatter_gather is built with the raw builder (not expressible as
        // a Block), exercising the format beyond series-parallel shapes.
        roundtrip(&crate::gen::scatter_gather(16, 40, 3).dag);
    }

    #[test]
    fn text_is_stable() {
        // Serializing twice yields identical bytes (diffable artifacts).
        let d = map_reduce(8, 20, 3, 1).dag;
        assert_eq!(to_text(&d), to_text(&d));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "lhws-dag v1\n\nvertices 2\nkinds IC  # io then compute\n\ne 0 1 5 # heavy\n";
        let d = from_text(text).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.heavy_edge_count(), 1);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(from_text("nonsense\n").unwrap_err(), ParseError::BadHeader);
        assert_eq!(from_text("").unwrap_err(), ParseError::BadHeader);
    }

    #[test]
    fn bad_kind_rejected() {
        let text = "lhws-dag v1\nvertices 1\nkinds X\n";
        assert_eq!(from_text(text).unwrap_err(), ParseError::BadKind('X'));
    }

    #[test]
    fn kind_count_mismatch_rejected() {
        let text = "lhws-dag v1\nvertices 3\nkinds CC\n";
        assert_eq!(
            from_text(text).unwrap_err(),
            ParseError::KindCount {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn out_of_range_vertex_rejected() {
        let text = "lhws-dag v1\nvertices 2\nkinds CC\ne 0 5 1\n";
        assert_eq!(from_text(text).unwrap_err(), ParseError::BadVertex(5));
    }

    #[test]
    fn invalid_dag_rejected_by_validation() {
        // Two roots.
        let text = "lhws-dag v1\nvertices 3\nkinds CCJ\ne 0 2 1\ne 1 2 1\n";
        assert!(matches!(
            from_text(text).unwrap_err(),
            ParseError::Invalid(_)
        ));
    }

    #[test]
    fn malformed_edge_line_rejected() {
        let text = "lhws-dag v1\nvertices 2\nkinds CC\ne 0 1\n";
        assert!(matches!(
            from_text(text).unwrap_err(),
            ParseError::BadLine(_, _)
        ));
        let text2 = "lhws-dag v1\nvertices 2\nkinds CC\nedge 0 1 1\n";
        assert!(matches!(
            from_text(text2).unwrap_err(),
            ParseError::BadLine(_, _)
        ));
    }
}
