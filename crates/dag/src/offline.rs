//! Offline schedulers for weighted dags.
//!
//! The paper's Theorem 1 generalizes Brent/Eager-Zahorjan-Lazowska greedy
//! bounds to weighted dags: **any greedy schedule on `P` workers has length
//! at most `W/P + S`**. This module provides:
//!
//! * [`greedy_schedule`] — a centralized greedy scheduler (all workers busy
//!   whenever ≥ P vertices are ready), whose length the tests check against
//!   the Theorem 1 bound on every workload family;
//! * [`level_by_level_schedule`] — Brent's classic schedule for *unweighted*
//!   dags (the historical baseline Theorem 1 extends);
//! * [`validate_schedule`] — an independent checker used to validate both
//!   the offline schedules and (via the simulator crate) online executions;
//! * [`lower_bound`] — `max(⌈W/P⌉, S)`, the trivial lower bound any
//!   schedule must obey.
//!
//! ### Round semantics
//!
//! A vertex executed in round `r` releases each child over an edge of
//! weight `δ` at round `r + δ`: light children may run in the next round,
//! heavy children after the latency expires ("ready only δ steps after u is
//! executed", §2). Rounds are numbered from 1.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dag::{VertexId, WDag};
use crate::metrics::{levels, Metrics};

/// One scheduled vertex execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Round in which the vertex executes (1-based).
    pub round: u64,
    /// Worker that executes it (`0..p`).
    pub worker: usize,
    /// The vertex.
    pub vertex: VertexId,
}

/// A complete schedule of a dag on `p` workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Number of workers the schedule was built for.
    pub workers: usize,
    /// Entries in execution order (sorted by round).
    pub entries: Vec<ScheduleEntry>,
    /// Total number of rounds (the schedule length).
    pub length: u64,
}

/// Errors found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A vertex never executes.
    Missing(VertexId),
    /// A vertex executes more than once.
    Duplicate(VertexId),
    /// A worker executes two vertices in the same round.
    WorkerOverload {
        /// The overloaded worker.
        worker: usize,
        /// The round with two executions.
        round: u64,
    },
    /// A worker id is out of range.
    BadWorker(usize),
    /// Vertex executed before its parent's edge released it:
    /// `child_round < parent_round + weight`.
    NotReady {
        /// The too-early vertex.
        vertex: VertexId,
        /// Its round.
        round: u64,
        /// Earliest legal round.
        earliest: u64,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Missing(v) => write!(f, "{v} never executes"),
            ScheduleError::Duplicate(v) => write!(f, "{v} executes twice"),
            ScheduleError::WorkerOverload { worker, round } => {
                write!(f, "worker {worker} executes two vertices in round {round}")
            }
            ScheduleError::BadWorker(w) => write!(f, "worker id {w} out of range"),
            ScheduleError::NotReady {
                vertex,
                round,
                earliest,
            } => write!(
                f,
                "{vertex} executes in round {round} but is ready only at {earliest}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Builds a greedy schedule: each round executes `min(P, #ready)` ready
/// vertices (FIFO among ready ones; the bound holds for any greedy choice).
pub fn greedy_schedule(dag: &WDag, p: usize) -> Schedule {
    assert!(p >= 1, "need at least one worker");
    let n = dag.len();
    let mut indeg: Vec<u32> = (0..n).map(|v| dag.in_degree(VertexId(v as u32))).collect();
    // (release_round, vertex): vertex may execute at any round >= release.
    let mut releases: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    releases.push(Reverse((1, dag.root().0)));

    let mut ready: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
    let mut entries = Vec::with_capacity(n);
    let mut executed = 0usize;
    let mut round = 0u64;

    while executed < n {
        // Jump to the next interesting round: either there are ready
        // vertices now, or the earliest pending release.
        if ready.is_empty() {
            let Reverse((r, _)) = *releases.peek().expect("dag is connected");
            round = round.max(r);
        } else {
            round += 1;
        }
        // Pull in everything released by `round`.
        while let Some(&Reverse((r, v))) = releases.peek() {
            if r <= round {
                releases.pop();
                ready.push_back(VertexId(v));
            } else {
                break;
            }
        }
        debug_assert!(!ready.is_empty());
        // Execute up to p ready vertices this round.
        for worker in 0..p {
            let Some(v) = ready.pop_front() else { break };
            entries.push(ScheduleEntry {
                round,
                worker,
                vertex: v,
            });
            executed += 1;
            for e in dag.out(v).iter() {
                let d = e.dst.index();
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    releases.push(Reverse((round + e.weight, e.dst.0)));
                }
            }
        }
    }

    Schedule {
        workers: p,
        length: round,
        entries,
    }
}

/// Brent's level-by-level schedule for **unweighted** dags: level `ℓ` with
/// `n_ℓ` vertices runs in `⌈n_ℓ / P⌉` consecutive rounds, after all of
/// level `ℓ−1`. Returns `None` if the dag has heavy edges.
pub fn level_by_level_schedule(dag: &WDag, p: usize) -> Option<Schedule> {
    assert!(p >= 1);
    if !dag.is_unweighted() {
        return None;
    }
    let lv = levels(dag);
    let max_level = lv.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_level + 1];
    for v in dag.vertices() {
        buckets[lv[v.index()] as usize].push(v);
    }
    let mut entries = Vec::with_capacity(dag.len());
    let mut round = 0u64;
    for bucket in &buckets {
        for chunk in bucket.chunks(p) {
            round += 1;
            for (worker, &v) in chunk.iter().enumerate() {
                entries.push(ScheduleEntry {
                    round,
                    worker,
                    vertex: v,
                });
            }
        }
    }
    Some(Schedule {
        workers: p,
        length: round,
        entries,
    })
}

/// Independently validates a schedule against the dag semantics.
pub fn validate_schedule(dag: &WDag, s: &Schedule) -> Result<(), ScheduleError> {
    let n = dag.len();
    let mut round_of = vec![0u64; n]; // 0 = not executed
    let mut per_worker_round = std::collections::HashSet::new();
    for e in &s.entries {
        if e.worker >= s.workers {
            return Err(ScheduleError::BadWorker(e.worker));
        }
        if round_of[e.vertex.index()] != 0 {
            return Err(ScheduleError::Duplicate(e.vertex));
        }
        round_of[e.vertex.index()] = e.round;
        if !per_worker_round.insert((e.worker, e.round)) {
            return Err(ScheduleError::WorkerOverload {
                worker: e.worker,
                round: e.round,
            });
        }
    }
    for v in dag.vertices() {
        if round_of[v.index()] == 0 {
            return Err(ScheduleError::Missing(v));
        }
    }
    for (u, e) in dag.edges() {
        let earliest = round_of[u.index()] + e.weight;
        let actual = round_of[e.dst.index()];
        if actual < earliest {
            return Err(ScheduleError::NotReady {
                vertex: e.dst,
                round: actual,
                earliest,
            });
        }
    }
    Ok(())
}

/// The trivial lower bound `max(⌈W/P⌉, S)` on any schedule length.
pub fn lower_bound(dag: &WDag, p: usize) -> u64 {
    let m = Metrics::compute(dag);
    let work_bound = m.work.div_ceil(p as u64);
    // A chain of k vertices takes k rounds but has span k−1; the +1
    // accounts for executing the root itself.
    work_bound.max(m.span + 1)
}

/// The Theorem 1 upper bound `W/P + S` on greedy schedules (rounded up).
pub fn greedy_bound(dag: &WDag, p: usize) -> u64 {
    let m = Metrics::compute(dag);
    m.work.div_ceil(p as u64) + m.span
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Block;
    use crate::gen::{fib, map_reduce, pipeline, random_sp, server, RandomSpParams};

    fn check_greedy(dag: &WDag, ps: &[usize]) {
        for &p in ps {
            let s = greedy_schedule(dag, p);
            validate_schedule(dag, &s).unwrap();
            assert!(
                s.length <= greedy_bound(dag, p),
                "greedy length {} exceeds W/P + S = {} at P={p}",
                s.length,
                greedy_bound(dag, p)
            );
            assert!(s.length >= lower_bound(dag, p));
            assert_eq!(s.entries.len(), dag.len());
        }
    }

    #[test]
    fn greedy_on_chain() {
        let d = Block::work(10).build();
        let s = greedy_schedule(&d, 4);
        validate_schedule(&d, &s).unwrap();
        assert_eq!(s.length, 10, "chains cannot be parallelized");
    }

    #[test]
    fn greedy_on_wide_tree() {
        let d = Block::par_tree(32, &mut |_| Block::work(1)).build();
        let s1 = greedy_schedule(&d, 1);
        let s8 = greedy_schedule(&d, 8);
        validate_schedule(&d, &s1).unwrap();
        validate_schedule(&d, &s8).unwrap();
        assert_eq!(s1.length, d.work(), "1 worker, no latency: 1 vertex/round");
        assert!(s8.length < s1.length / 4, "wide tree speeds up");
    }

    #[test]
    fn greedy_respects_latency() {
        let d = Block::seq([Block::latency(100), Block::work(1)]).build();
        let s = greedy_schedule(&d, 4);
        validate_schedule(&d, &s).unwrap();
        // io at round 1, successor no earlier than 101, plus terminal Nop.
        assert!(s.length >= 101);
    }

    #[test]
    fn greedy_hides_off_critical_latency() {
        // Long latency in one branch, ample parallel work in the other:
        // the greedy schedule overlaps them, so the latency does not show
        // up additively in the length.
        let d = Block::par(
            Block::seq([Block::latency(50), Block::work(1)]),
            Block::par_tree(8, &mut |_| Block::work(32)),
        )
        .build();
        let s = greedy_schedule(&d, 2);
        validate_schedule(&d, &s).unwrap();
        assert!(s.length <= greedy_bound(&d, 2));
        // Far below serializing latency + work.
        assert!(s.length < d.work(), "latency was hidden behind work");
    }

    #[test]
    fn theorem_one_on_all_families() {
        let ps = [1usize, 2, 3, 7, 16];
        check_greedy(&map_reduce(16, 40, 6, 2).dag, &ps);
        check_greedy(&server(10, 25, 8, 1).dag, &ps);
        check_greedy(&fib(10, 3).dag, &ps);
        check_greedy(&pipeline(4, 4, 30, 2).dag, &ps);
        for seed in 0..10 {
            check_greedy(&random_sp(RandomSpParams::default().seed(seed)).dag, &ps);
        }
    }

    #[test]
    fn all_workers_idle_rounds_allowed() {
        // Theorem 1 discussion: with weighted dags all workers may idle
        // while waiting on suspensions. Length can exceed W even at P=1.
        let d = Block::seq([Block::latency(100), Block::work(1)]).build();
        let s = greedy_schedule(&d, 1);
        assert!(s.length > d.work());
        validate_schedule(&d, &s).unwrap();
    }

    #[test]
    fn level_by_level_matches_brent_bound() {
        let d = fib(10, 3).dag;
        let m = Metrics::compute(&d);
        for p in [1usize, 2, 4, 8] {
            let s = level_by_level_schedule(&d, p).unwrap();
            validate_schedule(&d, &s).unwrap();
            // Brent: length <= W/P + S (unweighted S counts edges; each
            // level contributes ceil(n_l/P) <= n_l/P + 1 rounds).
            assert!(s.length <= m.work.div_ceil(p as u64) + m.span);
        }
    }

    #[test]
    fn level_by_level_rejects_weighted() {
        let d = Block::seq([Block::latency(5), Block::work(1)]).build();
        assert!(level_by_level_schedule(&d, 2).is_none());
    }

    #[test]
    fn validator_catches_duplicates() {
        let d = Block::work(2).build();
        let mut s = greedy_schedule(&d, 1);
        s.entries[1].vertex = s.entries[0].vertex;
        assert!(matches!(
            validate_schedule(&d, &s),
            Err(ScheduleError::Duplicate(_))
        ));
    }

    #[test]
    fn validator_catches_early_execution() {
        let d = Block::seq([Block::latency(10), Block::work(1)]).build();
        let mut s = greedy_schedule(&d, 1);
        // Pull every entry to round index 1, 2, 3 ... ignoring latency.
        for (i, e) in s.entries.iter_mut().enumerate() {
            e.round = i as u64 + 1;
        }
        assert!(matches!(
            validate_schedule(&d, &s),
            Err(ScheduleError::NotReady { .. })
        ));
    }

    #[test]
    fn validator_catches_overload() {
        let d = Block::par(Block::work(1), Block::work(1)).build();
        let mut s = greedy_schedule(&d, 2);
        for e in &mut s.entries {
            e.worker = 0; // squeeze everything onto worker 0
        }
        let err = validate_schedule(&d, &s).unwrap_err();
        assert!(matches!(err, ScheduleError::WorkerOverload { .. }));
    }

    #[test]
    fn greedy_p1_length_is_work_plus_unhidden_latency() {
        // Server: every latency sits on the critical path; at P=1 the
        // schedule must wait out each one.
        let w = server(5, 20, 1, 1);
        let s = greedy_schedule(&w.dag, 1);
        validate_schedule(&w.dag, &s).unwrap();
        assert!(s.length >= 5 * 20);
    }
}
