//! Graphviz export and text rendering of weighted dags.
//!
//! [`to_dot`] emits a `.dot` graph in the paper's visual convention:
//! light edges thin, heavy edges thick and labelled with their latency
//! (Figure 1). [`to_dot_with_partition`] additionally shades a source-sink
//! partition, which together with
//! [`suspension_width_witness`](crate::suspension::suspension_width_witness)
//! visualizes where the suspension width is attained. [`summary`] renders a
//! one-paragraph structural description for logs and example output.

use std::fmt::Write as _;

use crate::dag::{VertexKind, WDag};
use crate::metrics::Metrics;

/// Renders the dag as a Graphviz digraph.
pub fn to_dot(dag: &WDag) -> String {
    to_dot_impl(dag, None)
}

/// Renders the dag with the vertices of `in_s` (a source-side partition
/// membership vector, e.g. a suspension-width witness) filled.
pub fn to_dot_with_partition(dag: &WDag, in_s: &[bool]) -> String {
    to_dot_impl(dag, Some(in_s))
}

fn to_dot_impl(dag: &WDag, partition: Option<&[bool]>) -> String {
    let mut out = String::new();
    out.push_str("digraph lhws {\n");
    out.push_str("  rankdir=TB;\n  node [fontsize=10];\n");
    for v in dag.vertices() {
        let (shape, label) = match dag.kind(v) {
            VertexKind::Compute => ("circle", format!("{v}")),
            VertexKind::Fork => ("triangle", format!("{v}\\nfork")),
            VertexKind::Join => ("invtriangle", format!("{v}\\njoin")),
            VertexKind::Io => ("doublecircle", format!("{v}\\nio")),
            VertexKind::Nop => ("point", String::new()),
        };
        let fill = match partition {
            Some(in_s) if in_s[v.index()] => ", style=filled, fillcolor=lightgrey",
            _ => "",
        };
        let _ = writeln!(out, "  {} [shape={shape}, label=\"{label}\"{fill}];", v.0);
    }
    for (u, e) in dag.edges() {
        if e.is_heavy() {
            let _ = writeln!(
                out,
                "  {} -> {} [penwidth=2.5, label=\"{}\"];",
                u.0, e.dst.0, e.weight
            );
        } else {
            let _ = writeln!(out, "  {} -> {};", u.0, e.dst.0);
        }
    }
    out.push_str("}\n");
    out
}

/// One-paragraph structural summary of a dag.
pub fn summary(dag: &WDag) -> String {
    let m = Metrics::compute(dag);
    let u = crate::suspension::suspension_width(dag);
    format!(
        "dag: W={} S={} U={} heavy={} (total latency {}) \
         [compute={} fork={} join={} io={} nop={}] parallelism≈{}.{:02}",
        m.work,
        m.span,
        u,
        m.heavy_edges,
        m.total_latency,
        m.kind_counts.compute,
        m.kind_counts.fork,
        m.kind_counts.join,
        m.kind_counts.io,
        m.kind_counts.nop,
        m.parallelism_x100 / 100,
        m.parallelism_x100 % 100,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Block;
    use crate::suspension::suspension_width_witness;

    fn fig1() -> WDag {
        Block::par(
            Block::work(1),
            Block::seq([Block::latency(5), Block::work(1)]),
        )
        .build()
    }

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let d = fig1();
        let dot = to_dot(&d);
        assert!(dot.starts_with("digraph lhws {"));
        assert!(dot.ends_with("}\n"));
        for v in d.vertices() {
            assert!(
                dot.contains(&format!("  {} [", v.0)),
                "vertex {v} missing from dot output"
            );
        }
        let edge_lines = dot.lines().filter(|l| l.contains(" -> ")).count();
        assert_eq!(edge_lines, d.edges().count());
    }

    #[test]
    fn heavy_edges_are_thick_and_labelled() {
        let d = fig1();
        let dot = to_dot(&d);
        assert!(dot.contains("penwidth=2.5"));
        assert!(dot.contains("label=\"5\""));
    }

    #[test]
    fn partition_shading() {
        let d =
            Block::par_tree(4, &mut |_| Block::seq([Block::latency(9), Block::work(1)])).build();
        let (_u, in_s) = suspension_width_witness(&d);
        let dot = to_dot_with_partition(&d, &in_s);
        assert!(dot.contains("fillcolor=lightgrey"));
        // Exactly the S-side vertices are shaded.
        let shaded = dot.matches("fillcolor=lightgrey").count();
        assert_eq!(shaded, in_s.iter().filter(|&&b| b).count());
    }

    #[test]
    fn summary_mentions_key_stats() {
        let d = fig1();
        let s = summary(&d);
        assert!(s.contains("W=5"));
        assert!(s.contains("U=1"));
        assert!(s.contains("heavy=1"));
    }

    #[test]
    fn dot_kind_shapes() {
        let d = fig1();
        let dot = to_dot(&d);
        assert!(dot.contains("shape=triangle"), "fork shape");
        assert!(dot.contains("shape=invtriangle"), "join shape");
        assert!(dot.contains("shape=doublecircle"), "io shape");
    }
}
