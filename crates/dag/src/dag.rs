//! The weighted-dag representation and its structural validation.
//!
//! A [`WDag`] is an immutable, validated weighted computation dag satisfying
//! the paper's four structural assumptions (§2):
//!
//! 1. exactly one *root* (in-degree 0) and one *final* vertex (out-degree 0);
//! 2. out-degree at most two (an instruction spawns or synchronizes with at
//!    most one other thread);
//! 3. a vertex with a heavy in-edge has in-degree exactly one (so a
//!    suspended vertex waits on exactly one latency);
//! 4. the structure is fixed (determinism is the *user's* obligation; the
//!    representation itself is immutable).
//!
//! Dags are constructed through [`RawDagBuilder`] (or the higher-level
//! [`crate::builder::Block`] combinators) and validated by
//! [`RawDagBuilder::build`].

use std::fmt;

/// Edge latency. `1` means a light edge; `> 1` is heavy.
pub type Weight = u64;

/// Identifies a vertex of a [`WDag`]. Indices are dense: `0..dag.work()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The dense index of this vertex.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a vertex models. Purely descriptive: scheduling treats all vertices
/// as one unit of work; the kind is used by generators, statistics, and
/// debugging output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// Ordinary computational instruction.
    Compute,
    /// A fork point (spawns a second thread).
    Fork,
    /// A join/synchronization point.
    Join,
    /// An instruction that *initiates* a latency-incurring operation — the
    /// `input()` / `getValue()` of the paper's examples. Its outgoing edge
    /// is typically heavy.
    Io,
    /// Structural no-op (e.g. the buffer vertex inserted so a join never has
    /// a heavy in-edge with in-degree 2).
    Nop,
}

/// A directed edge `(u, v, δ)`, stored on `u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutEdge {
    /// Target vertex.
    pub dst: VertexId,
    /// Latency δ ≥ 1. `1` = light, `> 1` = heavy.
    pub weight: Weight,
}

impl OutEdge {
    /// True if this edge carries latency (δ > 1).
    #[inline]
    pub fn is_heavy(&self) -> bool {
        self.weight > 1
    }
}

/// Compact out-edge storage: 0, 1 or 2 edges per vertex.
///
/// When two edges are present, index 0 is the **left** child (the
/// continuation of the same thread — higher priority) and index 1 the
/// **right** child (the spawned thread), matching the paper's edge ordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutEdges {
    edges: [Option<OutEdge>; 2],
}

impl OutEdges {
    /// Number of out-edges (0–2).
    pub fn len(&self) -> usize {
        self.edges.iter().filter(|e| e.is_some()).count()
    }

    /// True if the vertex has no out-edges.
    pub fn is_empty(&self) -> bool {
        self.edges[0].is_none() && self.edges[1].is_none()
    }

    /// Iterates the present edges, left child first.
    pub fn iter(&self) -> impl Iterator<Item = &OutEdge> {
        self.edges.iter().filter_map(|e| e.as_ref())
    }

    /// The left child edge (continuation), if any.
    pub fn left(&self) -> Option<&OutEdge> {
        self.edges[0].as_ref()
    }

    /// The right child edge (spawn), if any.
    pub fn right(&self) -> Option<&OutEdge> {
        self.edges[1].as_ref()
    }

    fn push(&mut self, e: OutEdge) -> Result<(), ()> {
        if self.edges[0].is_none() {
            self.edges[0] = Some(e);
            Ok(())
        } else if self.edges[1].is_none() {
            self.edges[1] = Some(e);
            Ok(())
        } else {
            Err(())
        }
    }
}

/// Validation errors for weighted dags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The dag has no vertices.
    Empty,
    /// A vertex was given more than two out-edges.
    TooManyOutEdges(VertexId),
    /// An edge was declared with latency 0 (latencies are ≥ 1).
    ZeroWeight(VertexId, VertexId),
    /// An edge references a vertex id that was never allocated.
    DanglingEdge(VertexId, VertexId),
    /// A duplicate edge between the same pair of vertices.
    DuplicateEdge(VertexId, VertexId),
    /// Self-loop.
    SelfLoop(VertexId),
    /// No vertex has in-degree 0, or more than one does.
    RootCount(usize),
    /// No vertex has out-degree 0, or more than one does.
    FinalCount(usize),
    /// A vertex with a heavy in-edge has in-degree greater than one
    /// (violates assumption 3).
    HeavyInEdgeShared(VertexId),
    /// The edge relation contains a cycle.
    Cycle,
    /// A vertex is not reachable from the root.
    Unreachable(VertexId),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "dag has no vertices"),
            DagError::TooManyOutEdges(v) => write!(f, "{v} has more than two out-edges"),
            DagError::ZeroWeight(u, v) => write!(f, "edge ({u}, {v}) has weight 0"),
            DagError::DanglingEdge(u, v) => write!(f, "edge ({u}, {v}) references unknown vertex"),
            DagError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            DagError::SelfLoop(v) => write!(f, "self-loop on {v}"),
            DagError::RootCount(n) => write!(f, "expected exactly one root, found {n}"),
            DagError::FinalCount(n) => write!(f, "expected exactly one final vertex, found {n}"),
            DagError::HeavyInEdgeShared(v) => {
                write!(f, "{v} has a heavy in-edge but in-degree > 1")
            }
            DagError::Cycle => write!(f, "edge relation contains a cycle"),
            DagError::Unreachable(v) => write!(f, "{v} is unreachable from the root"),
        }
    }
}

impl std::error::Error for DagError {}

/// Mutable dag under construction. See [`RawDagBuilder::build`].
#[derive(Debug, Default, Clone)]
pub struct RawDagBuilder {
    outs: Vec<OutEdges>,
    kinds: Vec<VertexKind>,
    overflow: Option<VertexId>,
}

impl RawDagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity reserved for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        RawDagBuilder {
            outs: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
            overflow: None,
        }
    }

    /// Adds a vertex of the given kind, returning its id.
    pub fn add_vertex(&mut self, kind: VertexKind) -> VertexId {
        let id = VertexId(self.outs.len() as u32);
        self.outs.push(OutEdges::default());
        self.kinds.push(kind);
        id
    }

    /// Adds an edge `(u, v, δ)`. Edge order matters: the first edge added to
    /// `u` is its left (continuation) child, the second its right (spawned)
    /// child.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, weight: Weight) {
        if self.outs[u.index()]
            .push(OutEdge { dst: v, weight })
            .is_err()
        {
            // Recorded and reported by `build` so callers get a `DagError`
            // rather than a panic deep inside a generator.
            self.overflow.get_or_insert(u);
        }
    }

    /// Current number of vertices.
    pub fn len(&self) -> usize {
        self.outs.len()
    }

    /// True if no vertex was added yet.
    pub fn is_empty(&self) -> bool {
        self.outs.is_empty()
    }

    /// Validates the paper's structural assumptions and freezes the dag.
    pub fn build(self) -> Result<WDag, DagError> {
        let n = self.outs.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        if let Some(v) = self.overflow {
            return Err(DagError::TooManyOutEdges(v));
        }

        // Edge sanity + in-degrees + heavy-in flags.
        let mut in_deg = vec![0u32; n];
        let mut heavy_in = vec![false; n];
        for (ui, out) in self.outs.iter().enumerate() {
            let u = VertexId(ui as u32);
            let mut seen: [Option<VertexId>; 2] = [None, None];
            for (k, e) in out.iter().enumerate() {
                if e.weight == 0 {
                    return Err(DagError::ZeroWeight(u, e.dst));
                }
                if e.dst.index() >= n {
                    return Err(DagError::DanglingEdge(u, e.dst));
                }
                if e.dst == u {
                    return Err(DagError::SelfLoop(u));
                }
                if seen.iter().flatten().any(|&d| d == e.dst) {
                    return Err(DagError::DuplicateEdge(u, e.dst));
                }
                seen[k] = Some(e.dst);
                in_deg[e.dst.index()] += 1;
                if e.is_heavy() {
                    heavy_in[e.dst.index()] = true;
                }
            }
        }

        // Assumption 3: heavy in-edge implies in-degree 1.
        for v in 0..n {
            if heavy_in[v] && in_deg[v] != 1 {
                return Err(DagError::HeavyInEdgeShared(VertexId(v as u32)));
            }
        }

        // Assumption 1: unique root and final vertex.
        let roots: Vec<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
        if roots.len() != 1 {
            return Err(DagError::RootCount(roots.len()));
        }
        let finals: Vec<usize> = (0..n).filter(|&v| self.outs[v].is_empty()).collect();
        if finals.len() != 1 {
            return Err(DagError::FinalCount(finals.len()));
        }

        // Acyclicity + reachability via Kahn's algorithm from the root.
        let mut remaining = in_deg.clone();
        let mut stack = vec![roots[0]];
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            topo.push(VertexId(v as u32));
            for e in self.outs[v].iter() {
                let d = e.dst.index();
                remaining[d] -= 1;
                if remaining[d] == 0 {
                    stack.push(d);
                }
            }
        }
        if topo.len() != n {
            // Either a cycle or an unreachable component. A plain DFS from
            // the root (ignoring in-degrees) separates the two: vertices
            // the DFS misses are unreachable; if the DFS reaches everything
            // yet Kahn stalled, the stall was caused by a cycle.
            let mut seen = vec![false; n];
            seen[roots[0]] = true;
            let mut dfs = vec![roots[0]];
            while let Some(v) = dfs.pop() {
                for e in self.outs[v].iter() {
                    let d = e.dst.index();
                    if !seen[d] {
                        seen[d] = true;
                        dfs.push(d);
                    }
                }
            }
            if let Some(v) = (0..n).find(|&v| !seen[v]) {
                return Err(DagError::Unreachable(VertexId(v as u32)));
            }
            return Err(DagError::Cycle);
        }

        Ok(WDag {
            outs: self.outs.into_boxed_slice(),
            kinds: self.kinds.into_boxed_slice(),
            in_deg: in_deg.into_boxed_slice(),
            topo: topo.into_boxed_slice(),
            root: VertexId(roots[0] as u32),
            final_v: VertexId(finals[0] as u32),
        })
    }
}

/// A validated, immutable weighted computation dag.
#[derive(Debug, Clone)]
pub struct WDag {
    outs: Box<[OutEdges]>,
    kinds: Box<[VertexKind]>,
    in_deg: Box<[u32]>,
    topo: Box<[VertexId]>,
    root: VertexId,
    final_v: VertexId,
}

impl WDag {
    /// Number of vertices — the **work** `W` of the computation (§2: edge
    /// weights do not count toward the work).
    #[inline]
    pub fn work(&self) -> u64 {
        self.outs.len() as u64
    }

    /// Number of vertices as a `usize` (for indexing).
    #[inline]
    pub fn len(&self) -> usize {
        self.outs.len()
    }

    /// A dag always has at least one vertex.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The unique root vertex.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The unique final vertex.
    #[inline]
    pub fn final_vertex(&self) -> VertexId {
        self.final_v
    }

    /// Out-edges of `v` (left child first).
    #[inline]
    pub fn out(&self, v: VertexId) -> &OutEdges {
        &self.outs[v.index()]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.in_deg[v.index()]
    }

    /// Kind tag of `v`.
    #[inline]
    pub fn kind(&self, v: VertexId) -> VertexKind {
        self.kinds[v.index()]
    }

    /// A topological order with the root first (cached from validation).
    #[inline]
    pub fn topo_order(&self) -> &[VertexId] {
        &self.topo
    }

    /// Iterates all vertex ids in index order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.outs.len() as u32).map(VertexId)
    }

    /// Iterates all edges as `(u, edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, &OutEdge)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out(u).iter().map(move |e| (u, e)))
    }

    /// Iterates the heavy edges only.
    pub fn heavy_edges(&self) -> impl Iterator<Item = (VertexId, &OutEdge)> + '_ {
        self.edges().filter(|(_, e)| e.is_heavy())
    }

    /// Number of heavy edges.
    pub fn heavy_edge_count(&self) -> u64 {
        self.heavy_edges().count() as u64
    }

    /// True if the dag has no heavy edges (a traditional unweighted dag).
    pub fn is_unweighted(&self) -> bool {
        self.heavy_edges().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> RawDagBuilder {
        let mut b = RawDagBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex(VertexKind::Compute)).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], 1);
        }
        b
    }

    #[test]
    fn single_vertex_dag() {
        let mut b = RawDagBuilder::new();
        let v = b.add_vertex(VertexKind::Compute);
        let d = b.build().unwrap();
        assert_eq!(d.work(), 1);
        assert_eq!(d.root(), v);
        assert_eq!(d.final_vertex(), v);
        assert!(d.is_unweighted());
    }

    #[test]
    fn chain_dag_basics() {
        let d = chain(5).build().unwrap();
        assert_eq!(d.work(), 5);
        assert_eq!(d.root(), VertexId(0));
        assert_eq!(d.final_vertex(), VertexId(4));
        assert_eq!(d.topo_order().len(), 5);
        assert_eq!(d.in_degree(VertexId(0)), 0);
        assert_eq!(d.in_degree(VertexId(3)), 1);
    }

    #[test]
    fn empty_dag_rejected() {
        assert_eq!(RawDagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn diamond_is_valid() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Fork);
        let l = b.add_vertex(VertexKind::Compute);
        let r = b.add_vertex(VertexKind::Compute);
        let j = b.add_vertex(VertexKind::Join);
        b.add_edge(a, l, 1);
        b.add_edge(a, r, 1);
        b.add_edge(l, j, 1);
        b.add_edge(r, j, 1);
        let d = b.build().unwrap();
        assert_eq!(d.out(a).len(), 2);
        assert_eq!(d.out(a).left().unwrap().dst, l);
        assert_eq!(d.out(a).right().unwrap().dst, r);
        assert_eq!(d.in_degree(j), 2);
    }

    #[test]
    fn three_out_edges_rejected() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Fork);
        let x = b.add_vertex(VertexKind::Compute);
        let y = b.add_vertex(VertexKind::Compute);
        let z = b.add_vertex(VertexKind::Compute);
        let f = b.add_vertex(VertexKind::Join);
        b.add_edge(a, x, 1);
        b.add_edge(a, y, 1);
        b.add_edge(a, z, 1);
        b.add_edge(x, f, 1);
        b.add_edge(y, f, 1);
        // z dangling on purpose; overflow is reported first.
        assert_eq!(b.build().unwrap_err(), DagError::TooManyOutEdges(a));
    }

    #[test]
    fn zero_weight_rejected() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Compute);
        let c = b.add_vertex(VertexKind::Compute);
        b.add_edge(a, c, 0);
        assert_eq!(b.build().unwrap_err(), DagError::ZeroWeight(a, c));
    }

    #[test]
    fn heavy_in_edge_with_indegree_two_rejected() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Fork);
        let l = b.add_vertex(VertexKind::Io);
        let r = b.add_vertex(VertexKind::Compute);
        let j = b.add_vertex(VertexKind::Join);
        b.add_edge(a, l, 1);
        b.add_edge(a, r, 1);
        b.add_edge(l, j, 10); // heavy into a join with in-degree 2
        b.add_edge(r, j, 1);
        assert_eq!(b.build().unwrap_err(), DagError::HeavyInEdgeShared(j));
    }

    #[test]
    fn heavy_in_edge_with_indegree_one_accepted() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Io);
        let c = b.add_vertex(VertexKind::Compute);
        b.add_edge(a, c, 10);
        let d = b.build().unwrap();
        assert!(!d.is_unweighted());
        assert_eq!(d.heavy_edge_count(), 1);
    }

    #[test]
    fn two_roots_rejected() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Compute);
        let c = b.add_vertex(VertexKind::Compute);
        let f = b.add_vertex(VertexKind::Join);
        b.add_edge(a, f, 1);
        b.add_edge(c, f, 1);
        assert_eq!(b.build().unwrap_err(), DagError::RootCount(2));
    }

    #[test]
    fn two_finals_rejected() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Fork);
        let x = b.add_vertex(VertexKind::Compute);
        let y = b.add_vertex(VertexKind::Compute);
        b.add_edge(a, x, 1);
        b.add_edge(a, y, 1);
        assert_eq!(b.build().unwrap_err(), DagError::FinalCount(2));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = RawDagBuilder::new();
        let r = b.add_vertex(VertexKind::Compute);
        let a = b.add_vertex(VertexKind::Compute);
        let c = b.add_vertex(VertexKind::Compute);
        let f = b.add_vertex(VertexKind::Compute);
        b.add_edge(r, a, 1);
        b.add_edge(a, c, 1);
        b.add_edge(c, a, 1); // cycle a <-> c
        b.add_edge(c, f, 1);
        assert_eq!(b.build().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = RawDagBuilder::new();
        let r = b.add_vertex(VertexKind::Compute);
        let a = b.add_vertex(VertexKind::Compute);
        b.add_edge(r, a, 1);
        b.add_edge(a, a, 1);
        assert_eq!(b.build().unwrap_err(), DagError::SelfLoop(a));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = RawDagBuilder::new();
        let r = b.add_vertex(VertexKind::Compute);
        let a = b.add_vertex(VertexKind::Compute);
        b.add_edge(r, a, 1);
        b.add_edge(r, a, 1);
        assert_eq!(b.build().unwrap_err(), DagError::DuplicateEdge(r, a));
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Fork);
        let l = b.add_vertex(VertexKind::Compute);
        let r = b.add_vertex(VertexKind::Compute);
        let j = b.add_vertex(VertexKind::Join);
        b.add_edge(a, l, 1);
        b.add_edge(a, r, 1);
        b.add_edge(l, j, 1);
        b.add_edge(r, j, 1);
        let d = b.build().unwrap();
        let pos: std::collections::HashMap<VertexId, usize> = d
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        for (u, e) in d.edges() {
            assert!(pos[&u] < pos[&e.dst], "edge {u}->{} out of order", e.dst);
        }
    }

    #[test]
    fn edge_iterators() {
        let mut b = RawDagBuilder::new();
        let a = b.add_vertex(VertexKind::Io);
        let c = b.add_vertex(VertexKind::Compute);
        let f = b.add_vertex(VertexKind::Compute);
        b.add_edge(a, c, 5);
        b.add_edge(c, f, 1);
        let d = b.build().unwrap();
        assert_eq!(d.edges().count(), 2);
        assert_eq!(d.heavy_edges().count(), 1);
        let (u, e) = d.heavy_edges().next().unwrap();
        assert_eq!((u, e.dst, e.weight), (a, c, 5));
        assert_eq!(d.kind(a), VertexKind::Io);
    }
}
