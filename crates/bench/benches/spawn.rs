//! Task spawn/join overhead of the runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use lhws_core::{spawn, Config, Runtime};

fn bench_spawn_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("spawn_join");
    g.sample_size(20);
    for p in [1usize, 4] {
        g.bench_function(format!("chain_1000_p{p}"), |b| {
            let rt = Runtime::new(Config::default().workers(p)).unwrap();
            b.iter(|| {
                rt.block_on(async {
                    let mut acc = 0u64;
                    for i in 0..1000u64 {
                        acc += spawn(async move { i }).await;
                    }
                    acc
                })
            });
        });
        g.bench_function(format!("fanout_1000_p{p}"), |b| {
            let rt = Runtime::new(Config::default().workers(p)).unwrap();
            b.iter(|| {
                rt.block_on(async {
                    let hs: Vec<_> = (0..1000u64).map(|i| spawn(async move { i })).collect();
                    let mut acc = 0u64;
                    for h in hs {
                        acc += h.await;
                    }
                    acc
                })
            });
        });
    }
    g.finish();
}

fn bench_block_on(c: &mut Criterion) {
    let rt = Runtime::new(Config::default().workers(2)).unwrap();
    c.bench_function("block_on_trivial", |b| {
        b.iter(|| rt.block_on(async { 1u32 }));
    });
}

criterion_group!(benches, bench_spawn_join, bench_block_on);
criterion_main!(benches);
