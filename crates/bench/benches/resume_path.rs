//! The suspension/resume hot path: register+resume throughput of the
//! sharded timer wheel vs the single-mutex heap timer ablation
//! (`TimerKind::Heap`), at 1 and 8 workers.
//!
//! Each iteration drives one wave of suspensions with a common deadline
//! through a long-lived runtime: register → expire → batch-deliver →
//! drain → reinject → join. After the criterion loops, a direct
//! measurement pass writes `BENCH_resume.json` at the repo root with
//! throughputs and the wheel/heap speedup per worker count (the headline
//! acceptance number: ≥2x at P≥8).
//!
//! Run modes: `cargo bench --bench resume_path` (full), `-- --test`
//! (single-iteration smoke, small JSON pass), `-- --quick`.

use std::path::PathBuf;
use std::time::Duration;

use criterion::Criterion;
use lhws_bench::{measure_resume, resume_rt, resume_wave, timer_name, write_bench_resume_json};
use lhws_core::TimerKind;

const KINDS: [TimerKind; 2] = [TimerKind::Wheel, TimerKind::Heap];
const HORIZON: Duration = Duration::from_millis(1);

fn bench_resume_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("resume_path");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(6));

    for kind in KINDS {
        for p in [1usize, 8] {
            let rt = resume_rt(kind, p);
            g.bench_function(format!("{}_p{p}", timer_name(kind)), |b| {
                b.iter(|| resume_wave(&rt, 2_000, HORIZON));
            });
        }
    }
    g.finish();
}

fn emit_json(smoke: bool) {
    let (tasks, rounds) = if smoke { (500, 1) } else { (8_000, 6) };
    let mut ms = Vec::new();
    for kind in KINDS {
        for p in [1usize, 8] {
            ms.push(measure_resume(kind, p, tasks, rounds, HORIZON));
        }
    }
    // CARGO_MANIFEST_DIR is crates/bench; the JSON lands at the repo root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_resume.json");
    let mode = if smoke { "smoke" } else { "full" };
    write_bench_resume_json(&path, mode, &ms).expect("write BENCH_resume.json");

    for m in &ms {
        println!(
            "resume_path {}_p{}: {:.0} register+resume/s",
            m.timer,
            m.workers,
            m.throughput()
        );
    }
    let speedup = |p: usize| -> f64 {
        let w = ms.iter().find(|m| m.timer == "wheel" && m.workers == p);
        let h = ms.iter().find(|m| m.timer == "heap" && m.workers == p);
        match (w, h) {
            (Some(w), Some(h)) => w.throughput() / h.throughput(),
            _ => 0.0,
        }
    };
    println!(
        "resume_path speedup wheel/heap: p1 {:.2}x, p8 {:.2}x -> {}",
        speedup(1),
        speedup(8),
        path.display()
    );
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_resume_path(&mut c);
    let smoke = std::env::args().any(|a| a == "--test" || a == "--quick");
    emit_json(smoke);
}
