//! U = 0 scaling: parallel fib on the runtime in Hide vs Block mode vs
//! sequential. Demonstrates the "no penalty when no task suspends" claim
//! at microbenchmark precision.

use criterion::{criterion_group, criterion_main, Criterion};
use lhws_bench::fib;
use lhws_core::{fork2, Config, LatencyMode, Runtime};

fn pfib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
    Box::pin(async move {
        if n < 16 {
            fib(n)
        } else {
            let (a, b) = fork2(pfib(n - 1), pfib(n - 2)).await;
            a + b
        }
    })
}

fn bench_fib(c: &mut Criterion) {
    const N: u64 = 26;
    let mut g = c.benchmark_group("fib26");
    g.sample_size(10);
    let expect = fib(N);

    g.bench_function("sequential", |b| b.iter(|| assert_eq!(fib(N), expect)));

    let p = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for (name, mode) in [
        ("lhws_hide", LatencyMode::Hide),
        ("ws_block", LatencyMode::Block),
    ] {
        g.bench_function(name, |b| {
            let rt = Runtime::new(Config::default().workers(p).mode(mode)).unwrap();
            b.iter(|| assert_eq!(rt.block_on(pfib(N)), expect));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fib);
criterion_main!(benches);
