//! Microbenchmarks of the deque substrate: owner push/pop throughput and
//! steal throughput for both implementations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lhws_deque::{DequeKind, WorkerHandle};

fn bench_owner_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque_owner_push_pop");
    for (name, kind) in [
        ("chase_lev", DequeKind::ChaseLev),
        ("mutex", DequeKind::Mutex),
    ] {
        g.bench_function(name, |b| {
            let (w, _s) = WorkerHandle::<usize>::new(kind);
            b.iter(|| {
                for i in 0..256 {
                    w.push_bottom(i);
                }
                let mut acc = 0usize;
                while let Some(v) = w.pop_bottom() {
                    acc = acc.wrapping_add(v);
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_steals(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque_steal");
    for (name, kind) in [
        ("chase_lev", DequeKind::ChaseLev),
        ("mutex", DequeKind::Mutex),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let (w, s) = WorkerHandle::<usize>::new(kind);
                    for i in 0..256 {
                        w.push_bottom(i);
                    }
                    (w, s)
                },
                |(_w, s)| {
                    let mut acc = 0usize;
                    while let Some(v) = s.steal().success() {
                        acc = acc.wrapping_add(v);
                    }
                    acc
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_contended_steals(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque_contended");
    g.sample_size(10);
    for (name, kind) in [
        ("chase_lev", DequeKind::ChaseLev),
        ("mutex", DequeKind::Mutex),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (w, s) = WorkerHandle::<usize>::new(kind);
                let thief = {
                    let s = s.clone();
                    std::thread::spawn(move || {
                        let mut got = 0usize;
                        let mut misses = 0usize;
                        while misses < 10_000 {
                            match s.steal() {
                                lhws_deque::Steal::Success(_) => {
                                    got += 1;
                                    misses = 0;
                                }
                                _ => misses += 1,
                            }
                        }
                        got
                    })
                };
                let mut own = 0usize;
                for i in 0..20_000 {
                    w.push_bottom(i);
                    if i % 2 == 0 && w.pop_bottom().is_some() {
                        own += 1;
                    }
                }
                while w.pop_bottom().is_some() {
                    own += 1;
                }
                let stolen = thief.join().unwrap();
                assert_eq!(own + stolen, 20_000);
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_owner_ops,
    bench_steals,
    bench_contended_steals
);
criterion_main!(benches);
