//! The thief's victim-selection path: steal throughput of live-set
//! sampling ([`Registry::random_live_id`]) vs the paper's allocated-prefix
//! slot array ([`Registry::random_id`]), as the fraction of dead slots
//! grows.
//!
//! After a suspension burst frees deques, the allocated prefix fills with
//! dead slots; a baseline thief wastes a draw on each one, while the
//! live-set index keeps every draw landing on a deque that can have work.
//! Each measurement preloads 8192 deques, kills `dead_pct`% of them, and
//! counts successful steals per second across the thief threads.
//!
//! After the criterion loops, a direct measurement pass writes
//! `BENCH_steal.json` at the repo root with the full P × dead-fraction
//! matrix and the live/slots speedup per point (the headline acceptance
//! number: ≥1.5x at P=4 with ≥50% dead slots).
//!
//! A second pass writes `BENCH_steal_policy.json`: the steal-policy
//! matrix (uniform vs affinity victim selection × single-steal vs
//! steal-half batching) over thieves ∈ {1, 4, 8} and victim depth ∈
//! {1, 64, 4096}. Its acceptance number is steal-half ≥1.3x over
//! single-steal on the deep-victim shape at P=4, with the single-steal
//! baseline itself unperturbed.
//!
//! Run modes: `cargo bench --bench steal_path` (full), `-- --test`
//! (single-iteration smoke, small JSON pass, speedup floor relaxed to
//! parity), `-- --quick`.
//!
//! [`Registry::random_live_id`]: lhws_deque::Registry::random_live_id
//! [`Registry::random_id`]: lhws_deque::Registry::random_id

use std::path::PathBuf;
use std::time::Duration;

use criterion::Criterion;
use lhws_bench::{
    measure_steal, measure_steal_policy, write_bench_steal_json, write_bench_steal_policy_json,
    StealMeasurement, StealPolicyMeasurement,
};

const THIEVES: [usize; 3] = [1, 4, 8];
const DEAD_PCTS: [u32; 3] = [0, 50, 90];

/// Victim depths for the policy matrix: a shallow deque where batching
/// can only strip the owner, a moderate one, and the deep-victim shape
/// the steal-half acceptance number is measured on.
const DEPTHS: [usize; 3] = [1, 64, 4096];

/// Steal-half caps: 1 is the PR 5 single-steal baseline path.
const BATCH_LIMITS: [usize; 2] = [1, 8];

fn bench_steal_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("steal_path");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));

    // Criterion tracks the P=4 column; emit_json covers the full matrix.
    for dead in DEAD_PCTS {
        for (name, live) in [("live", true), ("slots", false)] {
            g.bench_function(format!("{name}_p4_dead{dead}"), |b| {
                b.iter(|| measure_steal(live, 4, dead, 10_000));
            });
        }
    }
    g.finish();
}

fn speedup(ms: &[StealMeasurement], thieves: usize, dead_pct: u32) -> f64 {
    let at = |sampling: &str| {
        ms.iter()
            .find(|m| m.sampling == sampling && m.thieves == thieves && m.dead_pct == dead_pct)
            .map(|m| m.steal_throughput())
    };
    match (at("live"), at("slots")) {
        (Some(l), Some(s)) => l / s.max(1e-9),
        _ => 0.0,
    }
}

fn emit_json(smoke: bool) {
    let attempts_per_thief: u64 = if smoke { 25_000 } else { 200_000 };
    let mut ms = Vec::new();
    for &p in &THIEVES {
        for &dead in &DEAD_PCTS {
            for live in [true, false] {
                ms.push(measure_steal(live, p, dead, attempts_per_thief));
            }
        }
    }
    // CARGO_MANIFEST_DIR is crates/bench; the JSON lands at the repo root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_steal.json");
    let mode = if smoke { "smoke" } else { "full" };
    write_bench_steal_json(&path, mode, &ms).expect("write BENCH_steal.json");

    for m in &ms {
        println!(
            "steal_path {}_p{}_dead{}: {:.0} steals/s (hit rate {:.2})",
            m.sampling,
            m.thieves,
            m.dead_pct,
            m.steal_throughput(),
            m.hit_rate()
        );
    }
    for &dead in &DEAD_PCTS {
        println!(
            "steal_path speedup live/slots dead{dead}: p1 {:.2}x, p4 {:.2}x, p8 {:.2}x",
            speedup(&ms, 1, dead),
            speedup(&ms, 4, dead),
            speedup(&ms, 8, dead),
        );
    }
    println!("steal_path wrote {}", path.display());

    // The acceptance gate: with half the slots dead, live-set sampling
    // must beat the slot-array baseline ≥1.5x at P=4. The smoke run (CI)
    // only insists on parity — short runs are too noisy for the full bar.
    let x = speedup(&ms, 4, 50);
    let floor = if smoke { 1.0 } else { 1.5 };
    assert!(
        x >= floor,
        "live-set sampling speedup {x:.2}x at p4/dead50 below the {floor:.1}x floor"
    );
}

fn policy_throughput(
    ms: &[StealPolicyMeasurement],
    policy: &str,
    limit: usize,
    thieves: usize,
    depth: usize,
) -> f64 {
    ms.iter()
        .find(|m| {
            m.policy == policy && m.batch_limit == limit && m.thieves == thieves && m.depth == depth
        })
        // The best-round (min-time) estimate: robust to scheduler
        // interference on oversubscribed CI hosts.
        .map(|m| m.peak_throughput())
        .unwrap_or(0.0)
}

fn emit_policy_json(smoke: bool) {
    let target_tasks: u64 = if smoke { 16_384 } else { 262_144 };
    let mut ms = Vec::new();
    for affinity in [false, true] {
        for &limit in &BATCH_LIMITS {
            for &p in &THIEVES {
                for &depth in &DEPTHS {
                    ms.push(measure_steal_policy(
                        affinity,
                        limit,
                        p,
                        depth,
                        target_tasks,
                    ));
                }
            }
        }
    }
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_steal_policy.json");
    let mode = if smoke { "smoke" } else { "full" };
    write_bench_steal_policy_json(&path, mode, &ms).expect("write BENCH_steal_policy.json");

    for m in &ms {
        println!(
            "steal_policy {}_b{}_p{}_d{}: {:.0} tasks/s peak, {:.0} mean ({:.2} tasks/draw)",
            m.policy,
            m.batch_limit,
            m.thieves,
            m.depth,
            m.peak_throughput(),
            m.task_throughput(),
            m.tasks_per_draw()
        );
    }
    for policy in ["uniform", "affinity"] {
        for &p in &THIEVES {
            for &depth in &DEPTHS {
                let single = policy_throughput(&ms, policy, 1, p, depth);
                let batch = policy_throughput(&ms, policy, BATCH_LIMITS[1], p, depth);
                println!(
                    "steal_policy speedup batch/single {policy} p{p} depth{depth}: {:.2}x",
                    batch / single.max(1e-9)
                );
            }
        }
    }
    println!("steal_path wrote {}", path.display());

    // Acceptance gates. Full mode: steal-half must beat single steals
    // ≥1.3x on the deep-victim shape at P=4 (the satellite's headline
    // number). Smoke (CI) keeps a relaxed floor: short runs are too
    // noisy for the full bar, but a broken batch path (lost tasks,
    // pathological retry storms) still trips it.
    let single = policy_throughput(&ms, "uniform", 1, 4, 4096);
    let batch = policy_throughput(&ms, "uniform", BATCH_LIMITS[1], 4, 4096);
    let x = batch / single.max(1e-9);
    let floor = if smoke { 0.5 } else { 1.3 };
    assert!(
        x >= floor,
        "steal-half speedup {x:.2}x at p4/depth4096 below the {floor:.1}x floor"
    );
    // Baseline-parity gate: uniform/limit-1 drives the exact single-steal
    // entry point the PR 5 runtime default uses, and affinity/limit-1
    // differs only in victim selection (cached victim first). Affinity is
    // legitimately faster on the deep shape — caching skips the draw — so
    // the window is wide; it exists to catch an order-of-magnitude
    // regression on the default path, not to rank the two policies.
    let aff_single = policy_throughput(&ms, "affinity", 1, 4, 4096);
    let parity = single / aff_single.max(1e-9);
    let (lo, hi) = if smoke { (0.1, 10.0) } else { (0.2, 5.0) };
    assert!(
        (lo..=hi).contains(&parity),
        "uniform single-steal {parity:.2}x off the affinity single-steal \
         baseline at p4/depth4096 — the default path regressed"
    );
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_steal_path(&mut c);
    let smoke = std::env::args().any(|a| a == "--test" || a == "--quick");
    emit_json(smoke);
    emit_policy_json(smoke);
}
