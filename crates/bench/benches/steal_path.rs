//! The thief's victim-selection path: steal throughput of live-set
//! sampling ([`Registry::random_live_id`]) vs the paper's allocated-prefix
//! slot array ([`Registry::random_id`]), as the fraction of dead slots
//! grows.
//!
//! After a suspension burst frees deques, the allocated prefix fills with
//! dead slots; a baseline thief wastes a draw on each one, while the
//! live-set index keeps every draw landing on a deque that can have work.
//! Each measurement preloads 8192 deques, kills `dead_pct`% of them, and
//! counts successful steals per second across the thief threads.
//!
//! After the criterion loops, a direct measurement pass writes
//! `BENCH_steal.json` at the repo root with the full P × dead-fraction
//! matrix and the live/slots speedup per point (the headline acceptance
//! number: ≥1.5x at P=4 with ≥50% dead slots).
//!
//! Run modes: `cargo bench --bench steal_path` (full), `-- --test`
//! (single-iteration smoke, small JSON pass, speedup floor relaxed to
//! parity), `-- --quick`.
//!
//! [`Registry::random_live_id`]: lhws_deque::Registry::random_live_id
//! [`Registry::random_id`]: lhws_deque::Registry::random_id

use std::path::PathBuf;
use std::time::Duration;

use criterion::Criterion;
use lhws_bench::{measure_steal, write_bench_steal_json, StealMeasurement};

const THIEVES: [usize; 3] = [1, 4, 8];
const DEAD_PCTS: [u32; 3] = [0, 50, 90];

fn bench_steal_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("steal_path");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));

    // Criterion tracks the P=4 column; emit_json covers the full matrix.
    for dead in DEAD_PCTS {
        for (name, live) in [("live", true), ("slots", false)] {
            g.bench_function(format!("{name}_p4_dead{dead}"), |b| {
                b.iter(|| measure_steal(live, 4, dead, 10_000));
            });
        }
    }
    g.finish();
}

fn speedup(ms: &[StealMeasurement], thieves: usize, dead_pct: u32) -> f64 {
    let at = |sampling: &str| {
        ms.iter()
            .find(|m| m.sampling == sampling && m.thieves == thieves && m.dead_pct == dead_pct)
            .map(|m| m.steal_throughput())
    };
    match (at("live"), at("slots")) {
        (Some(l), Some(s)) => l / s.max(1e-9),
        _ => 0.0,
    }
}

fn emit_json(smoke: bool) {
    let attempts_per_thief: u64 = if smoke { 25_000 } else { 200_000 };
    let mut ms = Vec::new();
    for &p in &THIEVES {
        for &dead in &DEAD_PCTS {
            for live in [true, false] {
                ms.push(measure_steal(live, p, dead, attempts_per_thief));
            }
        }
    }
    // CARGO_MANIFEST_DIR is crates/bench; the JSON lands at the repo root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_steal.json");
    let mode = if smoke { "smoke" } else { "full" };
    write_bench_steal_json(&path, mode, &ms).expect("write BENCH_steal.json");

    for m in &ms {
        println!(
            "steal_path {}_p{}_dead{}: {:.0} steals/s (hit rate {:.2})",
            m.sampling,
            m.thieves,
            m.dead_pct,
            m.steal_throughput(),
            m.hit_rate()
        );
    }
    for &dead in &DEAD_PCTS {
        println!(
            "steal_path speedup live/slots dead{dead}: p1 {:.2}x, p4 {:.2}x, p8 {:.2}x",
            speedup(&ms, 1, dead),
            speedup(&ms, 4, dead),
            speedup(&ms, 8, dead),
        );
    }
    println!("steal_path wrote {}", path.display());

    // The acceptance gate: with half the slots dead, live-set sampling
    // must beat the slot-array baseline ≥1.5x at P=4. The smoke run (CI)
    // only insists on parity — short runs are too noisy for the full bar.
    let x = speedup(&ms, 4, 50);
    let floor = if smoke { 1.0 } else { 1.5 };
    assert!(
        x >= floor,
        "live-set sampling speedup {x:.2}x at p4/dead50 below the {floor:.1}x floor"
    );
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_steal_path(&mut c);
    let smoke = std::env::args().any(|a| a == "--test" || a == "--quick");
    emit_json(smoke);
}
