//! End-to-end latency hiding: a small Figure 11 instance under Criterion,
//! comparing Hide and Block modes at fixed worker count.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lhws_bench::{fig11_checksum, run_fig11, Fig11Params};
use lhws_core::LatencyMode;

fn bench_latency_hiding(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_small");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));

    let params = Fig11Params {
        n: 64,
        delta: Duration::from_millis(5),
        fib_n: 18,
    };
    let expect = fig11_checksum(params);
    let p = 4;

    g.bench_function("lhws_hide", |b| {
        b.iter(|| {
            let (t, sum) = run_fig11(params, p, LatencyMode::Hide);
            assert_eq!(sum, expect);
            t
        });
    });
    g.bench_function("ws_block", |b| {
        b.iter(|| {
            let (t, sum) = run_fig11(params, p, LatencyMode::Block);
            assert_eq!(sum, expect);
            t
        });
    });
    g.finish();
}

criterion_group!(benches, bench_latency_hiding);
criterion_main!(benches);
