//! Simulator throughput: rounds per second executing Figure 3's pseudocode
//! over the paper's workload families.

use criterion::{criterion_group, criterion_main, Criterion};
use lhws_dag::gen::{fib, map_reduce, server};
use lhws_sim::{BaselineSim, LhwsSim, SimConfig};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);

    let mr = map_reduce(256, 100, 16, 2);
    g.bench_function("lhws_map_reduce_256_p8", |b| {
        b.iter(|| {
            LhwsSim::new(&mr.dag, SimConfig::new(8).seed(1))
                .run()
                .rounds
        });
    });
    g.bench_function("ws_map_reduce_256_p8", |b| {
        b.iter(|| BaselineSim::new(&mr.dag, 8, 1).run().rounds);
    });

    let sv = server(100, 50, 16, 2);
    g.bench_function("lhws_server_100_p8", |b| {
        b.iter(|| {
            LhwsSim::new(&sv.dag, SimConfig::new(8).seed(1))
                .run()
                .rounds
        });
    });

    let fb = fib(16, 5);
    g.bench_function("lhws_fib16_p8", |b| {
        b.iter(|| {
            LhwsSim::new(&fb.dag, SimConfig::new(8).seed(1))
                .run()
                .rounds
        });
    });

    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
