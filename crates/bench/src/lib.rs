//! Shared machinery for the benchmark harness binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md §3 for the index); the
//! helpers here provide the map-reduce workload used by Figure 11, simple
//! flag parsing (no CLI dependency), and plain-text table output.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws_core::{
    join_all, par_map_reduce, simulate_latency, Config, LatencyMode, Runtime, TimerKind,
};
use lhws_deque::{DequeKind, Registry, Steal, WorkerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sequential naive Fibonacci — the paper's per-leaf computation
/// (`fib(30)` in the original evaluation).
pub fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// Parameters of the Figure 11 benchmark: map-reduce over `n` remote
/// values, each incurring `delta` of latency then computing `fib(fib_n)`,
/// summed modulo a large constant.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Params {
    /// Number of remote values (the paper: 5000). Equals the suspension
    /// width.
    pub n: u64,
    /// Simulated latency per fetch.
    pub delta: Duration,
    /// Fibonacci index computed per element (the paper: 30).
    pub fib_n: u64,
}

/// The paper's "large constant" modulus for the running sum.
pub const MODULUS: u64 = 1_000_000_007;

/// Runs the Figure 11 benchmark once on a fresh runtime and returns the
/// wall-clock time and the checksum.
pub fn run_fig11(params: Fig11Params, workers: usize, mode: LatencyMode) -> (Duration, u64) {
    let rt = Runtime::new(Config::default().workers(workers).mode(mode)).unwrap();
    let delta = params.delta;
    let fib_n = params.fib_n;
    let start = Instant::now();
    let sum = rt.block_on(async move {
        par_map_reduce(
            0,
            params.n,
            move |_i| async move {
                // The paper's benchmark "simulates a latency of δ ms by
                // sleeping for δ ms and then immediately returning 30".
                simulate_latency(delta).await;
                fib(fib_n) % MODULUS
            },
            |a, b| (a + b) % MODULUS,
            0,
        )
        .await
    });
    (start.elapsed(), sum)
}

/// Expected checksum for [`run_fig11`] (for validating harness runs).
pub fn fig11_checksum(params: Fig11Params) -> u64 {
    let per = fib(params.fib_n) % MODULUS;
    (0..params.n).fold(0u64, |acc, _| (acc + per) % MODULUS)
}

/// Minimal flag parser: `--name value` pairs and bare subcommands.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Args {
        let mut out = Args::default();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        out.pairs.push((name.to_string(), it.next().unwrap()));
                    }
                    _ => out.flags.push(name.to_string()),
                }
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// Value of `--name`, parsed, or the default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// True if `--name` appeared as a bare flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw string value of `--name`, when it was given one.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Formats a speedup ×100 value as e.g. "12.34".
pub fn fmt_x100(v: u64) -> String {
    format!("{}.{:02}", v / 100, v % 100)
}

/// Standard worker counts for a host-limited sweep: 1, 2, 4, ... up to the
/// available parallelism.
pub fn host_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut ps = vec![1usize];
    let mut p = 2;
    while p < max {
        ps.push(p);
        p *= 2;
    }
    if *ps.last().unwrap() != max {
        ps.push(max);
    }
    ps
}

// ---------------------------------------------------------------------
// Resume-path benchmark (suspension-register/resume throughput).
// ---------------------------------------------------------------------

/// One measured configuration of the resume-path benchmark: `suspensions`
/// register+resume round-trips through the given timer at `workers`
/// workers, taking `elapsed` of wall clock in total.
#[derive(Debug, Clone)]
pub struct ResumeMeasurement {
    /// Timer ablation point (`"wheel"` or `"heap"`).
    pub timer: &'static str,
    /// Worker-thread count.
    pub workers: usize,
    /// Total register+resume pairs driven through the timer.
    pub suspensions: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl ResumeMeasurement {
    /// Register+resume pairs per second.
    pub fn throughput(&self) -> f64 {
        self.suspensions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Display name of a [`TimerKind`] in benchmark output.
pub fn timer_name(kind: TimerKind) -> &'static str {
    match kind {
        TimerKind::Wheel => "wheel",
        TimerKind::Heap => "heap",
    }
}

/// Builds a runtime configured for resume-path measurements.
pub fn resume_rt(kind: TimerKind, workers: usize) -> Runtime {
    Runtime::new(Config::default().workers(workers).timer_kind(kind).seed(7)).unwrap()
}

/// Drives one wave of `tasks` suspensions, each expiring `horizon` after
/// its first poll: every task registers with the timer, deadlines land
/// densely across the spawn window, and the wave completes when every
/// resumed task has run. This is the suspension/resume hot path end to
/// end — register, expire, batch-deliver, drain, reinject. (`horizon` is
/// per-task, not a common absolute deadline: an absolute deadline in the
/// past would complete without ever touching the timer.)
pub fn resume_wave(rt: &Runtime, tasks: u64, horizon: Duration) {
    rt.block_on(async move {
        let hs: Vec<_> = (0..tasks)
            .map(|_| {
                lhws_core::spawn(async move {
                    simulate_latency(horizon).await;
                })
            })
            .collect();
        join_all(hs).await;
    });
}

/// Measures `rounds` waves of `tasks` suspensions on a fresh runtime and
/// returns the aggregate measurement. Panics if the runtime's metrics
/// disagree with the requested suspension count (a lost or duplicated
/// resume would corrupt the benchmark silently otherwise).
pub fn measure_resume(
    kind: TimerKind,
    workers: usize,
    tasks: u64,
    rounds: u64,
    horizon: Duration,
) -> ResumeMeasurement {
    let rt = resume_rt(kind, workers);
    resume_wave(&rt, tasks.min(512), horizon); // warm up workers and timer
    let before = rt.metrics();
    let t = Instant::now();
    for _ in 0..rounds {
        resume_wave(&rt, tasks, horizon);
    }
    let elapsed = t.elapsed();
    let d = rt.metrics().since(&before);
    assert_eq!(d.suspensions, tasks * rounds, "every task registered once");
    assert_eq!(d.resumes, tasks * rounds, "every registration resumed once");
    ResumeMeasurement {
        timer: timer_name(kind),
        workers,
        suspensions: tasks * rounds,
        elapsed,
    }
}

/// Writes resume-path measurements as JSON (hand-rolled — the workspace
/// builds offline, without serde). Includes the wheel/heap throughput
/// ratio per worker count, which is the headline number: the wheel must
/// be ≥2x at P≥8.
pub fn write_bench_resume_json(
    path: &std::path::Path,
    mode: &str,
    measurements: &[ResumeMeasurement],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"resume_path\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    ));
    out.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"timer\": \"{}\", \"workers\": {}, \"suspensions\": {}, \
             \"elapsed_ns\": {}, \"throughput_per_sec\": {:.1}}}{}\n",
            m.timer,
            m.workers,
            m.suspensions,
            m.elapsed.as_nanos(),
            m.throughput(),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_wheel_over_heap\": [\n");
    let mut pairs: Vec<(usize, f64)> = Vec::new();
    for w in measurements.iter().filter(|m| m.timer == "wheel") {
        if let Some(h) = measurements
            .iter()
            .find(|m| m.timer == "heap" && m.workers == w.workers)
        {
            pairs.push((w.workers, w.throughput() / h.throughput().max(1e-9)));
        }
    }
    for (i, (p, x)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {p}, \"speedup\": {x:.2}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// One measured configuration of the steal-path benchmark: `thieves`
/// threads each draw victims from a registry in which `dead_pct`% of the
/// allocated slots are dead (released and drained), using either the
/// live-set index (`sampling == "live"`) or the paper's allocated-prefix
/// slot array (`sampling == "slots"`).
#[derive(Debug, Clone)]
pub struct StealMeasurement {
    /// Victim sampling strategy: `"live"` (live-set index) or `"slots"`
    /// (uniform over the allocated slot prefix, dead slots included).
    pub sampling: &'static str,
    /// Thief-thread count.
    pub thieves: usize,
    /// Percentage of allocated slots that are dead.
    pub dead_pct: u32,
    /// Total victim draws across all thieves.
    pub attempts: u64,
    /// Draws that stole an item.
    pub hits: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl StealMeasurement {
    /// Successful steals per second — the benchmark's headline number.
    pub fn steal_throughput(&self) -> f64 {
        self.hits as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of draws that found work.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.attempts as f64).max(1.0)
    }
}

/// Shard count for the steal-benchmark registry — stands in for the
/// worker count of a medium-sized runtime.
const STEAL_SHARDS: usize = 8;

/// Builds a registry with `deques` allocated slots of which `dead_pct`%
/// are dead — released and empty, exactly what a thief finds after a
/// suspension burst freed them — and the rest live with `items_per_live`
/// stealable items each. The dead slots are spread evenly through the
/// allocated prefix (Bresenham), so baseline draws hit them uniformly.
/// The worker handles are returned too: dropping one would sever its
/// stealer.
pub fn steal_registry(
    deques: usize,
    dead_pct: u32,
    items_per_live: usize,
) -> (Arc<Registry<u64>>, Vec<WorkerHandle<u64>>) {
    let reg = Registry::with_capacity_and_shards(deques, STEAL_SHARDS);
    let mut handles = Vec::with_capacity(deques);
    let mut ids = Vec::with_capacity(deques);
    for i in 0..deques {
        let (w, s) = WorkerHandle::new(DequeKind::ChaseLev);
        ids.push(reg.register(i % STEAL_SHARDS, s).expect("sized to fit"));
        handles.push(w);
    }
    let d = dead_pct as usize;
    for (i, (w, &id)) in handles.iter().zip(&ids).enumerate() {
        if (i + 1) * d / 100 > i * d / 100 {
            reg.release(id);
        } else {
            for item in 0..items_per_live {
                w.push_bottom(item as u64);
            }
        }
    }
    (Arc::new(reg), handles)
}

/// Runs `thieves` threads, each making `attempts_per_thief` victim draws
/// against an 8192-slot registry, and counts successful steals. Live
/// deques are preloaded with more items than the run can take, so they
/// never run dry mid-measurement: every miss is a sampling miss (dead
/// slot or lost race), not an exhausted victim.
pub fn measure_steal(
    sampling_live: bool,
    thieves: usize,
    dead_pct: u32,
    attempts_per_thief: u64,
) -> StealMeasurement {
    const DEQUES: usize = 8192;
    let attempts = attempts_per_thief * thieves as u64;
    let live = DEQUES - DEQUES * dead_pct as usize / 100;
    let items_per_live = attempts as usize / live.max(1) + 64;
    let (reg, handles) = steal_registry(DEQUES, dead_pct, items_per_live);

    let t = Instant::now();
    let hits: u64 = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..thieves)
            .map(|tid| {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x57EA_1000 + tid as u64);
                    let mut hits = 0u64;
                    // Consecutive-miss count, capped at the worker's probe
                    // burst length.
                    let mut misses = 0u32;
                    for _ in 0..attempts_per_thief {
                        let drawn = if sampling_live {
                            reg.random_live_id(rng.gen())
                        } else {
                            reg.random_id(rng.gen())
                        };
                        let mut hit = false;
                        if let Some(id) = drawn {
                            // Same bounded-retry discipline as the worker
                            // loop's `steal_from`.
                            for _ in 0..4 {
                                match reg.steal(id) {
                                    Steal::Success(_) => {
                                        hits += 1;
                                        hit = true;
                                        break;
                                    }
                                    Steal::Empty => break,
                                    Steal::Retry => std::hint::spin_loop(),
                                }
                            }
                        }
                        // The worker's probe loop backs off exponentially
                        // after each failed probe (`1 << probe` spins); a
                        // draw that lands on a dead slot costs the thief
                        // that stall, not just the probe itself.
                        if hit {
                            misses = 0;
                        } else {
                            for _ in 0..(1u32 << misses) {
                                std::hint::spin_loop();
                            }
                            misses = (misses + 1).min(3);
                        }
                    }
                    hits
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|h| h.join().expect("thief thread panicked"))
            .sum()
    });
    let elapsed = t.elapsed();
    drop(handles);
    StealMeasurement {
        sampling: if sampling_live { "live" } else { "slots" },
        thieves,
        dead_pct,
        attempts,
        hits,
        elapsed,
    }
}

/// Writes steal-path measurements as JSON (hand-rolled — the workspace
/// builds offline, without serde). Includes the live/slots throughput
/// ratio per (thieves, dead_pct) point; the acceptance number is ≥1.5x
/// at 4 thieves with ≥50% dead slots.
pub fn write_bench_steal_json(
    path: &std::path::Path,
    mode: &str,
    measurements: &[StealMeasurement],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"steal_path\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    ));
    out.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sampling\": \"{}\", \"thieves\": {}, \"dead_pct\": {}, \
             \"attempts\": {}, \"hits\": {}, \"hit_rate\": {:.4}, \
             \"elapsed_ns\": {}, \"steals_per_sec\": {:.1}}}{}\n",
            m.sampling,
            m.thieves,
            m.dead_pct,
            m.attempts,
            m.hits,
            m.hit_rate(),
            m.elapsed.as_nanos(),
            m.steal_throughput(),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_live_over_slots\": [\n");
    let mut pairs: Vec<(usize, u32, f64)> = Vec::new();
    for l in measurements.iter().filter(|m| m.sampling == "live") {
        if let Some(s) = measurements
            .iter()
            .find(|m| m.sampling == "slots" && m.thieves == l.thieves && m.dead_pct == l.dead_pct)
        {
            pairs.push((
                l.thieves,
                l.dead_pct,
                l.steal_throughput() / s.steal_throughput().max(1e-9),
            ));
        }
    }
    for (i, (p, d, x)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"thieves\": {p}, \"dead_pct\": {d}, \"speedup\": {x:.2}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(path, out)
}

// ---------------------------------------------------------------------
// Steal-policy benchmark (steal-half batching × victim affinity).
// ---------------------------------------------------------------------

/// One measured configuration of the steal-policy benchmark: `thieves`
/// threads drain a pool of live deques preloaded with `depth` items each,
/// stealing single items (`batch_limit == 1`, the PR 5 baseline path) or
/// steal-half batches capped at `batch_limit`, with or without victim
/// affinity (retry the last successful victim before drawing fresh).
#[derive(Debug, Clone)]
pub struct StealPolicyMeasurement {
    /// Victim selection: `"uniform"` (fresh live draw per probe) or
    /// `"affinity"` (last successful victim first).
    pub policy: &'static str,
    /// Steal-half cap; `1` uses the plain single-steal entry point.
    pub batch_limit: usize,
    /// Thief-thread count.
    pub thieves: usize,
    /// Items preloaded per victim deque.
    pub depth: usize,
    /// Total tasks drained across all rounds.
    pub tasks: u64,
    /// Victim acquisitions (cached retries + fresh draws).
    pub draws: u64,
    /// Drain rounds run (each drains the full pool once).
    pub rounds: u64,
    /// Total wall-clock time (drain phases only; registry rebuilds are
    /// excluded).
    pub elapsed: Duration,
    /// The fastest single round's drain time.
    pub best_round: Duration,
}

impl StealPolicyMeasurement {
    /// Mean tasks acquired per second over all rounds.
    pub fn task_throughput(&self) -> f64 {
        self.tasks as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Best-round tasks per second — the headline number. The min-time
    /// estimator is robust to scheduler interference (CI hosts can
    /// report a single hardware slot, so a round occasionally loses
    /// whole quanta to unrelated load); the mean is reported alongside.
    pub fn peak_throughput(&self) -> f64 {
        let per_round = self.tasks as f64 / (self.rounds as f64).max(1.0);
        per_round / self.best_round.as_secs_f64().max(1e-9)
    }

    /// Mean tasks per successful victim acquisition (≥ 1 under batching).
    pub fn tasks_per_draw(&self) -> f64 {
        self.tasks as f64 / (self.draws as f64).max(1.0)
    }
}

/// Live deques in the steal-policy pool (8 per shard): enough spread that
/// thieves collide on victims at realistic rates, small enough that a
/// drain actually finishes.
const POLICY_DEQUES: usize = 64;

/// Measures task-acquisition throughput for one steal-policy cell:
/// rounds of building a 64-deque pool (`POLICY_DEQUES`) at `depth` items
/// each, then timing `thieves` threads draining it completely. Rounds
/// repeat until ≈`target_tasks` tasks have been drained (at most 256
/// rounds, so shallow shapes stay bounded).
pub fn measure_steal_policy(
    affinity: bool,
    batch_limit: usize,
    thieves: usize,
    depth: usize,
    target_tasks: u64,
) -> StealPolicyMeasurement {
    use std::sync::atomic::{AtomicU64, Ordering};

    let per_round = (POLICY_DEQUES * depth) as u64;
    // At least 4 rounds so the best-round (min-time) estimator has
    // samples to pick from even on the deep shapes.
    let rounds = (target_tasks.div_ceil(per_round)).clamp(4, 256);
    let mut tasks = 0u64;
    let mut draws = 0u64;
    let mut elapsed = Duration::ZERO;
    let mut best_round = Duration::MAX;

    for round in 0..rounds {
        let (reg, handles) = steal_registry(POLICY_DEQUES, 0, depth);
        let remaining = AtomicU64::new(per_round);
        let t = Instant::now();
        let round_draws: u64 = std::thread::scope(|scope| {
            let threads: Vec<_> = (0..thieves)
                .map(|tid| {
                    let reg = Arc::clone(&reg);
                    let remaining = &remaining;
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0x1DEA_0000 + round * 131 + tid as u64);
                        let mut draws = 0u64;
                        let mut last = None;
                        let mut out: Vec<u64> = Vec::with_capacity(batch_limit);
                        let mut misses = 0u32;
                        while remaining.load(Ordering::Relaxed) > 0 {
                            // Victim: the cached last success (affinity) or
                            // a fresh uniform draw over the live set.
                            let id = match last {
                                Some(id) if affinity => id,
                                _ => match reg.random_live_id(rng.gen()) {
                                    Some(id) => id,
                                    None => break,
                                },
                            };
                            draws += 1;
                            let got = if batch_limit <= 1 {
                                // The PR 5 baseline: the dedicated
                                // single-steal entry point.
                                match reg.steal(id) {
                                    Steal::Success(_) => 1,
                                    _ => 0,
                                }
                            } else {
                                out.clear();
                                match reg.steal_batch(id, batch_limit, &mut out) {
                                    Steal::Success(n) => n as u64,
                                    _ => 0,
                                }
                            };
                            if got > 0 {
                                remaining.fetch_sub(got, Ordering::Relaxed);
                                last = Some(id);
                                misses = 0;
                            } else {
                                last = None;
                                // Brief spin backoff like the worker's
                                // probe loop, then yield the OS thread:
                                // on an oversubscribed host a spinning
                                // thief would otherwise burn its whole
                                // quantum starving the thieves that
                                // still have work to claim.
                                if misses < 3 {
                                    for _ in 0..(1u32 << misses) {
                                        std::hint::spin_loop();
                                    }
                                } else {
                                    std::thread::yield_now();
                                }
                                misses = (misses + 1).min(3);
                            }
                        }
                        draws
                    })
                })
                .collect();
            threads
                .into_iter()
                .map(|h| h.join().expect("thief thread panicked"))
                .sum()
        });
        let dt = t.elapsed();
        elapsed += dt;
        best_round = best_round.min(dt);
        tasks += per_round;
        draws += round_draws;
        drop(handles);
    }

    StealPolicyMeasurement {
        policy: if affinity { "affinity" } else { "uniform" },
        batch_limit,
        thieves,
        depth,
        tasks,
        draws,
        rounds,
        elapsed,
        best_round,
    }
}

/// Writes steal-policy measurements as JSON (hand-rolled — the workspace
/// builds offline, without serde). Includes the batched/single throughput
/// ratio per (policy, thieves, depth) point; the acceptance number is
/// ≥1.3x for steal-half on the deep-victim shape at ≥4 thieves.
pub fn write_bench_steal_policy_json(
    path: &std::path::Path,
    mode: &str,
    measurements: &[StealPolicyMeasurement],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"steal_policy\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    ));
    out.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"batch_limit\": {}, \"thieves\": {}, \
             \"depth\": {}, \"tasks\": {}, \"draws\": {}, \"tasks_per_draw\": {:.3}, \
             \"rounds\": {}, \"elapsed_ns\": {}, \"tasks_per_sec\": {:.1}, \
             \"peak_tasks_per_sec\": {:.1}}}{}\n",
            m.policy,
            m.batch_limit,
            m.thieves,
            m.depth,
            m.tasks,
            m.draws,
            m.tasks_per_draw(),
            m.rounds,
            m.elapsed.as_nanos(),
            m.task_throughput(),
            m.peak_throughput(),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_batch_over_single\": [\n");
    let mut pairs: Vec<(&'static str, usize, usize, usize, f64)> = Vec::new();
    for b in measurements.iter().filter(|m| m.batch_limit > 1) {
        if let Some(s) = measurements.iter().find(|m| {
            m.batch_limit == 1
                && m.policy == b.policy
                && m.thieves == b.thieves
                && m.depth == b.depth
        }) {
            pairs.push((
                b.policy,
                b.batch_limit,
                b.thieves,
                b.depth,
                // Speedups compare the robust (best-round) estimates.
                b.peak_throughput() / s.peak_throughput().max(1e-9),
            ));
        }
    }
    for (i, (pol, l, p, d, x)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{pol}\", \"batch_limit\": {l}, \"thieves\": {p}, \
             \"depth\": {d}, \"speedup\": {x:.2}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Re-exported for harness binaries.
pub use lhws_core as core_rt;
pub use lhws_dag as dag;
pub use lhws_sim as sim;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_values() {
        assert_eq!(fib(10), 55);
        assert_eq!(fib(20), 6765);
    }

    #[test]
    fn checksum_matches_run() {
        let params = Fig11Params {
            n: 8,
            delta: Duration::from_millis(1),
            fib_n: 12,
        };
        let (_, sum) = run_fig11(params, 2, LatencyMode::Hide);
        assert_eq!(sum, fig11_checksum(params));
        let (_, sum_b) = run_fig11(params, 2, LatencyMode::Block);
        assert_eq!(sum_b, fig11_checksum(params));
    }

    #[test]
    fn host_sweep_shape() {
        let ps = host_sweep();
        assert_eq!(ps[0], 1);
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fmt_x100_format() {
        assert_eq!(fmt_x100(1234), "12.34");
        assert_eq!(fmt_x100(100), "1.00");
        assert_eq!(fmt_x100(5), "0.05");
    }
}
