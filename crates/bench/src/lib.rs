//! Shared machinery for the benchmark harness binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md §3 for the index); the
//! helpers here provide the map-reduce workload used by Figure 11, simple
//! flag parsing (no CLI dependency), and plain-text table output.

use std::time::{Duration, Instant};

use lhws_core::{
    join_all, par_map_reduce, simulate_latency, Config, LatencyMode, Runtime, TimerKind,
};

/// Sequential naive Fibonacci — the paper's per-leaf computation
/// (`fib(30)` in the original evaluation).
pub fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// Parameters of the Figure 11 benchmark: map-reduce over `n` remote
/// values, each incurring `delta` of latency then computing `fib(fib_n)`,
/// summed modulo a large constant.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Params {
    /// Number of remote values (the paper: 5000). Equals the suspension
    /// width.
    pub n: u64,
    /// Simulated latency per fetch.
    pub delta: Duration,
    /// Fibonacci index computed per element (the paper: 30).
    pub fib_n: u64,
}

/// The paper's "large constant" modulus for the running sum.
pub const MODULUS: u64 = 1_000_000_007;

/// Runs the Figure 11 benchmark once on a fresh runtime and returns the
/// wall-clock time and the checksum.
pub fn run_fig11(params: Fig11Params, workers: usize, mode: LatencyMode) -> (Duration, u64) {
    let rt = Runtime::new(Config::default().workers(workers).mode(mode)).unwrap();
    let delta = params.delta;
    let fib_n = params.fib_n;
    let start = Instant::now();
    let sum = rt.block_on(async move {
        par_map_reduce(
            0,
            params.n,
            move |_i| async move {
                // The paper's benchmark "simulates a latency of δ ms by
                // sleeping for δ ms and then immediately returning 30".
                simulate_latency(delta).await;
                fib(fib_n) % MODULUS
            },
            |a, b| (a + b) % MODULUS,
            0,
        )
        .await
    });
    (start.elapsed(), sum)
}

/// Expected checksum for [`run_fig11`] (for validating harness runs).
pub fn fig11_checksum(params: Fig11Params) -> u64 {
    let per = fib(params.fib_n) % MODULUS;
    (0..params.n).fold(0u64, |acc, _| (acc + per) % MODULUS)
}

/// Minimal flag parser: `--name value` pairs and bare subcommands.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Args {
        let mut out = Args::default();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        out.pairs.push((name.to_string(), it.next().unwrap()));
                    }
                    _ => out.flags.push(name.to_string()),
                }
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// Value of `--name`, parsed, or the default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// True if `--name` appeared as a bare flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw string value of `--name`, when it was given one.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Formats a speedup ×100 value as e.g. "12.34".
pub fn fmt_x100(v: u64) -> String {
    format!("{}.{:02}", v / 100, v % 100)
}

/// Standard worker counts for a host-limited sweep: 1, 2, 4, ... up to the
/// available parallelism.
pub fn host_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut ps = vec![1usize];
    let mut p = 2;
    while p < max {
        ps.push(p);
        p *= 2;
    }
    if *ps.last().unwrap() != max {
        ps.push(max);
    }
    ps
}

// ---------------------------------------------------------------------
// Resume-path benchmark (suspension-register/resume throughput).
// ---------------------------------------------------------------------

/// One measured configuration of the resume-path benchmark: `suspensions`
/// register+resume round-trips through the given timer at `workers`
/// workers, taking `elapsed` of wall clock in total.
#[derive(Debug, Clone)]
pub struct ResumeMeasurement {
    /// Timer ablation point (`"wheel"` or `"heap"`).
    pub timer: &'static str,
    /// Worker-thread count.
    pub workers: usize,
    /// Total register+resume pairs driven through the timer.
    pub suspensions: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl ResumeMeasurement {
    /// Register+resume pairs per second.
    pub fn throughput(&self) -> f64 {
        self.suspensions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Display name of a [`TimerKind`] in benchmark output.
pub fn timer_name(kind: TimerKind) -> &'static str {
    match kind {
        TimerKind::Wheel => "wheel",
        TimerKind::Heap => "heap",
    }
}

/// Builds a runtime configured for resume-path measurements.
pub fn resume_rt(kind: TimerKind, workers: usize) -> Runtime {
    Runtime::new(Config::default().workers(workers).timer_kind(kind).seed(7)).unwrap()
}

/// Drives one wave of `tasks` suspensions, each expiring `horizon` after
/// its first poll: every task registers with the timer, deadlines land
/// densely across the spawn window, and the wave completes when every
/// resumed task has run. This is the suspension/resume hot path end to
/// end — register, expire, batch-deliver, drain, reinject. (`horizon` is
/// per-task, not a common absolute deadline: an absolute deadline in the
/// past would complete without ever touching the timer.)
pub fn resume_wave(rt: &Runtime, tasks: u64, horizon: Duration) {
    rt.block_on(async move {
        let hs: Vec<_> = (0..tasks)
            .map(|_| {
                lhws_core::spawn(async move {
                    simulate_latency(horizon).await;
                })
            })
            .collect();
        join_all(hs).await;
    });
}

/// Measures `rounds` waves of `tasks` suspensions on a fresh runtime and
/// returns the aggregate measurement. Panics if the runtime's metrics
/// disagree with the requested suspension count (a lost or duplicated
/// resume would corrupt the benchmark silently otherwise).
pub fn measure_resume(
    kind: TimerKind,
    workers: usize,
    tasks: u64,
    rounds: u64,
    horizon: Duration,
) -> ResumeMeasurement {
    let rt = resume_rt(kind, workers);
    resume_wave(&rt, tasks.min(512), horizon); // warm up workers and timer
    let before = rt.metrics();
    let t = Instant::now();
    for _ in 0..rounds {
        resume_wave(&rt, tasks, horizon);
    }
    let elapsed = t.elapsed();
    let d = rt.metrics().since(&before);
    assert_eq!(d.suspensions, tasks * rounds, "every task registered once");
    assert_eq!(d.resumes, tasks * rounds, "every registration resumed once");
    ResumeMeasurement {
        timer: timer_name(kind),
        workers,
        suspensions: tasks * rounds,
        elapsed,
    }
}

/// Writes resume-path measurements as JSON (hand-rolled — the workspace
/// builds offline, without serde). Includes the wheel/heap throughput
/// ratio per worker count, which is the headline number: the wheel must
/// be ≥2x at P≥8.
pub fn write_bench_resume_json(
    path: &std::path::Path,
    mode: &str,
    measurements: &[ResumeMeasurement],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"resume_path\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    ));
    out.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"timer\": \"{}\", \"workers\": {}, \"suspensions\": {}, \
             \"elapsed_ns\": {}, \"throughput_per_sec\": {:.1}}}{}\n",
            m.timer,
            m.workers,
            m.suspensions,
            m.elapsed.as_nanos(),
            m.throughput(),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_wheel_over_heap\": [\n");
    let mut pairs: Vec<(usize, f64)> = Vec::new();
    for w in measurements.iter().filter(|m| m.timer == "wheel") {
        if let Some(h) = measurements
            .iter()
            .find(|m| m.timer == "heap" && m.workers == w.workers)
        {
            pairs.push((w.workers, w.throughput() / h.throughput().max(1e-9)));
        }
    }
    for (i, (p, x)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {p}, \"speedup\": {x:.2}}}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Re-exported for harness binaries.
pub use lhws_core as core_rt;
pub use lhws_dag as dag;
pub use lhws_sim as sim;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_values() {
        assert_eq!(fib(10), 55);
        assert_eq!(fib(20), 6765);
    }

    #[test]
    fn checksum_matches_run() {
        let params = Fig11Params {
            n: 8,
            delta: Duration::from_millis(1),
            fib_n: 12,
        };
        let (_, sum) = run_fig11(params, 2, LatencyMode::Hide);
        assert_eq!(sum, fig11_checksum(params));
        let (_, sum_b) = run_fig11(params, 2, LatencyMode::Block);
        assert_eq!(sum_b, fig11_checksum(params));
    }

    #[test]
    fn host_sweep_shape() {
        let ps = host_sweep();
        assert_eq!(ps[0], 1);
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fmt_x100_format() {
        assert_eq!(fmt_x100(1234), "12.34");
        assert_eq!(fmt_x100(100), "1.00");
        assert_eq!(fmt_x100(5), "0.05");
    }
}
