//! Observer overhead on the suspension/resume hot path: what does live
//! observability cost the scheduler it is observing?
//!
//! ```text
//! cargo run -p lhws-bench --release --bin obs_overhead -- \
//!     [--workers P] [--tasks N] [--rounds R] [--quick] [--out FILE]
//! ```
//!
//! Three configurations of the same `resume_path` wave workload:
//!
//! 1. `trace_off`  — tracing disabled (the zero-cost baseline),
//! 2. `trace_on`   — per-worker rings recording, nobody reading,
//! 3. `trace_live` — rings recording *and* an incremental
//!    [`TraceReader`](lhws_core::TraceReader) polled continuously from
//!    another thread, the way a live `/metrics`-plus-stats observer
//!    would.
//!
//! The headline number is `live_over_trace_on`: the *marginal* cost of
//! attaching a live reader to an already-tracing runtime. The reader is
//! cursor-based and lock-splits against producers (it takes the collect
//! mutex, producers only touch their own ring tails), so this should be
//! close to 1.00. Results land in `BENCH_obs.json`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws_bench::{resume_wave, Args};
use lhws_core::Runtime;

const TRACE_CAPACITY: usize = 1 << 16;
const HORIZON: Duration = Duration::from_micros(500);
/// The live reader's cadence: the obs server's stats fold runs at
/// millisecond granularity, so that is what "observer attached" costs.
const POLL_INTERVAL: Duration = Duration::from_millis(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Off,
    On,
    Live,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Off => "trace_off",
            Mode::On => "trace_on",
            Mode::Live => "trace_live",
        }
    }
}

#[derive(Debug)]
struct Measurement {
    mode: Mode,
    suspensions: u64,
    elapsed: Duration,
    /// Events the live reader consumed (zero for the other modes).
    events_read: u64,
}

impl Measurement {
    fn throughput(&self) -> f64 {
        self.suspensions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn build_rt(workers: usize, mode: Mode) -> Runtime {
    let mut b = Runtime::builder().workers(workers).seed(7);
    if mode != Mode::Off {
        b = b.trace_capacity(TRACE_CAPACITY);
    }
    b.build().unwrap()
}

fn measure(workers: usize, tasks: u64, rounds: u64, mode: Mode) -> Measurement {
    let rt = build_rt(workers, mode);
    resume_wave(&rt, tasks.min(512), HORIZON); // warm up workers and timer

    // The live observer: a reader polled hot from a separate thread for
    // the whole measured region, exactly like the obs server's stats
    // fold. Its polls also drive ring reclamation, so the producers
    // never see a full ring.
    let stop = Arc::new(AtomicBool::new(false));
    let poller = (mode == Mode::Live).then(|| {
        let mut reader = rt.observe().trace_reader().expect("tracing enabled");
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut events = 0u64;
            while !stop.load(Ordering::Acquire) {
                events += reader.poll_events().events.len() as u64;
                std::thread::sleep(POLL_INTERVAL);
            }
            events += reader.poll_events().events.len() as u64;
            events
        })
    });

    let before = rt.metrics();
    let t = Instant::now();
    for _ in 0..rounds {
        resume_wave(&rt, tasks, HORIZON);
    }
    let elapsed = t.elapsed();
    let d = rt.metrics().since(&before);
    assert_eq!(d.suspensions, tasks * rounds, "every task registered once");
    assert_eq!(d.resumes, tasks * rounds, "every registration resumed once");

    stop.store(true, Ordering::Release);
    let events_read = poller.map_or(0, |h| h.join().expect("poller panicked"));
    rt.shutdown();
    Measurement {
        mode,
        suspensions: tasks * rounds,
        elapsed,
        events_read,
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let quick = args.flag("quick");
    // Leave one core of headroom for the poller thread by default — on a
    // fully subscribed host the measurement reads as scheduler overhead
    // what is really core contention.
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(4)
        .clamp(1, 4);
    let workers: usize = args.get("workers", default_workers);
    let tasks: u64 = args.get("tasks", if quick { 1_000 } else { 4_000 });
    let rounds: u64 = args.get("rounds", if quick { 3 } else { 10 });
    let reps: usize = args.get("reps", if quick { 1 } else { 3 });

    println!("# observer overhead on the resume path");
    println!("workers={workers} tasks={tasks} rounds={rounds} reps={reps}");
    println!(
        "{:>12}  {:>14}  {:>16}  {:>12}",
        "mode", "elapsed(ms)", "resumes/sec", "events_read"
    );

    // Best-of-reps per mode, interleaved so thermal drift hits all three.
    let mut best: Vec<Option<Measurement>> = vec![None, None, None];
    for _ in 0..reps {
        for (i, mode) in [Mode::Off, Mode::On, Mode::Live].into_iter().enumerate() {
            let m = measure(workers, tasks, rounds, mode);
            if best[i].as_ref().is_none_or(|b| m.elapsed < b.elapsed) {
                best[i] = Some(m);
            }
        }
    }
    let best: Vec<Measurement> = best.into_iter().map(Option::unwrap).collect();
    for m in &best {
        println!(
            "{:>12}  {:>14.1}  {:>16.0}  {:>12}",
            m.mode.label(),
            m.elapsed.as_secs_f64() * 1e3,
            m.throughput(),
            m.events_read
        );
    }

    let trace_on_over_off = best[0].elapsed.as_secs_f64() / best[1].elapsed.as_secs_f64().max(1e-9);
    let live_over_trace_on =
        best[1].elapsed.as_secs_f64() / best[2].elapsed.as_secs_f64().max(1e-9);
    println!(
        "\ntrace_on/trace_off throughput: {:.3}x   trace_live/trace_on: {:.3}x",
        trace_on_over_off, live_over_trace_on
    );
    println!("# trace_live/trace_on ~1.00 means a live reader rides along for free");

    let out = args.value("out").unwrap_or("BENCH_obs.json").to_string();
    let mut json = String::from("{\n  \"bench\": \"obs_overhead\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"workers\": {workers}, \"tasks\": {tasks}, \"rounds\": {rounds}, \"reps\": {reps}}},\n"
    ));
    json.push_str("  \"measurements\": [\n");
    for (i, m) in best.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"suspensions\": {}, \"elapsed_ns\": {}, \
             \"throughput_per_sec\": {:.1}, \"events_read\": {}}}{}\n",
            m.mode.label(),
            m.suspensions,
            m.elapsed.as_nanos(),
            m.throughput(),
            m.events_read,
            if i + 1 < best.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"trace_on_over_off\": {trace_on_over_off:.4},\n  \"live_over_trace_on\": {live_over_trace_on:.4}\n}}\n"
    ));
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("obs_overhead: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
