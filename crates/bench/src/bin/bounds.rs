//! Bound tables: every theorem/lemma of the paper measured empirically.
//!
//! ```text
//! cargo run -p lhws-bench --release --bin bounds -- [greedy|rounds|deques|steals|all]
//! ```
//!
//! * `greedy` — Theorem 1: greedy schedule length ≤ W/P + S.
//! * `rounds` — Lemma 1: LHWS rounds ≤ (4W + R)/P.
//! * `deques` — Lemma 7: max deques per worker ≤ U + 1 (U swept via the
//!   pipeline workload's width).
//! * `steals` — Theorem 2: rounds vs. the O(W/P + S·U·(1 + lg U)) bound,
//!   and steal attempts vs. O(P·S·U·(1 + lg U)).

use lhws_bench::Args;
use lhws_dag::gen::{fib, map_reduce, pipeline, random_sp, server, RandomSpParams};
use lhws_dag::offline::{greedy_bound, greedy_schedule, validate_schedule};
use lhws_dag::{suspension_width, Metrics, WDag};
use lhws_sim::speedup::run_lhws;

fn families() -> Vec<(String, WDag)> {
    vec![
        ("map_reduce(64,d=40)".into(), map_reduce(64, 40, 8, 1).dag),
        (
            "map_reduce(256,d=200)".into(),
            map_reduce(256, 200, 8, 1).dag,
        ),
        ("server(40,d=30)".into(), server(40, 30, 8, 1).dag),
        ("fib(14)".into(), fib(14, 4).dag),
        ("pipeline(8x6,d=25)".into(), pipeline(8, 6, 25, 3).dag),
        (
            "random_sp(seed=3)".into(),
            random_sp(RandomSpParams::default().seed(3).target_leaves(80)).dag,
        ),
    ]
}

fn table_greedy(ps: &[usize]) {
    println!("\n## Theorem 1: greedy schedule length <= W/P + S");
    println!(
        "{:>24}  {:>4}  {:>10}  {:>10}  {:>10}  {:>6}",
        "workload", "P", "W", "S", "length", "bound"
    );
    for (name, dag) in families() {
        let m = Metrics::compute(&dag);
        for &p in ps {
            let s = greedy_schedule(&dag, p);
            validate_schedule(&dag, &s).expect("greedy schedule valid");
            let bound = greedy_bound(&dag, p);
            assert!(s.length <= bound, "{name} P={p} violates Theorem 1");
            println!(
                "{:>24}  {:>4}  {:>10}  {:>10}  {:>10}  {:>6}",
                name, p, m.work, m.span, s.length, bound
            );
        }
    }
}

fn table_rounds(ps: &[usize], seed: u64) {
    println!("\n## Lemma 1: LHWS rounds <= (4W + R)/P   (R = steal attempts)");
    println!(
        "{:>24}  {:>4}  {:>10}  {:>10}  {:>10}  {:>10}",
        "workload", "P", "W", "rounds", "R", "bound"
    );
    for (name, dag) in families() {
        for &p in ps {
            let s = run_lhws(&dag, p, seed);
            let bound = s.lemma1_bound(dag.work());
            assert!(
                s.rounds <= bound + 1,
                "{name} P={p}: rounds {} > bound {bound}",
                s.rounds
            );
            println!(
                "{:>24}  {:>4}  {:>10}  {:>10}  {:>10}  {:>10}",
                name,
                p,
                dag.work(),
                s.rounds,
                s.steal_attempts,
                bound
            );
        }
    }
}

fn table_deques(ps: &[usize], seed: u64) {
    println!("\n## Lemma 7: max allocated deques per worker <= U + 1");
    println!(
        "{:>8}  {:>4}  {:>6}  {:>12}  {:>8}",
        "width", "P", "U", "max deques", "U+1"
    );
    for width in [1u64, 2, 4, 8, 16, 32] {
        let wl = pipeline(width, 4, 30, 2);
        let u = suspension_width(&wl.dag);
        for &p in ps {
            let s = run_lhws(&wl.dag, p, seed);
            assert!(
                s.max_deques_per_worker <= u + 1,
                "width={width} P={p} violates Lemma 7"
            );
            println!(
                "{:>8}  {:>4}  {:>6}  {:>12}  {:>8}",
                width,
                p,
                u,
                s.max_deques_per_worker,
                u + 1
            );
        }
    }
}

fn table_steals(seed: u64) {
    println!("\n## Theorem 2: rounds vs O(W/P + S*U*(1+lgU)); steals vs O(P*S*U*(1+lgU))");
    println!(
        "{:>8}  {:>4}  {:>10}  {:>12}  {:>10}  {:>14}",
        "U", "P", "rounds", "W/P+SUlgU", "steals", "P*S*U*(1+lgU)"
    );
    // Sweep U via map-reduce size at fixed leaf work.
    for n in [4u64, 16, 64, 256] {
        let wl = map_reduce(n, 60, 16, 1);
        let dag = &wl.dag;
        let m = Metrics::compute(dag);
        let u = suspension_width(dag);
        let lg = 64 - u.max(1).leading_zeros() as u64;
        for p in [2usize, 8] {
            let s = run_lhws(dag, p, seed);
            let thm2 = m.work / p as u64 + m.span * u * (1 + lg);
            let steal_bound = p as u64 * m.span * u * (1 + lg);
            println!(
                "{:>8}  {:>4}  {:>10}  {:>12}  {:>10}  {:>14}",
                u, p, s.rounds, thm2, s.steal_attempts, steal_bound
            );
        }
    }
    println!("# (asymptotic bounds shown without constants; shapes should track)");
}

fn lg(u: u64) -> u64 {
    if u <= 1 {
        0
    } else {
        64 - (u - 1).leading_zeros() as u64
    }
}

fn table_enabling(seed: u64) {
    println!("\n## Corollary 1: enabling span S* <= 2*S*(1 + lg U)");
    println!(
        "{:>28}  {:>4}  {:>8}  {:>6}  {:>8}  {:>10}",
        "workload", "P", "S", "U", "S*", "2S(1+lgU)"
    );
    for (name, dag) in families() {
        let m = Metrics::compute(&dag);
        let u = suspension_width(&dag);
        for p in [1usize, 4, 16] {
            let s = run_lhws(&dag, p, seed);
            let bound = (2 * m.span * (1 + lg(u))).max(m.span);
            assert!(
                s.enabling_span <= bound,
                "{name} P={p} violates Corollary 1"
            );
            println!(
                "{:>28}  {:>4}  {:>8}  {:>6}  {:>8}  {:>10}",
                name, p, m.span, u, s.enabling_span, bound
            );
        }
    }
}

fn main() {
    let args = Args::parse();
    let which = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let seed: u64 = args.get("seed", 7);
    let ps = [1usize, 2, 4, 8, 16];

    println!("# Bound tables (SPAA'16 latency-hiding work stealing)");
    match which.as_str() {
        "greedy" => table_greedy(&ps),
        "rounds" => table_rounds(&ps, seed),
        "deques" => table_deques(&ps, seed),
        "steals" => table_steals(seed),
        "enabling" => table_enabling(seed),
        _ => {
            table_greedy(&ps);
            table_rounds(&ps, seed);
            table_deques(&ps, seed);
            table_steals(seed);
            table_enabling(seed);
        }
    }
    println!("\n# all asserted bounds hold");
}
