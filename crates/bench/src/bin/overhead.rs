//! The U = 0 reduction: on computations with no latency, LHWS must match
//! standard work stealing ("without penalizing the computations that don't
//! incur such latency" — paper, §8).
//!
//! Two views:
//!
//! 1. **Simulator** — identical round counts modulo steal randomness, and
//!    exactly one deque per worker for both schedulers.
//! 2. **Real runtime** — wall-clock parallel fib in Hide vs. Block mode
//!    (identical code paths except the suspension machinery, which must
//!    stay cold).
//!
//! ```text
//! cargo run -p lhws-bench --release --bin overhead [-- --fib 30 --reps 3]
//! ```

use std::time::Instant;

use lhws_bench::{fib, fmt_x100, host_sweep, Args};
use lhws_core::{fork2, Config, LatencyMode, Runtime};
use lhws_dag::gen;
use lhws_sim::speedup::{run_lhws, run_ws};

fn pfib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
    Box::pin(async move {
        if n < 18 {
            fib(n)
        } else {
            let (a, b) = fork2(pfib(n - 1), pfib(n - 2)).await;
            a + b
        }
    })
}

fn main() {
    let args = Args::parse();
    let fib_n: u64 = args.get("fib", 30);
    let reps: usize = args.get("reps", 3);
    let seed: u64 = args.get("seed", 13);

    println!("# U = 0 reduction: LHWS vs WS on pure fork-join fib");

    // --- Simulator view -------------------------------------------------
    let wl = gen::fib(16, 5);
    println!(
        "\n## simulator: fib dag, W={} (rounds; deques/worker)",
        wl.dag.work()
    );
    println!(
        "{:>4}  {:>12}  {:>12}  {:>10}  {:>10}",
        "P", "LHWS(rnds)", "WS(rnds)", "LHWS-dq", "WS-dq"
    );
    for p in [1usize, 2, 4, 8, 16] {
        let lh = run_lhws(&wl.dag, p, seed);
        let ws = run_ws(&wl.dag, p, seed);
        assert_eq!(lh.max_deques_per_worker, 1, "U=0 => one deque per worker");
        println!(
            "{:>4}  {:>12}  {:>12}  {:>10}  {:>10}",
            p, lh.rounds, ws.rounds, lh.max_deques_per_worker, ws.max_deques_per_worker
        );
    }

    // --- Real runtime view ----------------------------------------------
    let expect = fib(fib_n);
    println!("\n## real runtime: parallel fib({fib_n}) wall clock (best of {reps})");
    println!(
        "{:>4}  {:>12}  {:>12}  {:>10}",
        "P", "Hide(ms)", "Block(ms)", "ratio"
    );
    for p in host_sweep() {
        let mut best = [u128::MAX; 2];
        for (mi, mode) in [LatencyMode::Hide, LatencyMode::Block]
            .into_iter()
            .enumerate()
        {
            for _ in 0..reps {
                let rt = Runtime::new(Config::default().workers(p).mode(mode)).unwrap();
                let start = Instant::now();
                let got = rt.block_on(pfib(fib_n));
                assert_eq!(got, expect);
                best[mi] = best[mi].min(start.elapsed().as_micros());
            }
        }
        let ratio_x100 = (best[0] * 100 / best[1].max(1)) as u64;
        println!(
            "{:>4}  {:>12}  {:>12}  {:>10}",
            p,
            best[0] / 1000,
            best[1] / 1000,
            fmt_x100(ratio_x100)
        );
    }
    println!("\n# ratio ~1.00 means latency-hiding machinery costs nothing when unused");
}
