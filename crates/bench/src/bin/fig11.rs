//! Figure 11 on the real runtime: self-speedup of latency-hiding work
//! stealing (LHWS) vs. standard blocking work stealing (WS) on the
//! distributed map-reduce benchmark.
//!
//! The paper's parameters were n = 5000 elements, fib(30) per element, and
//! δ ∈ {500 ms, 50 ms, 1 ms}, on a 30-core machine. The default here is a
//! scaled-down configuration that finishes in a couple of minutes on a
//! laptop; pass `--paper` for the full-size run (expect ~an hour at
//! δ = 500 ms on few cores, since WS must wait out n·δ / P of latency).
//!
//! ```text
//! cargo run -p lhws-bench --release --bin fig11 [-- --n 256 --fib 22 \
//!     --deltas 100,10,1 --workers 1,2,4,8] [--paper]
//! ```
//!
//! Speedups are relative to the one-worker run of WS, exactly as in the
//! paper ("the speedup shown is relative to the one-processor run of WS").

use std::time::Duration;

use lhws_bench::{fig11_checksum, fmt_x100, host_sweep, run_fig11, Args, Fig11Params};
use lhws_core::LatencyMode;

fn main() {
    let args = Args::parse();
    let paper = args.flag("paper");
    let n = args.get("n", if paper { 5000 } else { 256 });
    let fib_n = args.get("fib", if paper { 30 } else { 22 });
    let deltas_ms: Vec<u64> = if paper {
        vec![500, 50, 1]
    } else {
        let raw: String = args.get("deltas", "100,10,1".to_string());
        raw.split(',').filter_map(|s| s.parse().ok()).collect()
    };
    let workers: Vec<usize> = {
        let raw: String = args.get("workers", String::new());
        if raw.is_empty() {
            // Thread counts beyond the core count still matter here: a
            // blocked WS thread sleeps in the kernel, so oversubscribed
            // workers let WS overlap latency the way extra processors
            // would (which is exactly what the paper's WS curves show).
            let mut ps = host_sweep();
            for extra in [2usize, 4, 8] {
                if !ps.contains(&extra) {
                    ps.push(extra);
                }
            }
            ps.sort_unstable();
            ps
        } else {
            raw.split(',').filter_map(|s| s.parse().ok()).collect()
        }
    };

    println!("# Figure 11 (real runtime): map-reduce, n={n}, fib({fib_n})");
    println!("# speedups relative to WS at P=1 for each delta");

    for &delta_ms in &deltas_ms {
        let params = Fig11Params {
            n,
            delta: Duration::from_millis(delta_ms),
            fib_n,
        };
        let expect = fig11_checksum(params);

        println!("\n## delta = {delta_ms} ms");
        println!(
            "{:>4}  {:>12}  {:>12}  {:>10}  {:>10}",
            "P", "LHWS(ms)", "WS(ms)", "LHWS-spd", "WS-spd"
        );

        let (t1, sum) = run_fig11(params, 1, LatencyMode::Block);
        assert_eq!(sum, expect, "WS checksum mismatch");
        let base_us = t1.as_micros().max(1) as u64;

        for &p in &workers {
            let (tl, s1) = run_fig11(params, p, LatencyMode::Hide);
            let (tw, s2) = if p == 1 {
                (t1, expect)
            } else {
                run_fig11(params, p, LatencyMode::Block)
            };
            assert_eq!(s1, expect, "LHWS checksum mismatch at P={p}");
            assert_eq!(s2, expect, "WS checksum mismatch at P={p}");
            let lh_spd = base_us * 100 / tl.as_micros().max(1) as u64;
            let ws_spd = base_us * 100 / tw.as_micros().max(1) as u64;
            println!(
                "{:>4}  {:>12}  {:>12}  {:>10}  {:>10}",
                p,
                tl.as_millis(),
                tw.as_millis(),
                fmt_x100(lh_spd),
                fmt_x100(ws_spd)
            );
        }
    }
    println!("\n# done");
}
