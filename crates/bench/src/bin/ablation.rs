//! Ablations of the design choices the paper calls out.
//!
//! ```text
//! cargo run -p lhws-bench --release --bin ablation -- \
//!     [steal-policy|resume|recycle|variants|deque|all]
//! ```
//!
//! * `steal-policy` — random-deque (analyzed) vs. worker-then-deque (the
//!   paper's §6 implementation choice): failed-steal rates and rounds.
//! * `resume` — pfor batch reinjection vs. one-resume-per-round strawman.
//! * `recycle` — Figure 5 deque recycling vs. always-fresh allocation.
//! * `variants` — the paper's per-vertex suspension vs. the two
//!   Spoonhower-thesis multi-deque variants its related-work section
//!   contrasts (whole-deque parking; new-deque-per-resume), with
//!   Spoonhower's deviation metric.
//! * `deque` — Chase–Lev vs. mutex deque on the real runtime.

use std::time::{Duration, Instant};

use lhws_bench::{fib, Args};
use lhws_core::{fork2, Config, LatencyMode, Runtime};
use lhws_dag::gen::{map_reduce, scatter_gather, server};
use lhws_deque::DequeKind;
use lhws_sim::{LhwsSim, ResumeBatching, SimConfig, StealPolicy, SuspendPolicy};

fn steal_policy(seed: u64) {
    println!("\n## steal policy: random-deque vs worker-then-deque (simulator)");
    println!(
        "{:>28}  {:>4}  {:>10}  {:>10}  {:>8}  {:>10}",
        "workload", "P", "policy", "rounds", "steals", "success%"
    );
    for (name, dag) in [
        ("map_reduce(128,d=100)", map_reduce(128, 100, 16, 2).dag),
        ("server(40,d=50)", server(40, 50, 16, 1).dag),
    ] {
        for p in [4usize, 8, 16] {
            for (pname, pol) in [
                ("random", StealPolicy::RandomDeque),
                ("worker", StealPolicy::WorkerThenDeque),
            ] {
                let s = LhwsSim::new(&dag, SimConfig::new(p).seed(seed).steal_policy(pol)).run();
                println!(
                    "{:>28}  {:>4}  {:>10}  {:>10}  {:>8}  {:>10}",
                    name,
                    p,
                    pname,
                    s.rounds,
                    s.steal_attempts,
                    s.steal_success_pct()
                );
            }
        }
    }
}

fn resume(seed: u64) {
    println!("\n## resume reinjection: pfor tree vs one-per-round (simulator)");
    println!("#  scatter_gather: n requests whose responses all arrive at once");
    println!(
        "{:>28}  {:>4}  {:>12}  {:>10}  {:>8}",
        "workload", "P", "batching", "rounds", "pfor"
    );
    for n in [64u64, 512] {
        let wl = scatter_gather(n, 2 * n, 4);
        let name = format!("scatter_gather({n})");
        for p in [4usize, 16] {
            for (bname, b) in [
                ("pfor", ResumeBatching::Pfor),
                ("one/round", ResumeBatching::OnePerRound),
            ] {
                let s =
                    LhwsSim::new(&wl.dag, SimConfig::new(p).seed(seed).resume_batching(b)).run();
                println!(
                    "{:>28}  {:>4}  {:>12}  {:>10}  {:>8}",
                    name, p, bname, s.rounds, s.pfor_vertices
                );
            }
        }
    }
}

fn recycle(seed: u64) {
    println!("\n## deque recycling (Figure 5) vs always-fresh allocation (simulator)");
    println!(
        "{:>28}  {:>4}  {:>10}  {:>14}",
        "workload", "P", "recycle", "deques alloc'd"
    );
    for (name, dag) in [
        ("server(100,d=20)", server(100, 20, 6, 1).dag),
        ("map_reduce(128,d=40)", map_reduce(128, 40, 8, 1).dag),
    ] {
        for p in [4usize, 8] {
            for (rname, r) in [("yes", true), ("no", false)] {
                let s = LhwsSim::new(&dag, SimConfig::new(p).seed(seed).recycle_deques(r)).run();
                println!(
                    "{:>28}  {:>4}  {:>10}  {:>14}",
                    name, p, rname, s.deques_allocated
                );
            }
        }
    }
}

fn variants(seed: u64) {
    println!("\n## suspension policy: the paper vs Spoonhower-thesis variants (simulator)");
    println!("#  per-vertex  = the paper (deque keeps running; new deques on steals)");
    println!("#  whole-deque = suspension parks the entire deque");
    println!("#  new-on-res  = every resume creates a fresh deque");
    println!(
        "{:>24}  {:>4}  {:>12}  {:>8}  {:>8}  {:>8}  {:>10}",
        "workload", "P", "policy", "rounds", "deques", "dq/wkr", "deviations"
    );
    for (name, dag) in [
        ("map_reduce(64,d=60)", map_reduce(64, 60, 8, 1).dag),
        ("server(40,d=30)", server(40, 30, 8, 1).dag),
        ("scatter_gather(64)", scatter_gather(64, 140, 4).dag),
    ] {
        for p in [4usize, 16] {
            for (pname, pol) in [
                ("per-vertex", SuspendPolicy::PerVertex),
                ("whole-deque", SuspendPolicy::WholeDeque),
                ("new-on-res", SuspendPolicy::NewDequeOnResume),
            ] {
                let s = LhwsSim::new(&dag, SimConfig::new(p).seed(seed).suspend_policy(pol)).run();
                println!(
                    "{:>24}  {:>4}  {:>12}  {:>8}  {:>8}  {:>8}  {:>10}",
                    name,
                    p,
                    pname,
                    s.rounds,
                    s.deques_allocated,
                    s.max_deques_per_worker,
                    s.deviations
                );
            }
        }
    }
}

fn pfib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
    Box::pin(async move {
        if n < 16 {
            fib(n)
        } else {
            let (a, b) = fork2(pfib(n - 1), pfib(n - 2)).await;
            a + b
        }
    })
}

fn deque_impl() {
    println!("\n## deque implementation: Chase-Lev vs mutex (real runtime, best of 3)");
    println!("{:>10}  {:>8}  {:>12}", "kind", "P", "fib(28) ms");
    let p = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for (kname, kind) in [
        ("chase-lev", DequeKind::ChaseLev),
        ("mutex", DequeKind::Mutex),
    ] {
        let mut best = u128::MAX;
        for _ in 0..3 {
            let rt = Runtime::new(
                Config::default()
                    .workers(p)
                    .deque_kind(kind)
                    .mode(LatencyMode::Hide),
            )
            .unwrap();
            let start = Instant::now();
            let v = rt.block_on(pfib(28));
            assert_eq!(v, fib(28));
            best = best.min(start.elapsed().as_micros());
        }
        println!("{:>10}  {:>8}  {:>12}", kname, p, best / 1000);
    }

    println!("\n{:>10}  {:>8}  {:>16}", "kind", "P", "latency mix ms");
    for (kname, kind) in [
        ("chase-lev", DequeKind::ChaseLev),
        ("mutex", DequeKind::Mutex),
    ] {
        let mut best = u128::MAX;
        for _ in 0..3 {
            let rt = Runtime::new(Config::default().workers(p).deque_kind(kind)).unwrap();
            let start = Instant::now();
            rt.block_on(async {
                let hs: Vec<_> = (0..512)
                    .map(|_| {
                        lhws_core::spawn(async {
                            lhws_core::simulate_latency(Duration::from_millis(2)).await;
                            fib(18)
                        })
                    })
                    .collect();
                let mut acc = 0u64;
                for h in hs {
                    acc = acc.wrapping_add(h.await);
                }
                acc
            });
            best = best.min(start.elapsed().as_micros());
        }
        println!("{:>10}  {:>8}  {:>16}", kname, p, best / 1000);
    }
}

fn main() {
    let args = Args::parse();
    let which = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let seed: u64 = args.get("seed", 5);

    println!("# Ablation tables");
    match which.as_str() {
        "steal-policy" => steal_policy(seed),
        "resume" => resume(seed),
        "recycle" => recycle(seed),
        "deque" => deque_impl(),
        "variants" => variants(seed),
        _ => {
            steal_policy(seed);
            resume(seed);
            recycle(seed);
            variants(seed);
            deque_impl();
        }
    }
    println!("\n# done");
}
