//! Seeded chaos soak: run a mix of workloads under an aggressive fault
//! plan, then audit the recorded trace against the scheduler invariants.
//!
//! ```text
//! cargo run -p lhws-bench --release --bin chaos -- \
//!     [--seed N] [--workers P] [--rounds R] [--quick] [--live-audit]
//! ```
//!
//! Exits nonzero if any workload computes a wrong result, leaks a
//! suspension, or fails the trace audit. The fault *schedule* is a pure
//! function of the seed (printed as `schedule_digest`), so a failing seed
//! reruns with the same fault decisions every time — paste the seed into
//! the command above to reproduce.
//!
//! With `--live-audit` the invariants are checked *during* the soak, not
//! after it: an incremental [`TraceReader`](lhws_core::TraceReader) is
//! polled from a separate thread while the faults fire, feeding an
//! [`AuditState`] that flags monotone violations the moment they appear.
//! At shutdown the drain's leftovers are folded in and the streaming
//! verdict is compared, count for count, against the classic post-hoc
//! auditor over the reassembled complete trace — they must agree exactly.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lhws_bench::Args;
use lhws_core::channel::mpsc;
use lhws_core::trace::TraceEvent;
use lhws_core::{
    join_all, simulate_latency, AuditReport, AuditState, FaultPlan, Runtime, StealPolicy, Trace,
};
use lhws_net::{Reactor, TcpListener, TcpStream};

const TRACE_CAPACITY: usize = 1 << 18;

/// Fixed per-site visit horizon for the printed schedule digest: makes
/// the digest a pure function of the plan, independent of how many visits
/// a particular run happened to consume.
const DIGEST_VISITS: u64 = 100_000;

fn chaos_rt(seed: u64, workers: usize, adaptive: bool) -> Runtime {
    let mut b = Runtime::builder()
        .workers(workers)
        .trace_capacity(TRACE_CAPACITY)
        .fault_plan(FaultPlan::chaos(seed));
    if adaptive {
        // The adaptive round: steal-half batching plus the affinity
        // cache, so the chaos preset's `AffinityStale` site actually
        // gets visited (it only rolls when a victim is cached).
        b = b.steal_policy(StealPolicy::Adaptive).steal_batch_limit(8);
    }
    b.build().expect("chaos plan is valid")
}

/// Fan-out of latency-suspending tasks (the paper's scatter/gather shape).
fn scatter(rt: &Runtime, n: u64) -> Result<(), String> {
    let got = rt.block_on(async move {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                lhws_core::spawn(async move {
                    simulate_latency(Duration::from_micros(150 + (i % 11) * 60)).await;
                    i
                })
            })
            .collect();
        join_all(handles).await.into_iter().sum::<u64>()
    });
    let want: u64 = (0..n).sum();
    if got != want {
        return Err(format!("scatter: got {got}, want {want}"));
    }
    Ok(())
}

/// Producer/consumer interaction through an mpsc channel.
fn pingpong(rt: &Runtime, n: u64) -> Result<(), String> {
    let got = rt.block_on(async move {
        let (tx, mut rx) = mpsc::<u64>();
        let producer = lhws_core::spawn(async move {
            for i in 0..n {
                simulate_latency(Duration::from_micros(100)).await;
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        while let Some(v) = rx.recv().await {
            sum += v;
        }
        producer.await;
        sum
    });
    let want: u64 = (0..n).sum();
    if got != want {
        return Err(format!("pingpong: got {got}, want {want}"));
    }
    Ok(())
}

/// Nested fork-join compute (steal pressure without latency).
fn forkjoin(rt: &Runtime, depth: u64) -> Result<(), String> {
    fn fib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
        Box::pin(async move {
            if n < 2 {
                n
            } else {
                let (a, b) = lhws_core::fork2(fib(n - 1), fib(n - 2)).await;
                a + b
            }
        })
    }
    let got = rt.block_on(fib(depth));
    let want = lhws_bench::fib(depth);
    if got != want {
        return Err(format!("forkjoin: got {got}, want {want}"));
    }
    Ok(())
}

/// Loopback TCP echo through the epoll reactor: every socket wait is a
/// readiness registration, so the `DroppedReadiness` site gets visited
/// and must be recovered by level-triggered re-arming.
fn netecho(rt: &Runtime, conns: u64) -> Result<(), String> {
    let reactor = Reactor::new(rt).map_err(|e| format!("netecho: reactor: {e}"))?;
    let got = rt.block_on(async move {
        let listener = TcpListener::bind(&reactor, "127.0.0.1:0")
            .map_err(|e| format!("netecho: bind: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let serve = async {
            let mut sum = 0u64;
            for _ in 0..conns {
                let (mut conn, _) = listener.accept().await.map_err(|e| e.to_string())?;
                let mut buf = [0u8; 16];
                let n = conn.read(&mut buf).await.map_err(|e| e.to_string())?;
                conn.write_all(&buf[..n]).await.map_err(|e| e.to_string())?;
                let s = std::str::from_utf8(&buf[..n]).map_err(|e| e.to_string())?;
                sum += s.parse::<u64>().map_err(|e| e.to_string())?;
            }
            Ok::<u64, String>(sum)
        };
        let r2 = reactor.clone();
        let drive = async move {
            for i in 0..conns {
                let mut s =
                    TcpStream::connect(&r2, addr).map_err(|e| format!("netecho: connect: {e}"))?;
                let msg = i.to_string();
                s.write_all(msg.as_bytes())
                    .await
                    .map_err(|e| e.to_string())?;
                let mut buf = [0u8; 16];
                let n = s.read(&mut buf).await.map_err(|e| e.to_string())?;
                if buf[..n] != *msg.as_bytes() {
                    return Err(format!("netecho: conn {i}: bad echo"));
                }
            }
            Ok(())
        };
        let (served, drove) = lhws_core::fork2(serve, drive).await;
        drove?;
        served
    })?;
    let want: u64 = (0..conns).sum();
    if got != want {
        return Err(format!("netecho: got {got}, want {want}"));
    }
    Ok(())
}

/// Continuous-audit rig for one round: a reader polled from its own
/// thread for the duration of the soak, streaming batches into an
/// [`AuditState`] and keeping every event for the post-hoc replay.
struct LiveAuditRig {
    stop: Arc<AtomicBool>,
    poller: std::thread::JoinHandle<(AuditState, Vec<TraceEvent>, u64)>,
}

impl LiveAuditRig {
    fn start(rt: &Runtime, round: u64) -> LiveAuditRig {
        let mut reader = rt.observe().trace_reader().expect("tracing enabled");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let poller = std::thread::spawn(move || {
            let mut state = AuditState::new(reader.workers());
            let mut events = Vec::new();
            let mut polled_dropped = 0u64;
            let mut flagged = 0u64;
            while !stop2.load(Ordering::Acquire) {
                let batch = reader.poll_events();
                state.observe(&batch.events);
                state.observe_dropped(batch.dropped + batch.missed);
                polled_dropped += batch.dropped + batch.missed;
                events.extend(batch.events);
                // Streaming checks only — flag the instant one trips.
                if state.violation_count() > flagged {
                    flagged = state.violation_count();
                    eprintln!("round {round}: LIVE audit violation mid-soak (count now {flagged})");
                }
                // A realistic observer cadence: hot enough to catch a
                // violation mid-soak, cool enough not to oversubscribe
                // small CI hosts (the soak itself is the workload).
                std::thread::sleep(Duration::from_millis(1));
            }
            (state, events, polled_dropped)
        });
        LiveAuditRig { stop, poller }
    }

    /// Stops the poller, folds the shutdown drain's leftovers, and
    /// returns `(live, posthoc)`: the streaming verdict and the classic
    /// auditor's verdict over the reassembled complete stream.
    fn finish(self, leftover: &Trace) -> (AuditReport, AuditReport) {
        self.stop.store(true, Ordering::Release);
        let (mut state, mut events, polled_dropped) =
            self.poller.join().expect("live-audit poller panicked");
        state.observe(&leftover.events);
        state.observe_dropped(leftover.dropped.saturating_sub(polled_dropped));
        let live = state.report();

        events.extend(leftover.events.iter().copied());
        events.sort_by_key(|e| e.ts);
        let posthoc = Trace {
            events,
            dropped: leftover.dropped,
            workers: leftover.workers,
        }
        .audit();
        (live, posthoc)
    }
}

/// The streaming and post-hoc reports must agree on everything the
/// auditor can count — same events, two observation orders.
fn audits_agree(live: &AuditReport, posthoc: &AuditReport) -> bool {
    live.passed() == posthoc.passed()
        && live.suspensions == posthoc.suspensions
        && live.readies == posthoc.readies
        && live.execs == posthoc.execs
        && live.unresolved == posthoc.unresolved
        && live.max_inflight == posthoc.max_inflight
        && live.violation_count == posthoc.violation_count
        && live.deque_high_water == posthoc.deque_high_water
}

fn main() -> ExitCode {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 1);
    let workers: usize = args.get("workers", 2);
    let quick = args.flag("quick");
    let live_audit = args.flag("live-audit");
    let rounds: u64 = args.get("rounds", if quick { 1 } else { 4 });
    let n: u64 = if quick { 48 } else { 256 };
    let fib_depth: u64 = if quick { 10 } else { 14 };

    let plan = FaultPlan::chaos(seed);
    println!("chaos soak: seed={seed} workers={workers} rounds={rounds}");
    println!(
        "schedule_digest=0x{:016x}",
        plan.schedule_digest(DIGEST_VISITS)
    );

    let mut failures = 0u32;
    // The final round swaps the default scheduler for Adaptive with
    // steal-half batching: same fault plan, same invariants, but the
    // steal path now exercises batch claims, the affinity cache, and
    // the `AffinityStale` poison site.
    for round in 0..=rounds {
        let adaptive = round == rounds;
        let rt = chaos_rt(seed, workers, adaptive);
        let rig = live_audit.then(|| LiveAuditRig::start(&rt, round));
        let results = [
            ("scatter", scatter(&rt, n)),
            ("pingpong", pingpong(&rt, n / 2)),
            ("forkjoin", forkjoin(&rt, fib_depth)),
            ("netecho", netecho(&rt, n / 8)),
        ];
        // A spurious-wake fault can leave a task's duplicate timer
        // registration behind after the task completed, and a resume
        // delay can keep that duplicate parked past the last join.
        // Give in-flight delayed resumes a bounded window to drain, so
        // the balance check below tests the scheduler rather than the
        // race between shutdown and an injected 500us delay.
        let drain_by = std::time::Instant::now() + Duration::from_millis(250);
        while rt.metrics().resumes < rt.metrics().suspensions
            && std::time::Instant::now() < drain_by
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = rt.shutdown();
        for (name, r) in results {
            if let Err(e) = r {
                eprintln!("FAIL round {round} {name}: {e}");
                failures += 1;
            }
        }
        if report.metrics.suspensions != report.metrics.resumes {
            eprintln!(
                "FAIL round {round}: unbalanced counters ({} suspensions, {} resumes; {} leaked, {} canceled ops, {} canceled io waits)",
                report.metrics.suspensions,
                report.metrics.resumes,
                report.leaked_suspensions,
                report.canceled_ops,
                report.canceled_io_waits
            );
            failures += 1;
        }
        if let Some(w) = report.poisoned_worker {
            eprintln!("FAIL round {round}: worker {w} panicked");
            failures += 1;
        }
        let leftover = report.trace.expect("tracing enabled");
        let audit = match rig {
            // Continuous mode: the live reader consumed the stream as it
            // was produced, so the shutdown trace holds only leftovers.
            // Fold them, then require the streaming verdict to agree
            // exactly with the post-hoc auditor over the full replay.
            Some(rig) => {
                let (live, posthoc) = rig.finish(&leftover);
                if !audits_agree(&live, &posthoc) {
                    eprintln!(
                        "FAIL round {round}: live audit diverged from post-hoc:\nlive: {live}\npost-hoc: {posthoc}"
                    );
                    failures += 1;
                }
                live
            }
            None => leftover.audit(),
        };
        if !audit.passed() {
            eprintln!("FAIL round {round}: trace audit rejected:\n{audit}");
            failures += 1;
        }
        println!(
            "round {round}{}: faults_injected={} suspensions={} batch_tasks={} audit={}{}",
            if adaptive { " (adaptive)" } else { "" },
            report.faults_injected,
            report.metrics.suspensions,
            report.metrics.steal_batch_tasks,
            if audit.passed() { "pass" } else { "FAIL" },
            if live_audit { " (continuous)" } else { "" }
        );
    }

    if failures > 0 {
        eprintln!("chaos soak FAILED: {failures} failure(s) at seed {seed}");
        ExitCode::FAILURE
    } else {
        println!("chaos soak passed at seed {seed}");
        ExitCode::SUCCESS
    }
}
