//! Seeded chaos soak: run a mix of workloads under an aggressive fault
//! plan, then audit the recorded trace against the scheduler invariants.
//!
//! ```text
//! cargo run -p lhws-bench --release --bin chaos -- \
//!     [--seed N] [--workers P] [--rounds R] [--quick]
//! ```
//!
//! Exits nonzero if any workload computes a wrong result, leaks a
//! suspension, or fails the trace audit. The fault *schedule* is a pure
//! function of the seed (printed as `schedule_digest`), so a failing seed
//! reruns with the same fault decisions every time — paste the seed into
//! the command above to reproduce.

use std::process::ExitCode;
use std::time::Duration;

use lhws_bench::Args;
use lhws_core::channel::mpsc;
use lhws_core::{join_all, simulate_latency, FaultPlan, Runtime, StealPolicy};
use lhws_net::{Reactor, TcpListener, TcpStream};

const TRACE_CAPACITY: usize = 1 << 18;

/// Fixed per-site visit horizon for the printed schedule digest: makes
/// the digest a pure function of the plan, independent of how many visits
/// a particular run happened to consume.
const DIGEST_VISITS: u64 = 100_000;

fn chaos_rt(seed: u64, workers: usize, adaptive: bool) -> Runtime {
    let mut b = Runtime::builder()
        .workers(workers)
        .trace_capacity(TRACE_CAPACITY)
        .fault_plan(FaultPlan::chaos(seed));
    if adaptive {
        // The adaptive round: steal-half batching plus the affinity
        // cache, so the chaos preset's `AffinityStale` site actually
        // gets visited (it only rolls when a victim is cached).
        b = b.steal_policy(StealPolicy::Adaptive).steal_batch_limit(8);
    }
    b.build().expect("chaos plan is valid")
}

/// Fan-out of latency-suspending tasks (the paper's scatter/gather shape).
fn scatter(rt: &Runtime, n: u64) -> Result<(), String> {
    let got = rt.block_on(async move {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                lhws_core::spawn(async move {
                    simulate_latency(Duration::from_micros(150 + (i % 11) * 60)).await;
                    i
                })
            })
            .collect();
        join_all(handles).await.into_iter().sum::<u64>()
    });
    let want: u64 = (0..n).sum();
    if got != want {
        return Err(format!("scatter: got {got}, want {want}"));
    }
    Ok(())
}

/// Producer/consumer interaction through an mpsc channel.
fn pingpong(rt: &Runtime, n: u64) -> Result<(), String> {
    let got = rt.block_on(async move {
        let (tx, mut rx) = mpsc::<u64>();
        let producer = lhws_core::spawn(async move {
            for i in 0..n {
                simulate_latency(Duration::from_micros(100)).await;
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        while let Some(v) = rx.recv().await {
            sum += v;
        }
        producer.await;
        sum
    });
    let want: u64 = (0..n).sum();
    if got != want {
        return Err(format!("pingpong: got {got}, want {want}"));
    }
    Ok(())
}

/// Nested fork-join compute (steal pressure without latency).
fn forkjoin(rt: &Runtime, depth: u64) -> Result<(), String> {
    fn fib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
        Box::pin(async move {
            if n < 2 {
                n
            } else {
                let (a, b) = lhws_core::fork2(fib(n - 1), fib(n - 2)).await;
                a + b
            }
        })
    }
    let got = rt.block_on(fib(depth));
    let want = lhws_bench::fib(depth);
    if got != want {
        return Err(format!("forkjoin: got {got}, want {want}"));
    }
    Ok(())
}

/// Loopback TCP echo through the epoll reactor: every socket wait is a
/// readiness registration, so the `DroppedReadiness` site gets visited
/// and must be recovered by level-triggered re-arming.
fn netecho(rt: &Runtime, conns: u64) -> Result<(), String> {
    let reactor = Reactor::new(rt).map_err(|e| format!("netecho: reactor: {e}"))?;
    let got = rt.block_on(async move {
        let listener = TcpListener::bind(&reactor, "127.0.0.1:0")
            .map_err(|e| format!("netecho: bind: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let serve = async {
            let mut sum = 0u64;
            for _ in 0..conns {
                let (mut conn, _) = listener.accept().await.map_err(|e| e.to_string())?;
                let mut buf = [0u8; 16];
                let n = conn.read(&mut buf).await.map_err(|e| e.to_string())?;
                conn.write_all(&buf[..n]).await.map_err(|e| e.to_string())?;
                let s = std::str::from_utf8(&buf[..n]).map_err(|e| e.to_string())?;
                sum += s.parse::<u64>().map_err(|e| e.to_string())?;
            }
            Ok::<u64, String>(sum)
        };
        let r2 = reactor.clone();
        let drive = async move {
            for i in 0..conns {
                let mut s =
                    TcpStream::connect(&r2, addr).map_err(|e| format!("netecho: connect: {e}"))?;
                let msg = i.to_string();
                s.write_all(msg.as_bytes())
                    .await
                    .map_err(|e| e.to_string())?;
                let mut buf = [0u8; 16];
                let n = s.read(&mut buf).await.map_err(|e| e.to_string())?;
                if buf[..n] != *msg.as_bytes() {
                    return Err(format!("netecho: conn {i}: bad echo"));
                }
            }
            Ok(())
        };
        let (served, drove) = lhws_core::fork2(serve, drive).await;
        drove?;
        served
    })?;
    let want: u64 = (0..conns).sum();
    if got != want {
        return Err(format!("netecho: got {got}, want {want}"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 1);
    let workers: usize = args.get("workers", 2);
    let quick = args.flag("quick");
    let rounds: u64 = args.get("rounds", if quick { 1 } else { 4 });
    let n: u64 = if quick { 48 } else { 256 };
    let fib_depth: u64 = if quick { 10 } else { 14 };

    let plan = FaultPlan::chaos(seed);
    println!("chaos soak: seed={seed} workers={workers} rounds={rounds}");
    println!(
        "schedule_digest=0x{:016x}",
        plan.schedule_digest(DIGEST_VISITS)
    );

    let mut failures = 0u32;
    // The final round swaps the default scheduler for Adaptive with
    // steal-half batching: same fault plan, same invariants, but the
    // steal path now exercises batch claims, the affinity cache, and
    // the `AffinityStale` poison site.
    for round in 0..=rounds {
        let adaptive = round == rounds;
        let rt = chaos_rt(seed, workers, adaptive);
        let results = [
            ("scatter", scatter(&rt, n)),
            ("pingpong", pingpong(&rt, n / 2)),
            ("forkjoin", forkjoin(&rt, fib_depth)),
            ("netecho", netecho(&rt, n / 8)),
        ];
        let report = rt.shutdown();
        for (name, r) in results {
            if let Err(e) = r {
                eprintln!("FAIL round {round} {name}: {e}");
                failures += 1;
            }
        }
        if report.metrics.suspensions != report.metrics.resumes {
            eprintln!(
                "FAIL round {round}: unbalanced counters ({} suspensions, {} resumes)",
                report.metrics.suspensions, report.metrics.resumes
            );
            failures += 1;
        }
        if let Some(w) = report.poisoned_worker {
            eprintln!("FAIL round {round}: worker {w} panicked");
            failures += 1;
        }
        let audit = report.trace.expect("tracing enabled").audit();
        if !audit.passed() {
            eprintln!("FAIL round {round}: trace audit rejected:\n{audit}");
            failures += 1;
        }
        println!(
            "round {round}{}: faults_injected={} suspensions={} batch_tasks={} audit={}",
            if adaptive { " (adaptive)" } else { "" },
            report.faults_injected,
            report.metrics.suspensions,
            report.metrics.steal_batch_tasks,
            if audit.passed() { "pass" } else { "FAIL" }
        );
    }

    if failures > 0 {
        eprintln!("chaos soak FAILED: {failures} failure(s) at seed {seed}");
        ExitCode::FAILURE
    } else {
        println!("chaos soak passed at seed {seed}");
        ExitCode::SUCCESS
    }
}
