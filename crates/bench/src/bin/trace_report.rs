//! Replays the standard workloads with tracing on and reports the derived
//! scheduler statistics — steal success rates, the three suspension-latency
//! histograms (enable → ready → executed), and the per-worker live-deque
//! high-water marks that Lemma 7 bounds by `U + 1`.
//!
//! ```text
//! cargo run -p lhws-bench --release --bin trace_report \
//!     [-- --quick --workers 4 --export trace.json --validate]
//! ```
//!
//! * `--quick` shrinks every workload for CI smoke runs.
//! * `--workers N` overrides the worker count (default: all host cores).
//! * `--export PATH` writes the *last* workload's Chrome-trace JSON to
//!   `PATH` (load in `chrome://tracing` or <https://ui.perfetto.dev>).
//! * `--validate` re-reads the exported file through a hand-rolled JSON
//!   parser and fails loudly if the document is malformed — the CI check
//!   that the exporter emits well-formed JSON without pulling in serde.

use std::time::Duration;

use lhws_bench::Args;
use lhws_core::{fork2, join_all, par_map_reduce, simulate_latency, Runtime};

fn pfib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
    Box::pin(async move {
        if n < 12 {
            let (mut a, mut b) = (0u64, 1u64);
            for _ in 0..n {
                let t = a + b;
                a = b;
                b = t;
            }
            a
        } else {
            let (a, b) = fork2(pfib(n - 1), pfib(n - 2)).await;
            a + b
        }
    })
}

fn traced(workers: usize) -> Runtime {
    Runtime::builder()
        .workers(workers)
        .trace_capacity(1 << 20)
        .build()
        .expect("valid config")
}

/// Runs one workload, prints its stats, and returns the trace for export.
fn report(
    name: &str,
    expected_u: Option<u64>,
    rt: Runtime,
    run: impl FnOnce(&Runtime),
) -> lhws_core::Trace {
    run(&rt);
    let report = rt.shutdown();
    let trace = report.trace.expect("tracing was enabled");
    let stats = trace.stats();
    println!("\n## {name}");
    println!("{stats}");
    if trace.dropped > 0 {
        println!(
            "(warning: {} events dropped — raise trace_capacity)",
            trace.dropped
        );
    }
    if let Some(u) = expected_u {
        let hw = stats.max_deque_high_water();
        let verdict = if hw <= u + 1 { "holds" } else { "VIOLATED" };
        println!("Lemma 7: high-water {hw} vs U+1 = {} → {verdict}", u + 1);
        assert!(hw <= u + 1, "Lemma 7 violated: {hw} > {}", u + 1);
    }
    trace
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let workers: usize = args.get(
        "workers",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    );
    let export: String = args.get("export", String::new());
    let validate = args.flag("validate");

    let fib_n: u64 = if quick { 18 } else { 26 };
    let leaves: u64 = if quick { 64 } else { 512 };
    let latency_tasks: u64 = if quick { 32 } else { 256 };

    println!("# trace_report: P={workers} quick={quick}");

    // --- 1. Pure fork-join: U = 0, high-water must be exactly 1. --------
    report("fib (U = 0)", Some(0), traced(workers), |rt| {
        let got = rt.block_on(pfib(fib_n));
        assert!(got > 0);
    });

    // --- 2. Latency map-reduce: every leaf suspends once. ---------------
    report(
        &format!("map-reduce with latency leaves (U = {leaves})"),
        Some(leaves),
        traced(workers),
        |rt| {
            let sum = rt.block_on(par_map_reduce(
                0,
                leaves,
                |i| async move {
                    simulate_latency(Duration::from_millis(1 + i % 3)).await;
                    i
                },
                |a, b| a + b,
                0,
            ));
            assert_eq!(sum, leaves * (leaves - 1) / 2);
        },
    );

    // --- 3. Flat latency fan-out (the ISSUE's "latency workload"). ------
    let trace = report(
        &format!("flat latency fan-out (U = {latency_tasks})"),
        Some(latency_tasks),
        traced(workers),
        |rt| {
            rt.block_on(async move {
                let handles: Vec<_> = (0..latency_tasks)
                    .map(|i| {
                        lhws_core::spawn(async move {
                            simulate_latency(Duration::from_millis(1 + i % 5)).await;
                            i
                        })
                    })
                    .collect();
                join_all(handles).await
            });
        },
    );

    if !export.is_empty() {
        let mut f = std::fs::File::create(&export).expect("create export file");
        trace.export_chrome(&mut f).expect("write trace");
        println!("\nexported Chrome trace → {export}");
        if validate {
            let text = std::fs::read_to_string(&export).expect("re-read export");
            match json::validate(&text) {
                Ok(()) => println!("export validates as JSON ({} bytes)", text.len()),
                Err(e) => panic!("exported trace is not valid JSON: {e}"),
            }
        }
    } else if validate {
        // Validate in-memory when no path was given.
        let mut buf = Vec::new();
        trace.export_chrome(&mut buf).expect("serialize trace");
        let text = String::from_utf8(buf).expect("utf-8");
        json::validate(&text).expect("exported trace is valid JSON");
        println!(
            "\nexport validates as JSON ({} bytes, in memory)",
            text.len()
        );
    }
}

/// A minimal recursive-descent JSON validator (RFC 8259 grammar, no
/// parse tree) — enough to prove the hand-rolled exporter emits documents
/// that real tools will load, without adding a serde dependency.
mod json {
    pub fn validate(text: &str) -> Result<(), String> {
        let b = text.as_bytes();
        let mut pos = skip_ws(b, 0);
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(())
    }

    fn err(what: &str, pos: usize) -> String {
        format!("{what} at byte {pos}")
    }

    fn skip_ws(b: &[u8], mut pos: usize) -> usize {
        while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
            pos += 1;
        }
        pos
    }

    fn value(b: &[u8], pos: usize) -> Result<usize, String> {
        match b.get(pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, b"true"),
            Some(b'f') => literal(b, pos, b"false"),
            Some(b'n') => literal(b, pos, b"null"),
            Some(b'-' | b'0'..=b'9') => number(b, pos),
            _ => Err(err("expected a JSON value", pos)),
        }
    }

    fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
        if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
            Ok(pos + lit.len())
        } else {
            Err(err("bad literal", pos))
        }
    }

    fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
        pos = skip_ws(b, pos + 1); // past '{'
        if b.get(pos) == Some(&b'}') {
            return Ok(pos + 1);
        }
        loop {
            pos = string(b, pos).map_err(|_| err("expected object key", pos))?;
            pos = skip_ws(b, pos);
            if b.get(pos) != Some(&b':') {
                return Err(err("expected ':'", pos));
            }
            pos = skip_ws(b, pos + 1);
            pos = value(b, pos)?;
            pos = skip_ws(b, pos);
            match b.get(pos) {
                Some(b',') => pos = skip_ws(b, pos + 1),
                Some(b'}') => return Ok(pos + 1),
                _ => return Err(err("expected ',' or '}'", pos)),
            }
        }
    }

    fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
        pos = skip_ws(b, pos + 1); // past '['
        if b.get(pos) == Some(&b']') {
            return Ok(pos + 1);
        }
        loop {
            pos = value(b, pos)?;
            pos = skip_ws(b, pos);
            match b.get(pos) {
                Some(b',') => pos = skip_ws(b, pos + 1),
                Some(b']') => return Ok(pos + 1),
                _ => return Err(err("expected ',' or ']'", pos)),
            }
        }
    }

    fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
        if b.get(pos) != Some(&b'"') {
            return Err(err("expected '\"'", pos));
        }
        pos += 1;
        while let Some(&c) = b.get(pos) {
            match c {
                b'"' => return Ok(pos + 1),
                b'\\' => match b.get(pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                    Some(b'u') => {
                        let hex = b
                            .get(pos + 2..pos + 6)
                            .ok_or_else(|| err("short \\u", pos))?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(err("bad \\u escape", pos));
                        }
                        pos += 6;
                    }
                    _ => return Err(err("bad escape", pos)),
                },
                0x00..=0x1f => return Err(err("raw control char in string", pos)),
                _ => pos += 1,
            }
        }
        Err(err("unterminated string", pos))
    }

    fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
        let start = pos;
        if b.get(pos) == Some(&b'-') {
            pos += 1;
        }
        match b.get(pos) {
            Some(b'0') => pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(b.get(pos), Some(b'0'..=b'9')) {
                    pos += 1;
                }
            }
            _ => return Err(err("bad number", start)),
        }
        if b.get(pos) == Some(&b'.') {
            pos += 1;
            if !matches!(b.get(pos), Some(b'0'..=b'9')) {
                return Err(err("bad fraction", pos));
            }
            while matches!(b.get(pos), Some(b'0'..=b'9')) {
                pos += 1;
            }
        }
        if matches!(b.get(pos), Some(b'e' | b'E')) {
            pos += 1;
            if matches!(b.get(pos), Some(b'+' | b'-')) {
                pos += 1;
            }
            if !matches!(b.get(pos), Some(b'0'..=b'9')) {
                return Err(err("bad exponent", pos));
            }
            while matches!(b.get(pos), Some(b'0'..=b'9')) {
                pos += 1;
            }
        }
        Ok(pos)
    }

    #[cfg(test)]
    mod tests {
        use super::validate;

        #[test]
        fn accepts_valid_documents() {
            for ok in [
                "{}",
                "[]",
                r#"{"a": [1, 2.5, -3e4], "b": {"c": null}, "d": "x\ny"}"#,
                r#"{"displayTimeUnit": "ms", "traceEvents": [{"ph": "i"}]}"#,
                r#""é""#,
                "  [ true , false , null ]  ",
            ] {
                assert_eq!(validate(ok), Ok(()), "rejected valid: {ok}");
            }
        }

        #[test]
        fn rejects_malformed_documents() {
            for bad in [
                "",
                "{",
                "[1, 2,]",
                r#"{"a" 1}"#,
                r#"{"a": 1} extra"#,
                "01",
                "1.",
                r#""unterminated"#,
                r#""bad \x escape""#,
                "[1 2]",
                "{'single': 1}",
            ] {
                assert!(validate(bad).is_err(), "accepted invalid: {bad}");
            }
        }
    }
}
