//! Closed-loop TCP load generator for the reactor-backed server.
//!
//! ```text
//! # Self-hosted compare: in-process server per mode, loopback sockets.
//! cargo run -p lhws-bench --release --bin loadgen -- \
//!     [--conns C] [--requests R] [--think-us T] [--fib N] \
//!     [--server-workers P] [--client-workers P] [--quick] [--out FILE]
//!
//! # External server (CI smoke): drive an already-running server.
//! cargo run -p lhws-bench --release --bin loadgen -- \
//!     --addr 127.0.0.1:7911 [--quick] ...
//!
//! # Scrape validation: check a live observability endpoint.
//! cargo run -p lhws-bench --release --bin loadgen -- \
//!     --scrape 127.0.0.1:9631
//! ```
//!
//! Each connection runs a closed loop: send `W <n>`, await `R <v>`,
//! think, repeat, drawing from a shared request budget until it is
//! exhausted. Per-request latencies are recorded exactly (sorted vector,
//! no histogram buckets) and reported as p50/p99/p999.
//!
//! In compare mode the server runtime is started once per
//! [`LatencyMode`]: `Hide` hosts every connection's kernel wait as a
//! suspended deque through the epoll reactor, while `Block` parks a
//! worker per outstanding read — with `C ≫ P` only `P` connections make
//! progress at a time, which is the measurable cost of blocking the
//! paper quantifies. Results land in `BENCH_net.json`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws_bench::Args;
use lhws_core::{fork2, join_all, simulate_latency, spawn, Config, LatencyMode, Runtime};
use lhws_net::{LineReader, Reactor, TcpListener, TcpStream};

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

#[derive(Debug, Clone, Copy)]
struct Params {
    conns: usize,
    requests: u64,
    think: Duration,
    fib_n: u64,
    server_workers: usize,
    client_workers: usize,
}

// ---------------------------------------------------------------------
// Server side (compare mode): the example server's loop, in-process.
// ---------------------------------------------------------------------

async fn serve_conn(stream: TcpStream) -> std::io::Result<u64> {
    let mut reader = LineReader::new(stream);
    let mut served = 0u64;
    while let Some(line) = reader.read_line().await? {
        let n: u64 = line
            .strip_prefix("W ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad request line {line:?}")))?;
        let v = if n < 2 {
            n
        } else {
            let (a, b) = fork2(async move { fib(n - 1) }, async move { fib(n - 2) }).await;
            a + b
        };
        reader
            .stream_mut()
            .write_all(format!("R {v}\n").as_bytes())
            .await?;
        served += 1;
    }
    Ok(served)
}

/// Starts an in-process server for `conns` connections on an OS-assigned
/// port. The accept loop runs to completion on a dedicated thread whose
/// join hands the runtime back for shutdown once the clients are done.
fn start_server(
    mode: LatencyMode,
    p: Params,
) -> (
    std::thread::JoinHandle<(Runtime, u64)>,
    std::net::SocketAddr,
) {
    let rt = Runtime::new(Config::default().workers(p.server_workers).mode(mode)).unwrap();
    let reactor = Reactor::new(&rt).unwrap();
    let listener = TcpListener::bind(&reactor, "127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let conns = p.conns;
    let joiner = std::thread::spawn(move || {
        let total = rt.block_on(async move {
            let mut handles = Vec::with_capacity(conns);
            for _ in 0..conns {
                let (stream, _peer) = listener.accept().await.unwrap();
                handles.push(spawn(serve_conn(stream)));
            }
            let mut total = 0u64;
            for h in handles {
                total += h.await.unwrap();
            }
            total
        });
        (rt, total)
    });
    (joiner, addr)
}

// ---------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------

/// One connection's closed loop. Returns per-request latencies in nanos.
async fn drive_conn(
    reactor: Reactor,
    addr: std::net::SocketAddr,
    budget: Arc<AtomicU64>,
    think: Duration,
    fib_n: u64,
) -> std::io::Result<Vec<u64>> {
    let stream = TcpStream::connect(&reactor, addr)?;
    let mut reader = LineReader::new(stream);
    let mut latencies = Vec::new();
    let want = format!("R {}", fib(fib_n));
    while budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| c.checked_sub(1))
        .is_ok()
    {
        let t0 = Instant::now();
        reader
            .stream_mut()
            .write_all(format!("W {fib_n}\n").as_bytes())
            .await?;
        let reply = reader
            .read_line()
            .await?
            .ok_or_else(|| std::io::Error::other("server closed mid-run"))?;
        latencies.push(t0.elapsed().as_nanos() as u64);
        if reply != want {
            return Err(std::io::Error::other(format!(
                "bad reply: got {reply:?}, want {want:?}"
            )));
        }
        if !think.is_zero() {
            simulate_latency(think).await;
        }
    }
    Ok(latencies)
}

struct RunStats {
    throughput_rps: f64,
    elapsed: Duration,
    completed: u64,
    errors: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

/// Drives `p.conns` closed-loop connections at `addr` from a fresh
/// latency-hiding client runtime and aggregates exact latency stats.
fn drive(addr: std::net::SocketAddr, p: Params) -> RunStats {
    let rt = Runtime::new(
        Config::default()
            .workers(p.client_workers)
            .mode(LatencyMode::Hide),
    )
    .unwrap();
    let reactor = Reactor::new(&rt).unwrap();
    let budget = Arc::new(AtomicU64::new(p.requests));
    let think = p.think;
    let fib_n = p.fib_n;
    let conns = p.conns;
    let start = Instant::now();
    let results = rt.block_on(async move {
        let handles: Vec<_> = (0..conns)
            .map(|_| {
                let reactor = reactor.clone();
                let budget = budget.clone();
                spawn(drive_conn(reactor, addr, budget, think, fib_n))
            })
            .collect();
        join_all(handles).await
    });
    let elapsed = start.elapsed();
    rt.shutdown();

    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for r in results {
        match r {
            Ok(mut v) => latencies.append(&mut v),
            Err(e) => {
                eprintln!("loadgen: connection failed: {e}");
                errors += 1;
            }
        }
    }
    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    RunStats {
        throughput_rps: completed as f64 / elapsed.as_secs_f64(),
        elapsed,
        completed,
        errors,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        p999_us: percentile_us(&latencies, 0.999),
    }
}

fn print_stats(label: &str, s: &RunStats) {
    println!(
        "{label}: {} requests in {:.2?} = {:.0} req/s | p50 {:.0}us p99 {:.0}us p999 {:.0}us | {} conn errors",
        s.completed, s.elapsed, s.throughput_rps, s.p50_us, s.p99_us, s.p999_us, s.errors
    );
}

fn json_run(s: &RunStats) -> String {
    format!(
        "{{\"throughput_rps\": {:.1}, \"elapsed_ns\": {}, \"completed\": {}, \"errors\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}}",
        s.throughput_rps,
        s.elapsed.as_nanos(),
        s.completed,
        s.errors,
        s.p50_us,
        s.p99_us,
        s.p999_us
    )
}

// ---------------------------------------------------------------------
// Scrape mode: validate a live `/metrics` + `/stats` endpoint.
// ---------------------------------------------------------------------

/// Minimal blocking HTTP/1.1 GET (the obs server closes per request, so
/// reading to EOF and splitting on the blank line is the whole protocol).
fn http_get(addr: &str, path: &str) -> Result<(String, String), String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: lhws\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header/body split in response to GET {path}"))?;
    let status = head.lines().next().unwrap_or("").to_string();
    if !status.contains("200") {
        return Err(format!("GET {path}: {status}"));
    }
    Ok((status, body.to_string()))
}

/// Two `/metrics` scrapes with a `/stats` hit in between: both must be
/// valid exposition documents (no duplicate or interleaved families, no
/// untyped samples) and no counter may go backwards across them.
fn scrape(addr: &str) -> Result<(), String> {
    let (_, first) = http_get(addr, "/metrics")?;
    let earlier = lhws_obs::promtext::parse(&first).map_err(|e| format!("first scrape: {e}"))?;
    println!(
        "scrape 1: {} families, {} samples",
        earlier.len(),
        earlier.iter().map(|f| f.samples.len()).sum::<usize>()
    );

    let (_, stats) = http_get(addr, "/stats")?;
    let stats = stats.trim();
    if !(stats.starts_with('{') && stats.ends_with('}') && stats.contains("\"polls\"")) {
        return Err(format!("/stats is not a stats object: {stats:.80?}"));
    }
    println!("stats: {} bytes of JSON", stats.len());

    let (_, second) = http_get(addr, "/metrics")?;
    let later = lhws_obs::promtext::parse(&second).map_err(|e| format!("second scrape: {e}"))?;
    lhws_obs::promtext::check_counters_monotonic(&earlier, &later)?;
    println!("scrape 2: {} families, counters monotonic", later.len());
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let quick = args.flag("quick");
    let p = Params {
        conns: args.get("conns", if quick { 8 } else { 256 }),
        requests: args.get("requests", if quick { 1_000 } else { 8_192 }),
        think: Duration::from_micros(args.get("think-us", if quick { 500 } else { 2_000 })),
        fib_n: args.get("fib", 15),
        server_workers: args.get("server-workers", 4),
        client_workers: args.get("client-workers", 4),
    };

    if let Some(addr) = args.value("scrape").map(str::to_string) {
        // Scrape-validation mode (CI smoke): no load, just the contract.
        println!("loadgen: scraping observability endpoint at {addr}");
        return match scrape(&addr) {
            Ok(()) => {
                println!("loadgen: scrape validation passed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("loadgen: scrape validation FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(addr) = args.value("addr").map(str::to_string) {
        // External-server mode (CI smoke): one run, no JSON.
        let addr: std::net::SocketAddr = match addr.parse() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("loadgen: --addr: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "loadgen: driving {addr} with {} conns, {} requests",
            p.conns, p.requests
        );
        let stats = drive(addr, p);
        print_stats("external", &stats);
        if stats.errors > 0 || stats.completed < p.requests {
            eprintln!(
                "loadgen: FAILED ({} errors, {}/{} completed)",
                stats.errors, stats.completed, p.requests
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // Compare mode: in-process server per scheduling mode.
    println!(
        "net loadgen: conns={} requests={} think={:?} fib={} server P={} client P={}",
        p.conns, p.requests, p.think, p.fib_n, p.server_workers, p.client_workers
    );
    let mut stats = Vec::new();
    let mut failed = false;
    for (mode, label) in [(LatencyMode::Block, "block"), (LatencyMode::Hide, "hide")] {
        let (server_join, addr) = start_server(mode, p);
        let s = drive(addr, p);
        print_stats(label, &s);
        let (server_rt, served) = server_join.join().expect("server thread panicked");
        let report = server_rt.shutdown();
        if s.errors > 0 || s.completed < p.requests || served != s.completed {
            eprintln!(
                "loadgen: {label} run FAILED ({} errors, client {} vs server {} requests)",
                s.errors, s.completed, served
            );
            failed = true;
        }
        if report.leaked_suspensions != 0 || report.canceled_io_waits != 0 {
            eprintln!(
                "loadgen: {label} server shutdown unclean: {} leaked, {} canceled io waits",
                report.leaked_suspensions, report.canceled_io_waits
            );
            failed = true;
        }
        stats.push(s);
    }
    let speedup = stats[1].throughput_rps / stats[0].throughput_rps.max(1e-9);
    println!("hide/block throughput: {speedup:.2}x");

    let out = args.value("out").unwrap_or("BENCH_net.json").to_string();
    let json = format!(
        "{{\n  \"bench\": \"net_loadgen\",\n  \"config\": {{\"conns\": {}, \"requests\": {}, \"think_us\": {}, \"fib\": {}, \"server_workers\": {}, \"client_workers\": {}}},\n  \"block\": {},\n  \"hide\": {},\n  \"hide_over_block\": {:.2}\n}}\n",
        p.conns,
        p.requests,
        p.think.as_micros(),
        p.fib_n,
        p.server_workers,
        p.client_workers,
        json_run(&stats[0]),
        json_run(&stats[1]),
        speedup
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("loadgen: writing {out}: {e}");
        failed = true;
    } else {
        println!("wrote {out}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
