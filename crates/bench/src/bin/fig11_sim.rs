//! Figure 11 in the simulator: the exact shape of the paper's three plots
//! with *virtual* workers up to P = 30 (and beyond), independent of the
//! host's core count.
//!
//! Latency and work are measured in simulator rounds. With the paper's
//! fib(30) taking a few milliseconds on their hardware, δ = 500 ms
//! corresponds to a latency ≈ 100–150× the leaf work; δ = 50 ms to ≈ 10×;
//! δ = 1 ms to ≈ 0.25×. We keep those ratios with `leaf_work = 400`
//! rounds and δ ∈ {48000, 4800, 100} rounds by default.
//!
//! ```text
//! cargo run -p lhws-bench --release --bin fig11_sim \
//!     [-- --n 1000 --leaf 400 --deltas 48000,4800,100 --pmax 30]
//! ```

use lhws_bench::{fmt_x100, Args};
use lhws_dag::gen::map_reduce;
use lhws_sim::speedup::speedup_sweep;

fn main() {
    let args = Args::parse();
    let n: u64 = args.get("n", 1000);
    let leaf: u64 = args.get("leaf", 400);
    let deltas: Vec<u64> = {
        let raw: String = args.get("deltas", "48000,4800,100".to_string());
        raw.split(',').filter_map(|s| s.parse().ok()).collect()
    };
    let pmax: usize = args.get("pmax", 30);
    let seed: u64 = args.get("seed", 42);

    let ps: Vec<usize> = (1..=pmax)
        .filter(|p| *p == 1 || p % 2 == 0 || *p == pmax)
        .collect();

    println!("# Figure 11 (simulated): map-reduce, n={n}, leaf_work={leaf} rounds");
    println!("# speedups relative to WS at P=1; latency in rounds");

    for &delta in &deltas {
        let wl = map_reduce(n, delta, leaf, 1);
        println!(
            "\n## delta = {delta} rounds (delta/leaf = {:.2})",
            delta as f64 / leaf as f64
        );
        println!(
            "{:>4}  {:>12}  {:>12}  {:>10}  {:>10}",
            "P", "LHWS(rnds)", "WS(rnds)", "LHWS-spd", "WS-spd"
        );
        for pt in speedup_sweep(&wl.dag, &ps, seed) {
            println!(
                "{:>4}  {:>12}  {:>12}  {:>10}  {:>10}",
                pt.p,
                pt.lhws_rounds,
                pt.ws_rounds,
                fmt_x100(pt.lhws_speedup_x100),
                fmt_x100(pt.ws_speedup_x100)
            );
        }
    }
    println!("\n# done");
}
