//! # lhws-net — socket readiness as heavy edges
//!
//! A network I/O reactor for the latency-hiding work-stealing runtime.
//! The scheduler's claim is that *interaction latency* can be hidden by
//! suspending the waiting computation and working on something else; this
//! crate makes the waits real. An epoll-based [`Reactor`] thread turns
//! kernel readiness into the runtime's external-completion resumes, so a
//! task awaiting a socket suspends against its deque exactly like any
//! other heavy edge — the suspension width `U` is literally the number of
//! live connections blocked on the kernel, and the live-deque bound of
//! Lemma 7 applies to them unchanged.
//!
//! [`TcpListener`] / [`TcpStream`] retry nonblocking syscalls around
//! [`ReadyFuture`] waits under [`LatencyMode::Hide`](lhws_core::LatencyMode::Hide),
//! and degrade to plain blocking syscalls under
//! [`LatencyMode::Block`](lhws_core::LatencyMode::Block) — giving the
//! paper's two schedulers identical application code to disagree over.
//!
//! ```no_run
//! use lhws_core::{Config, LatencyMode, Runtime};
//! use lhws_net::{Reactor, TcpListener};
//!
//! let rt = Runtime::new(Config::default().workers(4).mode(LatencyMode::Hide)).unwrap();
//! let reactor = Reactor::new(&rt).unwrap();
//! let report = rt.block_on(async move {
//!     let listener = TcpListener::bind(&reactor, "127.0.0.1:0")?;
//!     let (mut conn, _peer) = listener.accept().await?; // suspends, never blocks
//!     conn.write_all(b"hello\n").await?;
//!     std::io::Result::Ok(())
//! });
//! report.unwrap();
//! ```

#![warn(missing_docs)]

mod reactor;
mod sys;
mod tcp;

pub use reactor::{Interest, Reactor, ReadyFuture, TimedReadyFuture};
// Re-exported so readiness futures can be deadline-bounded without a
// direct lhws-core dependency.
pub use lhws_core::DeadlineExt;
pub use tcp::{LineReader, TcpListener, TcpStream};
