//! The epoll reactor: kernel readiness in, scheduler resume events out.
//!
//! One dedicated thread (`lhws-net-reactor`) owns an epoll instance and a
//! registration table mapping file descriptors to at most one waiter per
//! direction. Registering a wait files a [`Completer`] in the table and
//! arms (level-triggered) interest; when the kernel reports readiness the
//! reactor removes the waiter, disarms that direction, and fires the
//! completer **off-worker** — exactly the external-completion path the
//! scheduler already treats as a heavy-edge resume. A task awaiting
//! [`ReadyFuture`] therefore suspends against its deque on first poll and
//! is routed back through its owner's inbox on readiness, so every socket
//! wait is a real heavy edge and the live-deque bound `U + 1` counts
//! connections blocked in the kernel.
//!
//! The reactor is a [`Driver`]: [`Runtime::shutdown`](lhws_core::Runtime::shutdown)
//! stops it *before* the workers, draining the table (each in-flight wait
//! settles `Err(Canceled)` and is tallied in
//! [`ShutdownReport::canceled_io_waits`](lhws_core::ShutdownReport::canceled_io_waits))
//! and joining the thread.
//!
//! Under [`LatencyMode::Block`] the reactor spawns no thread and arms no
//! epoll: sockets stay in blocking mode and workers park in the kernel —
//! the paper's blocking baseline, byte-for-byte the same application code.

use std::collections::HashMap;
use std::future::Future;
use std::io;
use std::os::fd::RawFd;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;

use parking_lot::Mutex;

use lhws_core::{
    external_op, Completer, DeadlineExt, DeadlineOp, Driver, DriverHooks, DriverReport, ExternalOp,
    IoTraceEvent, LatencyMode, OpError, Runtime,
};

use crate::sys;

/// Which direction of readiness a wait is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable (or peer hang-up / error — anything that unblocks a read).
    Read,
    /// Writable (or error — anything that unblocks a write).
    Write,
}

impl Interest {
    fn epoll_bits(self) -> u32 {
        match self {
            // ERR/HUP are delivered regardless of the requested mask; the
            // extra bits here document which mask we *wait* on.
            Interest::Read => sys::EPOLLIN | sys::EPOLLRDHUP,
            Interest::Write => sys::EPOLLOUT,
        }
    }
}

/// One registered wait: the token ties trace events together; dropping the
/// completer settles the wait `Err(Canceled)`.
struct Waiter {
    token: u64,
    completer: Completer<()>,
}

#[derive(Default)]
struct FdWaiters {
    read: Option<Waiter>,
    write: Option<Waiter>,
}

impl FdWaiters {
    fn interest_bits(&self) -> u32 {
        let mut bits = 0;
        if self.read.is_some() {
            bits |= Interest::Read.epoll_bits();
        }
        if self.write.is_some() {
            bits |= Interest::Write.epoll_bits();
        }
        bits
    }
}

/// Epoll data cookie reserved for the shutdown eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

struct Inner {
    hooks: DriverHooks,
    /// `-1` in blocking mode (no epoll instance exists).
    epfd: RawFd,
    /// Eventfd used solely to kick the event loop out of `epoll_wait` at
    /// shutdown. `-1` in blocking mode.
    wake_fd: RawFd,
    table: Mutex<HashMap<RawFd, FdWaiters>>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    shutdown: AtomicBool,
    /// Set exactly once by the first successful [`Driver::shutdown`];
    /// later callers return the stored report (idempotence).
    report: Mutex<Option<DriverReport>>,
    next_token: AtomicU64,
    /// [`LatencyMode::Block`]: no thread, no epoll, waits complete
    /// immediately so callers fall through to blocking syscalls.
    blocking: bool,
}

/// Handle to the reactor; cheap to clone, shared by every socket wrapper.
#[derive(Clone)]
pub struct Reactor {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("blocking", &self.inner.blocking)
            .field("registered_fds", &self.inner.table.lock().len())
            .finish()
    }
}

impl Reactor {
    /// Creates a reactor for `rt` and attaches it as a driver, so
    /// [`Runtime::shutdown`] stops it deterministically. On a
    /// [`LatencyMode::Hide`] runtime this spawns the `lhws-net-reactor`
    /// thread; under [`LatencyMode::Block`] no thread or epoll instance is
    /// created and every readiness wait completes immediately (sockets
    /// stay blocking — the baseline scheduler parks workers in the kernel).
    pub fn new(rt: &Runtime) -> io::Result<Reactor> {
        let hooks = rt.driver_hooks();
        let blocking = hooks.mode() == Some(LatencyMode::Block);
        let (epfd, wake_fd) = if blocking {
            (-1, -1)
        } else {
            let epfd = sys::epoll_create()?;
            let wake_fd = match sys::eventfd_new() {
                Ok(fd) => fd,
                Err(e) => {
                    sys::close_fd(epfd);
                    return Err(e);
                }
            };
            sys::epoll_ctl_op(epfd, sys::EPOLL_CTL_ADD, wake_fd, sys::EPOLLIN, WAKE_TOKEN)?;
            (epfd, wake_fd)
        };
        let reactor = Reactor {
            inner: Arc::new(Inner {
                hooks,
                epfd,
                wake_fd,
                table: Mutex::new(HashMap::new()),
                thread: Mutex::new(None),
                shutdown: AtomicBool::new(false),
                report: Mutex::new(None),
                next_token: AtomicU64::new(1),
                blocking,
            }),
        };
        if !blocking {
            let loop_handle = reactor.clone();
            let handle = std::thread::Builder::new()
                .name("lhws-net-reactor".into())
                .spawn(move || loop_handle.event_loop())
                .inspect_err(|_| {
                    sys::close_fd(epfd);
                    sys::close_fd(wake_fd);
                })?;
            *reactor.inner.thread.lock() = Some(handle);
        }
        rt.attach_driver(Arc::new(reactor.clone()));
        Ok(reactor)
    }

    /// True when this reactor serves a [`LatencyMode::Block`] runtime:
    /// sockets should stay in blocking mode and readiness waits are no-ops.
    pub fn is_blocking(&self) -> bool {
        self.inner.blocking
    }

    /// Returns a future resolving when `fd` is ready for `interest`.
    ///
    /// On a latency-hiding runtime the first `Pending` poll suspends the
    /// task against its deque ([`lhws_core::external_op`] semantics); the
    /// reactor thread fires the completion on kernel readiness. Dropping
    /// the future before readiness deregisters the wait. In blocking mode
    /// the future completes immediately so callers retry the (blocking)
    /// syscall.
    pub fn ready(&self, fd: RawFd, interest: Interest) -> ReadyFuture {
        let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        let (completer, op) = external_op::<()>();
        let err = if self.inner.blocking {
            completer.complete(());
            None
        } else {
            self.register(fd, interest, token, completer).err()
        };
        ReadyFuture {
            reactor: self.clone(),
            fd,
            interest,
            token,
            op: Some(op),
            err,
            done: false,
        }
    }

    /// Files `completer` in the table and arms level-triggered interest.
    /// Rejected once shutdown has begun: the completer is dropped, so the
    /// caller's future observes `Err(Canceled)`.
    fn register(
        &self,
        fd: RawFd,
        interest: Interest,
        token: u64,
        completer: Completer<()>,
    ) -> io::Result<()> {
        let mut table = self.inner.table.lock();
        // The flag is checked under the table lock and shutdown closes the
        // epoll fd only after draining the table under this same lock, so
        // a register that sees the flag clear always sees a live epfd.
        if self.inner.shutdown.load(Ordering::SeqCst) {
            drop(completer);
            return Err(io::Error::other("reactor is shut down"));
        }
        let entry = table.entry(fd).or_default();
        let is_new = entry.interest_bits() == 0;
        let slot = match interest {
            Interest::Read => &mut entry.read,
            Interest::Write => &mut entry.write,
        };
        if slot.is_some() {
            // One waiter per direction per fd: a second reader/writer on
            // the same socket is an application bug, not a race to paper
            // over silently.
            return Err(io::Error::other(
                "a readiness wait is already registered for this fd and direction",
            ));
        }
        *slot = Some(Waiter { token, completer });
        let bits = entry.interest_bits();
        let op = if is_new {
            sys::EPOLL_CTL_ADD
        } else {
            sys::EPOLL_CTL_MOD
        };
        if let Err(e) = sys::epoll_ctl_op(self.inner.epfd, op, fd, bits, fd as u32 as u64) {
            // Roll back the slot so the failed wait leaves no trace state.
            let entry = table.get_mut(&fd).expect("just inserted");
            match interest {
                Interest::Read => entry.read = None,
                Interest::Write => entry.write = None,
            }
            if entry.interest_bits() == 0 {
                table.remove(&fd);
            }
            return Err(e);
        }
        // Count + trace inside the lock, after the insert: the register
        // event is recorded before any readiness/deregister for the token.
        self.inner.hooks.count_io_registration();
        self.inner.hooks.trace_io(IoTraceEvent::Register { token });
        Ok(())
    }

    /// Removes the wait identified by `(fd, interest, token)` if it is
    /// still registered, disarming interest and tracing `IoDeregister`.
    /// A no-op when readiness (or shutdown) already claimed the waiter.
    fn cancel(&self, fd: RawFd, interest: Interest, token: u64) {
        if self.inner.blocking {
            return;
        }
        let waiter = {
            let mut table = self.inner.table.lock();
            let Some(entry) = table.get_mut(&fd) else {
                return;
            };
            let slot = match interest {
                Interest::Read => &mut entry.read,
                Interest::Write => &mut entry.write,
            };
            if !matches!(slot, Some(w) if w.token == token) {
                return;
            }
            let waiter = slot.take().expect("checked above");
            let bits = entry.interest_bits();
            if self.inner.shutdown.load(Ordering::SeqCst) {
                // Shutdown owns the epoll fd lifecycle; just unfile.
            } else if bits == 0 {
                table.remove(&fd);
                let _ = sys::epoll_ctl_op(self.inner.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
            } else {
                let _ = sys::epoll_ctl_op(
                    self.inner.epfd,
                    sys::EPOLL_CTL_MOD,
                    fd,
                    bits,
                    fd as u32 as u64,
                );
            }
            self.inner
                .hooks
                .trace_io(IoTraceEvent::Deregister { token });
            waiter
        };
        // Dropping the completer settles the wait Err(Canceled) outside
        // the table lock; if the future was suspended the cancellation
        // still delivers its one resume event, so counters balance.
        drop(waiter);
    }

    /// The reactor thread: wait for readiness, hand each fired waiter its
    /// completion, re-wait. Exits when the shutdown flag is set (a wake is
    /// posted on the eventfd to interrupt `epoll_wait`).
    fn event_loop(&self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
        let mut fired: Vec<Waiter> = Vec::new();
        // An Err from epoll_wait (never EINTR; that is mapped to Ok(0))
        // means the epoll fd itself failed — bail out.
        while let Ok(n) = sys::epoll_wait_events(self.inner.epfd, &mut events, -1) {
            for ev in &events[..n] {
                // Copy the packed fields by value before use.
                let (mask, data) = (ev.events, ev.data);
                if data == WAKE_TOKEN {
                    sys::eventfd_drain(self.inner.wake_fd);
                    continue;
                }
                let fd = data as u32 as RawFd;
                let read_fired =
                    mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP) != 0;
                let write_fired = mask & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0;
                {
                    let mut table = self.inner.table.lock();
                    let Some(entry) = table.get_mut(&fd) else {
                        continue; // canceled between epoll_wait and here
                    };
                    for (hit, slot) in [
                        (read_fired, &mut entry.read),
                        (write_fired, &mut entry.write),
                    ] {
                        if hit && slot.is_some() {
                            if self.inner.hooks.drop_readiness() {
                                // Fault injection: swallow this readiness
                                // *without* disarming interest. The mask is
                                // level-triggered, so the kernel re-reports
                                // the condition on the next epoll_wait and
                                // the wait recovers on a later roll.
                                continue;
                            }
                            fired.push(slot.take().expect("checked is_some"));
                        }
                    }
                    let bits = entry.interest_bits();
                    if fired.is_empty() {
                        // Nothing claimed (all drops): leave interest armed.
                    } else if bits == 0 {
                        table.remove(&fd);
                        let _ = sys::epoll_ctl_op(self.inner.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
                    } else {
                        let _ = sys::epoll_ctl_op(
                            self.inner.epfd,
                            sys::EPOLL_CTL_MOD,
                            fd,
                            bits,
                            fd as u32 as u64,
                        );
                    }
                }
                // Fire off-worker, outside the table lock: each complete()
                // routes a resume event to the suspended task's owner.
                for waiter in fired.drain(..) {
                    self.inner.hooks.trace_io(IoTraceEvent::Ready {
                        token: waiter.token,
                    });
                    self.inner.hooks.count_io_readiness();
                    waiter.completer.complete(());
                }
            }
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
    }
}

impl Driver for Reactor {
    fn name(&self) -> &'static str {
        "lhws-net-reactor"
    }

    fn shutdown(&self) -> DriverReport {
        let mut stored = self.inner.report.lock();
        if let Some(r) = *stored {
            return r;
        }
        let mut report = DriverReport::default();
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if !self.inner.blocking {
            sys::eventfd_write(self.inner.wake_fd);
            if let Some(handle) = self.inner.thread.lock().take() {
                let _ = handle.join();
            }
            // Drain under the table lock, closing the fds before releasing
            // it: a concurrent register() checks the shutdown flag under
            // this same lock, so it can never epoll_ctl a closed (possibly
            // reused) descriptor.
            let canceled: Vec<Waiter> = {
                let mut table = self.inner.table.lock();
                let mut canceled = Vec::new();
                for (_fd, entry) in table.drain() {
                    report.drained_registrations += 1;
                    for waiter in [entry.read, entry.write].into_iter().flatten() {
                        self.inner.hooks.trace_io(IoTraceEvent::Deregister {
                            token: waiter.token,
                        });
                        report.canceled_waits += 1;
                        canceled.push(waiter);
                    }
                }
                sys::close_fd(self.inner.epfd);
                sys::close_fd(self.inner.wake_fd);
                canceled
            };
            // Settle outside the lock: each dropped completer delivers an
            // Err(Canceled) resume that the still-running workers drain.
            drop(canceled);
        }
        *stored = Some(report);
        report
    }
}

/// Future returned by [`Reactor::ready`]: resolves `Ok(())` when the fd is
/// ready, `Err` if the wait was rejected or canceled (reactor shutdown).
///
/// Dropping it before completion deregisters the wait. Chain
/// [`DeadlineExt::with_timeout`] to bound the wait by the runtime timer.
#[derive(Debug)]
pub struct ReadyFuture {
    reactor: Reactor,
    fd: RawFd,
    interest: Interest,
    token: u64,
    op: Option<ExternalOp<()>>,
    err: Option<io::Error>,
    done: bool,
}

impl DeadlineExt for ReadyFuture {
    type Deadlined = TimedReadyFuture;

    /// Bounds the wait: resolves `Err(TimedOut)` if readiness has not
    /// arrived by `deadline`, deregistering the wait through the same
    /// idempotent settle protocol deadlines use everywhere else (the
    /// timer and a racing readiness event settle exactly once).
    fn with_deadline(mut self, deadline: Instant) -> TimedReadyFuture {
        let op = self.op.take().expect("with_deadline on finished future");
        self.done = true; // disarm Drop: TimedReadyFuture owns the wait now
        TimedReadyFuture {
            reactor: self.reactor.clone(),
            fd: self.fd,
            interest: self.interest,
            token: self.token,
            op: Some(op.with_deadline(deadline)),
            err: self.err.take(),
            done: false,
        }
    }
}

impl Future for ReadyFuture {
    type Output = io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        assert!(!this.done, "ReadyFuture polled after completion");
        if let Some(e) = this.err.take() {
            this.done = true;
            return Poll::Ready(Err(e));
        }
        let op = this.op.as_mut().expect("op present until done");
        match Pin::new(op).poll(cx) {
            Poll::Ready(Ok(())) => {
                this.done = true;
                Poll::Ready(Ok(()))
            }
            Poll::Ready(Err(_canceled)) => {
                this.done = true;
                Poll::Ready(Err(io::Error::other(
                    "readiness wait canceled: reactor shut down",
                )))
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

impl Drop for ReadyFuture {
    fn drop(&mut self) {
        if !self.done {
            self.reactor.cancel(self.fd, self.interest, self.token);
        }
    }
}

/// A [`ReadyFuture`] bounded by a deadline (see
/// [`DeadlineExt::with_timeout`] on [`ReadyFuture`]). Resolves `Err(TimedOut)` on expiry,
/// counting an `io_timeout` and deregistering the wait.
#[derive(Debug)]
pub struct TimedReadyFuture {
    reactor: Reactor,
    fd: RawFd,
    interest: Interest,
    token: u64,
    op: Option<DeadlineOp<()>>,
    err: Option<io::Error>,
    done: bool,
}

impl Future for TimedReadyFuture {
    type Output = io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        assert!(!this.done, "TimedReadyFuture polled after completion");
        if let Some(e) = this.err.take() {
            this.done = true;
            return Poll::Ready(Err(e));
        }
        let op = this.op.as_mut().expect("op present until done");
        match Pin::new(op).poll(cx) {
            Poll::Ready(Ok(())) => {
                this.done = true;
                Poll::Ready(Ok(()))
            }
            Poll::Ready(Err(e)) => {
                this.done = true;
                // Whether the deadline won (TimedOut) or the runtime went
                // away (Canceled), the waiter may still be filed: unfile it
                // so interest is disarmed and the trace records exactly one
                // resolution for the token.
                this.reactor.cancel(this.fd, this.interest, this.token);
                match e {
                    OpError::TimedOut => {
                        this.reactor.inner.hooks.count_io_timeout();
                        Poll::Ready(Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "readiness wait timed out",
                        )))
                    }
                    OpError::Canceled => Poll::Ready(Err(io::Error::other(
                        "readiness wait canceled: reactor shut down",
                    ))),
                }
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

impl Drop for TimedReadyFuture {
    fn drop(&mut self) {
        if !self.done {
            self.reactor.cancel(self.fd, self.interest, self.token);
        }
    }
}
