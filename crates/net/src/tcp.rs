//! TCP socket wrappers that suspend through the scheduler on `WouldBlock`.
//!
//! Under [`LatencyMode::Hide`](lhws_core::LatencyMode::Hide) the sockets
//! are nonblocking: every `WouldBlock` turns into a
//! [`Reactor::ready`](crate::Reactor::ready) wait, i.e. a real heavy edge
//! — the task suspends against its deque and its worker moves on to other
//! work. Under [`LatencyMode::Block`](lhws_core::LatencyMode::Block) the
//! same code runs with blocking sockets (readiness futures complete
//! immediately, the retried syscall parks the worker in the kernel) —
//! the paper's blocking baseline from identical application source.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

use crate::reactor::{Interest, Reactor, ReadyFuture};

/// In blocking mode a dead peer would otherwise park a worker forever;
/// a generous read timeout turns that into an error instead.
const BLOCK_MODE_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A TCP listener whose `accept` suspends (rather than blocks) until a
/// connection is pending.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
    reactor: Reactor,
}

impl TcpListener {
    /// Binds to `addr`. Nonblocking under latency hiding, blocking under
    /// the baseline.
    pub fn bind<A: ToSocketAddrs>(reactor: &Reactor, addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        if !reactor.is_blocking() {
            inner.set_nonblocking(true)?;
        }
        Ok(TcpListener {
            inner,
            reactor: reactor.clone(),
        })
    }

    /// The bound local address (use to recover the port after binding 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accepts one connection, suspending while none is pending.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        loop {
            match self.inner.accept() {
                Ok((stream, peer)) => {
                    return TcpStream::from_std(stream, &self.reactor).map(|s| (s, peer));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.reactor
                        .ready(self.inner.as_raw_fd(), Interest::Read)
                        .await?;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// A TCP stream whose reads and writes suspend (rather than block) on
/// `WouldBlock`.
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
    reactor: Reactor,
}

impl TcpStream {
    /// Connects to `addr`.
    ///
    /// The connect itself is performed blocking (this crate targets
    /// loopback/LAN workloads where connection setup is instantaneous);
    /// the resulting stream is then switched to the reactor's mode.
    pub fn connect<A: ToSocketAddrs>(reactor: &Reactor, addr: A) -> io::Result<TcpStream> {
        let inner = std::net::TcpStream::connect(addr)?;
        TcpStream::from_std(inner, reactor)
    }

    /// Adopts a `std` stream: nonblocking under latency hiding; blocking
    /// (with a read-timeout backstop) under the baseline.
    pub fn from_std(inner: std::net::TcpStream, reactor: &Reactor) -> io::Result<TcpStream> {
        if reactor.is_blocking() {
            inner.set_read_timeout(Some(BLOCK_MODE_READ_TIMEOUT))?;
        } else {
            inner.set_nonblocking(true)?;
        }
        Ok(TcpStream {
            inner,
            reactor: reactor.clone(),
        })
    }

    /// The stream's raw descriptor (for registering custom waits).
    pub fn as_raw_fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }

    /// The local address of this stream.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// The remote peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Clones the stream (shared descriptor), e.g. to split reading and
    /// writing across tasks.
    pub fn try_clone(&self) -> io::Result<TcpStream> {
        Ok(TcpStream {
            inner: self.inner.try_clone()?,
            reactor: self.reactor.clone(),
        })
    }

    /// Shuts down the read, write, or both halves (see
    /// [`std::net::TcpStream::shutdown`]).
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }

    /// A future resolving when the stream is readable. This is the heavy
    /// edge itself — exposed so callers can bound it:
    /// `stream.read_ready().with_timeout(d).await`.
    pub fn read_ready(&self) -> ReadyFuture {
        self.reactor.ready(self.inner.as_raw_fd(), Interest::Read)
    }

    /// A future resolving when the stream is writable.
    pub fn write_ready(&self) -> ReadyFuture {
        self.reactor.ready(self.inner.as_raw_fd(), Interest::Write)
    }

    /// Reads into `buf`, suspending until at least one byte (or EOF, which
    /// returns `Ok(0)`) is available.
    pub async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match (&self.inner).read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.read_ready().await?;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes all of `buf`, suspending whenever the send buffer is full.
    pub async fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut written = 0;
        while written < buf.len() {
            match (&self.inner).write(&buf[written..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer closed while writing",
                    ));
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.write_ready().await?;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Buffered line reader over a [`TcpStream`], for newline-delimited
/// request protocols.
#[derive(Debug)]
pub struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Bytes `buf[..filled]` hold buffered, not-yet-consumed input.
    filled: usize,
}

impl LineReader {
    /// Wraps `stream` with an empty buffer.
    pub fn new(stream: TcpStream) -> LineReader {
        LineReader {
            stream,
            buf: vec![0; 4096],
            filled: 0,
        }
    }

    /// The underlying stream, e.g. for writing a reply.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Returns the inner stream, discarding any buffered input.
    pub fn into_inner(self) -> TcpStream {
        self.stream
    }

    /// Reads one `\n`-terminated line (terminator stripped), or `None` on
    /// clean EOF. EOF mid-line is an error (truncated request).
    pub async fn read_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf[..self.filled].iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.buf[..pos]).into_owned();
                self.buf.copy_within(pos + 1..self.filled, 0);
                self.filled -= pos + 1;
                return Ok(Some(line));
            }
            if self.filled == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            let filled = self.filled;
            let n = self.stream.read(&mut self.buf[filled..]).await?;
            if n == 0 {
                if self.filled > 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-line",
                    ));
                }
                return Ok(None);
            }
            self.filled += n;
        }
    }
}
