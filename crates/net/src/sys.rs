//! Minimal `epoll`/`eventfd` bindings, hand-written because the workspace
//! builds offline without the `libc` crate. Linux-only (the only platform
//! this repository targets), x86-64 and aarch64 ABI compatible.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

/// `EPOLL_CLOEXEC` / `EFD_CLOEXEC` (same value: `O_CLOEXEC`).
const CLOEXEC: c_int = 0o2000000;
/// `EFD_NONBLOCK` (`O_NONBLOCK`).
const EFD_NONBLOCK: c_int = 0o4000;

/// `EPOLL_CTL_ADD`.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `EPOLL_CTL_DEL`.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `EPOLL_CTL_MOD`.
pub const EPOLL_CTL_MOD: c_int = 3;

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, never masked).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hang-up (always reported, never masked).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// One `struct epoll_event`. On x86-64 the kernel ABI packs this struct
/// (12 bytes, no padding before `data`); `repr(packed)` reproduces that.
/// Fields must be **copied out by value** — taking a reference into a
/// packed struct is undefined behavior on alignment-sensitive paths.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit mask (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen cookie returned verbatim with the event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<RawFd> {
    let fd = unsafe { epoll_create1(CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Adds, modifies, or deletes `fd`'s interest mask on `epfd`. `data` is
/// the cookie `epoll_wait` hands back with the fd's events.
pub fn epoll_ctl_op(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Blocks until events arrive (or `timeout_ms`, `-1` = forever). Returns
/// the number of filled entries; `EINTR` surfaces as `Ok(0)` so the event
/// loop simply re-waits.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// Creates the reactor's wake-up eventfd (close-on-exec, nonblocking so
/// drains never stall the event loop).
pub fn eventfd_new() -> io::Result<RawFd> {
    let fd = unsafe { eventfd(0, CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Posts one wake-up to an eventfd (adds 1 to its counter).
pub fn eventfd_write(fd: RawFd) {
    let one: u64 = 1;
    let _ = unsafe { write(fd, &one as *const u64 as *const c_void, 8) };
}

/// Drains an eventfd's counter (nonblocking; EAGAIN means already empty).
pub fn eventfd_drain(fd: RawFd) {
    let mut buf: u64 = 0;
    let _ = unsafe { read(fd, &mut buf as *mut u64 as *mut c_void, 8) };
}

/// Closes a file descriptor, ignoring errors (shutdown path).
pub fn close_fd(fd: RawFd) {
    let _ = unsafe { close(fd) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_abi_size() {
        // The x86-64 kernel ABI packs epoll_event to 12 bytes; other
        // 64-bit ABIs align it to 16.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }

    #[test]
    fn eventfd_roundtrip_wakes_epoll() {
        let ep = epoll_create().unwrap();
        let ev = eventfd_new().unwrap();
        epoll_ctl_op(ep, EPOLL_CTL_ADD, ev, EPOLLIN, 42).unwrap();
        // Nothing posted yet: a zero-timeout wait sees no events.
        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll_wait_events(ep, &mut buf, 0).unwrap(), 0);
        eventfd_write(ev);
        let n = epoll_wait_events(ep, &mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        // Copy packed fields by value before asserting.
        let (events, data) = (buf[0].events, buf[0].data);
        assert_ne!(events & EPOLLIN, 0);
        assert_eq!(data, 42);
        eventfd_drain(ev);
        assert_eq!(epoll_wait_events(ep, &mut buf, 0).unwrap(), 0);
        close_fd(ev);
        close_fd(ep);
    }
}
