//! Integration tests: the reactor driving real loopback sockets through
//! the scheduler's suspension machinery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lhws_core::{audit, fork2, Config, FaultPlan, LatencyMode, Runtime};
use lhws_net::{DeadlineExt, Reactor, TcpListener, TcpStream};

fn hide_rt(workers: usize) -> Runtime {
    Runtime::new(Config::default().workers(workers).mode(LatencyMode::Hide)).unwrap()
}

/// One echo round trip per connection, several connections in flight: the
/// readiness waits suspend and resume through the scheduler, the io
/// counters balance, and shutdown is clean.
#[test]
fn loopback_echo_round_trips() {
    let rt = hide_rt(2);
    let reactor = Reactor::new(&rt).unwrap();

    let conns = 8u64;
    let server_reactor = reactor.clone();
    rt.block_on(async move {
        let listener = TcpListener::bind(&server_reactor, "127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let serve = async {
            for _ in 0..conns {
                let (mut conn, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 16];
                let n = conn.read(&mut buf).await.unwrap();
                conn.write_all(&buf[..n]).await.unwrap();
            }
        };
        let client_reactor = server_reactor.clone();
        let drive = async move {
            for i in 0..conns {
                let mut s = TcpStream::connect(&client_reactor, addr).unwrap();
                let msg = format!("ping {i}");
                s.write_all(msg.as_bytes()).await.unwrap();
                let mut buf = [0u8; 16];
                let n = s.read(&mut buf).await.unwrap();
                assert_eq!(&buf[..n], msg.as_bytes());
            }
        };
        fork2(serve, drive).await;
    });

    let m = rt.metrics();
    // Every readiness event answers a registration; anything left
    // registered is canceled (none here: all waits resolved).
    assert!(m.io_registrations >= m.io_readiness_events);
    assert!(m.io_readiness_events > 0, "no waits ever hit the kernel");
    assert_eq!(m.io_timeouts, 0);
    let report = rt.shutdown();
    assert_eq!(report.canceled_io_waits, 0);
    assert_eq!(report.leaked_suspensions, 0, "unclean: {report:?}");
}

/// A traced run passes `Trace::audit`, including the Io pairing checks.
#[test]
fn traced_run_audits_clean() {
    let rt = Runtime::new(
        Config::default()
            .workers(2)
            .mode(LatencyMode::Hide)
            .trace_capacity(4096),
    )
    .unwrap();
    let reactor = Reactor::new(&rt).unwrap();

    let r2 = reactor.clone();
    rt.block_on(async move {
        let listener = TcpListener::bind(&r2, "127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let serve = async {
            for _ in 0..4 {
                let (mut conn, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 8];
                let n = conn.read(&mut buf).await.unwrap();
                conn.write_all(&buf[..n]).await.unwrap();
            }
        };
        let r3 = r2.clone();
        let drive = async move {
            for _ in 0..4 {
                let mut s = TcpStream::connect(&r3, addr).unwrap();
                s.write_all(b"x").await.unwrap();
                let mut buf = [0u8; 8];
                s.read(&mut buf).await.unwrap();
            }
        };
        fork2(serve, drive).await;
    });

    let mut reader = rt.observe().trace_reader().expect("tracing enabled");
    let trace = reader.poll_events().into_trace();
    let stats = trace.stats();
    assert!(stats.io_registrations > 0);
    let report = audit(&trace);
    assert!(report.passed(), "audit failed:\n{report}");
    rt.shutdown();
}

/// `read_ready().with_timeout(..)` on a silent peer times out through the
/// runtime timer, bumps `io_timeouts`, and deregisters the wait.
#[test]
fn read_ready_timeout_fires() {
    let rt = hide_rt(2);
    let reactor = Reactor::new(&rt).unwrap();

    let r2 = reactor.clone();
    rt.block_on(async move {
        let listener = TcpListener::bind(&r2, "127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Connect but never send: the server-side read can only time out.
        let client = TcpStream::connect(&r2, addr).unwrap();
        let (conn, _) = listener.accept().await.unwrap();
        let err = conn
            .read_ready()
            .with_timeout(Duration::from_millis(20))
            .await
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        drop(client);
    });

    let m = rt.metrics();
    assert_eq!(m.io_timeouts, 1);
    let report = rt.shutdown();
    assert_eq!(report.canceled_io_waits, 0);
    assert_eq!(report.leaked_suspensions, 0, "unclean: {report:?}");
}

/// Readiness beats a generous deadline: the wait resolves `Ok` and no
/// timeout is counted.
#[test]
fn readiness_beats_deadline() {
    let rt = hide_rt(2);
    let reactor = Reactor::new(&rt).unwrap();

    let r2 = reactor.clone();
    rt.block_on(async move {
        let listener = TcpListener::bind(&r2, "127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(&r2, addr).unwrap();
        let (conn, _) = listener.accept().await.unwrap();
        client.write_all(b"now").await.unwrap();
        conn.read_ready()
            .with_timeout(Duration::from_secs(10))
            .await
            .unwrap();
    });

    let m = rt.metrics();
    assert_eq!(m.io_timeouts, 0);
    assert_eq!(rt.shutdown().leaked_suspensions, 0);
}

/// Dropping a `ReadyFuture` before readiness deregisters the wait; the
/// cancellation resume keeps the suspension/resume ledger balanced.
#[test]
fn dropped_wait_deregisters() {
    let rt = hide_rt(2);
    let reactor = Reactor::new(&rt).unwrap();

    let r2 = reactor.clone();
    rt.block_on(async move {
        let listener = TcpListener::bind(&r2, "127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(&r2, addr).unwrap();
        let (conn, _) = listener.accept().await.unwrap();
        // Race the never-ready read against an immediate task: fork2 joins
        // both, so poll the ready future via a timeout we never reach.
        let quick = async { 42u64 };
        let slow = async move {
            let err = conn
                .read_ready()
                .with_timeout(Duration::from_millis(10))
                .await
                .unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
            7u64
        };
        let (a, b) = fork2(quick, slow).await;
        assert_eq!(a + b, 49);
        drop(client);
    });

    let report = rt.shutdown();
    assert_eq!(report.leaked_suspensions, 0, "unclean: {report:?}");
}

/// Shutting the runtime down with waits still registered cancels them:
/// the report counts them and nothing leaks or hangs.
#[test]
fn shutdown_cancels_inflight_waits() {
    let rt = hide_rt(2);
    let reactor = Reactor::new(&rt).unwrap();

    let canceled_seen = Arc::new(AtomicU64::new(0));
    let r2 = reactor.clone();
    let seen = canceled_seen.clone();
    // Park two reads that will never become ready, then shut down while
    // they are registered.
    let h = rt.spawn(async move {
        let listener = TcpListener::bind(&r2, "127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(&r2, addr).unwrap();
        let (conn, _) = listener.accept().await.unwrap();
        let conn2 = conn.try_clone().unwrap();
        let seen2 = seen.clone();
        let wait = async move {
            if conn.read_ready().await.is_err() {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        };
        let wait2 = async move {
            if conn2.write_ready().await.is_ok() {
                // Loopback send buffers are empty: writable immediately.
                seen2.fetch_add(100, Ordering::SeqCst);
            }
        };
        fork2(wait, wait2).await;
    });
    // Give the spawned task time to park its read registration.
    std::thread::sleep(Duration::from_millis(100));
    drop(h);
    let report = rt.shutdown();
    assert_eq!(
        report.canceled_io_waits, 1,
        "exactly the read wait is in flight at shutdown: {report:?}"
    );
    assert_eq!(report.leaked_suspensions, 0, "unclean: {report:?}");
    assert_eq!(canceled_seen.load(Ordering::SeqCst), 101);
}

/// Under `LatencyMode::Block` the reactor spawns no thread and the same
/// application code runs on blocking sockets.
#[test]
fn block_mode_runs_same_code_without_reactor_thread() {
    let rt = Runtime::new(Config::default().workers(2).mode(LatencyMode::Block)).unwrap();
    let reactor = Reactor::new(&rt).unwrap();
    assert!(reactor.is_blocking());

    // The client is a plain OS thread: in blocking mode a worker that
    // parks in the kernel cannot expose its forked children to thieves
    // (they sit in the pending buffer until its poll returns), so an
    // in-runtime client task could deadlock against a blocked accept —
    // exactly the baseline pathology the reactor exists to avoid.
    let r2 = reactor.clone();
    let listener = TcpListener::bind(&r2, "127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        use std::io::{Read, Write};
        s.write_all(b"blk").unwrap();
        let mut buf = [0u8; 8];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"blk");
    });
    rt.block_on(async move {
        let (mut conn, _) = listener.accept().await.unwrap();
        let mut buf = [0u8; 8];
        let n = conn.read(&mut buf).await.unwrap();
        conn.write_all(&buf[..n]).await.unwrap();
    });
    client.join().unwrap();

    let m = rt.metrics();
    assert_eq!(m.io_registrations, 0, "blocking mode never reaches epoll");
    let report = rt.shutdown();
    assert_eq!(report.canceled_io_waits, 0);
    assert_eq!(report.leaked_suspensions, 0);
}

/// `DroppedReadiness` fault injection swallows events but level-triggered
/// re-arming recovers every wait: the run completes and audits clean.
#[test]
fn dropped_readiness_recovers_via_level_trigger() {
    let rt = Runtime::new(
        Config::default()
            .workers(2)
            .mode(LatencyMode::Hide)
            .trace_capacity(8192)
            .fault_plan(FaultPlan::new(0xfeed_beef).dropped_readiness(400_000)),
    )
    .unwrap();
    let reactor = Reactor::new(&rt).unwrap();

    let r2 = reactor.clone();
    rt.block_on(async move {
        let listener = TcpListener::bind(&r2, "127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let serve = async {
            for _ in 0..16 {
                let (mut conn, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 8];
                let n = conn.read(&mut buf).await.unwrap();
                conn.write_all(&buf[..n]).await.unwrap();
            }
        };
        let r3 = r2.clone();
        let drive = async move {
            for _ in 0..16 {
                let mut s = TcpStream::connect(&r3, addr).unwrap();
                s.write_all(b"f").await.unwrap();
                let mut buf = [0u8; 8];
                s.read(&mut buf).await.unwrap();
            }
        };
        fork2(serve, drive).await;
    });

    let trace = rt
        .observe()
        .trace_reader()
        .unwrap()
        .poll_events()
        .into_trace();
    let audit_report = audit(&trace);
    assert!(audit_report.passed(), "audit failed:\n{audit_report}");
    let report = rt.shutdown();
    assert!(
        report.faults_injected > 0,
        "rate 40% over dozens of readiness events must fire"
    );
    assert_eq!(report.leaked_suspensions, 0);
}
