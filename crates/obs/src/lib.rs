//! Self-hosted observability for the LHWS runtime: a tiny HTTP endpoint
//! served **by the runtime being observed**, over `lhws-net`.
//!
//! The exporter is deliberately dogfood: the accept loop, every scrape,
//! and every streaming-stats connection run as ordinary tasks on the
//! observed runtime, their socket waits suspended through the same epoll
//! reactor as the traffic being measured. If the scheduler can't hide
//! the observer's latency, the observer shows it.
//!
//! Endpoints (HTTP/1.x, newline-framed, every response `Connection:
//! close`):
//!
//! * `GET /metrics` — Prometheus text exposition
//!   ([`lhws_core::encode_prometheus`]) of the counter snapshot and
//!   registry gauges. Scrape it with `curl` or Prometheus directly.
//! * `GET /stats` — one JSON object: counters plus, when tracing is on,
//!   live suspension-latency histogram buckets and steal rates derived
//!   from an incremental [`TraceReader`] fold.
//! * `GET /stream?frames=N&interval_ms=M` — newline-delimited JSON, one
//!   `/stats`-shaped frame every `M` ms (default 500, max 10 s) for `N`
//!   frames (default until [`ObsServer::stop`]); close-delimited.
//!
//! The [`promtext`] module is the matching dependency-free parser /
//! validator for the exposition format, used by the CI smoke job and the
//! loadgen `--scrape` mode to reject malformed output (duplicate
//! families, non-monotonic counters).

#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws_core::trace::TraceReader;
use lhws_core::{
    simulate_latency, JoinHandle, LiveStats, MetricsSnapshot, Observer, Runtime, TraceStats,
};
use lhws_net::{LineReader, Reactor, TcpListener, TcpStream};
use parking_lot::Mutex;

pub mod promtext;

/// Ceiling on `interval_ms` so a stray query can't park a connection
/// task for minutes.
const MAX_INTERVAL_MS: u64 = 10_000;

/// Incremental trace fold shared by every `/stats` and `/stream`
/// connection: one reader, one [`LiveStats`], so concurrent scrapers see
/// one consistent accumulation instead of racing for events.
struct LiveFold {
    reader: TraceReader,
    stats: LiveStats,
    dropped: u64,
}

impl LiveFold {
    fn fold(&mut self) -> TraceStats {
        let batch = self.reader.poll_events();
        self.stats.observe(&batch.events);
        self.dropped += batch.dropped + batch.missed;
        self.stats.stats().clone()
    }
}

struct Shared {
    observer: Observer,
    fold: Mutex<Option<LiveFold>>,
    stop: AtomicBool,
    started: Instant,
}

/// The self-hosted metrics/stats endpoint. Bind with
/// [`serve`](ObsServer::serve); the accept loop and all connection
/// handlers run as tasks inside `rt`. Stop it with
/// [`stop`](ObsServer::stop) *before* `rt.shutdown()`, so its listener
/// wait is withdrawn cleanly instead of counted as a canceled I/O wait.
pub struct ObsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<io::Result<u64>>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsServer {
    /// Binds `addr` on `reactor` and spawns the accept loop onto `rt`.
    /// Pass port 0 to let the kernel pick; read it back with
    /// [`local_addr`](ObsServer::local_addr).
    pub fn serve<A: ToSocketAddrs>(
        rt: &Runtime,
        reactor: &Reactor,
        addr: A,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(reactor, addr)?;
        let addr = listener.local_addr()?;
        let observer = rt.observe();
        let fold = Mutex::new(observer.trace_reader().map(|reader| {
            let workers = reader.workers();
            LiveFold {
                reader,
                stats: LiveStats::new(workers),
                dropped: 0,
            }
        }));
        let shared = Arc::new(Shared {
            observer,
            fold,
            stop: AtomicBool::new(false),
            started: Instant::now(),
        });
        let acceptor = rt.spawn(accept_loop(listener, shared.clone()));
        Ok(ObsServer {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (for the scrape URL).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: raises the stop flag, wakes the accept loop
    /// with a throwaway self-connection, and joins the acceptor (which
    /// joins every live connection task). Returns the number of
    /// connections served. Call before `Runtime::shutdown`.
    pub fn stop(mut self, rt: &Runtime) -> u64 {
        self.shared.stop.store(true, Ordering::Release);
        // The acceptor is parked in `accept()`; readiness is its only
        // wake-up, so hand it one.
        let _ = std::net::TcpStream::connect(self.addr);
        match self.acceptor.take() {
            Some(h) => rt.block_on(h).unwrap_or(0),
            None => 0,
        }
    }
}

async fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> io::Result<u64> {
    let mut served = 0u64;
    let mut conns = Vec::new();
    loop {
        let (stream, _peer) = match listener.accept().await {
            Ok(pair) => pair,
            Err(_) if shared.stop.load(Ordering::Acquire) => break,
            Err(e) => return Err(e),
        };
        if shared.stop.load(Ordering::Acquire) {
            // The stop wake-up connection itself; nothing to serve.
            break;
        }
        served += 1;
        let shared = shared.clone();
        conns.push(lhws_core::spawn(async move {
            // Per-connection protocol errors close the connection; they
            // don't take the server down.
            let _ = serve_conn(stream, shared).await;
        }));
    }
    for c in conns {
        c.await;
    }
    Ok(served)
}

/// Reads one HTTP/1.x request head; returns the request target (path +
/// query) or `None` on a malformed or empty request.
async fn read_request(reader: &mut LineReader) -> io::Result<Option<String>> {
    let Some(line) = reader.read_line().await? else {
        return Ok(None);
    };
    let line = line.trim_end_matches('\r');
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t.to_string()),
        _ => return Ok(None),
    };
    if method != "GET" {
        return Ok(None);
    }
    // Drain headers until the blank line; their content is irrelevant.
    while let Some(h) = reader.read_line().await? {
        if h.trim_end_matches('\r').is_empty() {
            break;
        }
    }
    Ok(Some(target))
}

async fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).await?;
    stream.write_all(body.as_bytes()).await
}

async fn serve_conn(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    let mut reader = LineReader::new(stream);
    let Some(target) = read_request(&mut reader).await? else {
        return respond(
            reader.stream_mut(),
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "bad request\n",
        )
        .await;
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    match path {
        "/metrics" => match shared.observer.export_prometheus() {
            Some(body) => {
                respond(
                    reader.stream_mut(),
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                )
                .await
            }
            None => {
                respond(
                    reader.stream_mut(),
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "runtime is gone\n",
                )
                .await
            }
        },
        "/stats" => {
            let body = match stats_frame(&shared, 0) {
                Some(f) => f,
                None => {
                    return respond(
                        reader.stream_mut(),
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "runtime is gone\n",
                    )
                    .await
                }
            };
            respond(reader.stream_mut(), "200 OK", "application/json", &body).await
        }
        "/stream" => {
            let frames: u64 = query_param(query, "frames").unwrap_or(u64::MAX);
            let interval = Duration::from_millis(
                query_param(query, "interval_ms")
                    .unwrap_or(500)
                    .min(MAX_INTERVAL_MS),
            );
            // Close-delimited body: no Content-Length, the peer reads
            // until EOF.
            let head = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n";
            reader.stream_mut().write_all(head.as_bytes()).await?;
            let mut frame = 0u64;
            while frame < frames && !shared.stop.load(Ordering::Acquire) {
                let Some(mut line) = stats_frame(&shared, frame) else {
                    break;
                };
                line.push('\n');
                reader.stream_mut().write_all(line.as_bytes()).await?;
                frame += 1;
                if frame < frames {
                    simulate_latency(interval).await;
                }
            }
            Ok(())
        }
        _ => {
            respond(
                reader.stream_mut(),
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics, /stats, or /stream\n",
            )
            .await
        }
    }
}

fn query_param(query: &str, key: &str) -> Option<u64> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

/// One `/stats` JSON object. `None` once the runtime is gone.
fn stats_frame(shared: &Shared, frame: u64) -> Option<String> {
    let m = shared.observer.metrics()?;
    let trace = shared.fold.lock().as_mut().map(|f| (f.fold(), f.dropped));
    Some(encode_stats_json(
        frame,
        shared.started.elapsed(),
        &m,
        trace.as_ref().map(|(s, d)| (s, *d)),
    ))
}

fn push_kv(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
    out.push(',');
}

fn push_hist(out: &mut String, key: &str, h: &lhws_core::trace::LatencyHistogram) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":{\"count\":");
    out.push_str(&h.count().to_string());
    out.push_str(",\"sum_nanos\":");
    out.push_str(&h.sum_nanos().to_string());
    out.push_str(",\"buckets\":[");
    let mut first = true;
    for (le, count) in h.buckets().filter(|&(_, c)| c > 0) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('[');
        out.push_str(&le.to_string());
        out.push(',');
        out.push_str(&count.to_string());
        out.push(']');
    }
    out.push_str("]},");
}

/// Renders one streaming-stats frame. Hand-rolled JSON: flat keys, no
/// escaping needed (all values numeric), stable key order.
fn encode_stats_json(
    frame: u64,
    uptime: Duration,
    m: &MetricsSnapshot,
    trace: Option<(&TraceStats, u64)>,
) -> String {
    let mut o = String::with_capacity(1024);
    o.push('{');
    push_kv(&mut o, "frame", frame);
    push_kv(&mut o, "uptime_ms", uptime.as_millis() as u64);
    push_kv(&mut o, "polls", m.polls);
    push_kv(&mut o, "tasks_spawned", m.tasks_spawned);
    push_kv(&mut o, "steals_attempted", m.steals_attempted);
    push_kv(&mut o, "steals_succeeded", m.steals_succeeded);
    push_kv(&mut o, "suspensions", m.suspensions);
    push_kv(&mut o, "resumes", m.resumes);
    push_kv(&mut o, "unparks", m.unparks);
    push_kv(&mut o, "io_registrations", m.io_registrations);
    push_kv(&mut o, "io_readiness_events", m.io_readiness_events);
    push_kv(&mut o, "io_timeouts", m.io_timeouts);
    push_kv(&mut o, "live_deques", m.live_deques);
    push_kv(&mut o, "live_deques_high_water", m.live_deques_high_water);
    push_kv(&mut o, "max_deques_per_worker", m.max_deques_per_worker);
    let rate = if m.steals_attempted == 0 {
        0.0
    } else {
        m.steals_succeeded as f64 / m.steals_attempted as f64
    };
    o.push_str("\"steal_success_rate\":");
    o.push_str(&format!("{rate:.6}"));
    o.push(',');
    if let Some((stats, dropped)) = trace {
        push_kv(&mut o, "trace_suspensions", stats.suspensions);
        push_kv(&mut o, "trace_dropped", dropped);
        push_hist(&mut o, "suspend_to_enable", &stats.suspend_to_enable);
        push_hist(&mut o, "ready_to_exec", &stats.ready_to_exec);
        o.push_str("\"deque_high_water\":[");
        for (i, hw) in stats.deque_high_water.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&hw.to_string());
        }
        o.push_str("],");
    }
    // Trailing comma from the last push: replace with the close brace.
    if o.ends_with(',') {
        o.pop();
    }
    o.push('}');
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_is_balanced_and_flat() {
        let m = MetricsSnapshot::default();
        let s = encode_stats_json(3, Duration::from_millis(250), &m, None);
        assert!(s.starts_with("{\"frame\":3,\"uptime_ms\":250,"));
        assert!(s.ends_with('}'));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(s.contains("\"steal_success_rate\":0.000000"));
        assert!(!s.contains("trace_suspensions"), "no trace block when off");
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // TraceStats is #[non_exhaustive]
    fn stats_json_includes_trace_block() {
        let m = MetricsSnapshot::default();
        let mut stats = TraceStats::default();
        stats.suspensions = 2;
        stats.suspend_to_enable.record(100);
        stats.deque_high_water = vec![1, 2];
        let s = encode_stats_json(0, Duration::ZERO, &m, Some((&stats, 5)));
        assert!(s.contains("\"trace_suspensions\":2"));
        assert!(s.contains("\"trace_dropped\":5"));
        assert!(s.contains(
            "\"suspend_to_enable\":{\"count\":1,\"sum_nanos\":100,\"buckets\":[[128,1]]}"
        ));
        assert!(s.contains("\"deque_high_water\":[1,2]"));
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(query_param("frames=10&interval_ms=50", "frames"), Some(10));
        assert_eq!(
            query_param("frames=10&interval_ms=50", "interval_ms"),
            Some(50)
        );
        assert_eq!(query_param("frames=x", "frames"), None);
        assert_eq!(query_param("", "frames"), None);
    }
}
