//! Dependency-free parser/validator for the Prometheus text exposition
//! format (version 0.0.4), the consumer-side twin of
//! [`lhws_core::encode_prometheus`].
//!
//! Used by CI's obs-smoke job and the loadgen `--scrape` mode to reject
//! a malformed `/metrics` page outright: unknown line shapes, samples
//! without a `# TYPE`, duplicate or interleaved metric families,
//! duplicate series, unparsable values — and, across two scrapes,
//! counters that went backwards ([`check_counters_monotonic`]).

use std::collections::HashMap;

/// One parsed metric family: its `# TYPE`, optional `# HELP`, and every
/// sample line, in document order.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name (the `# TYPE` subject).
    pub name: String,
    /// Family kind: `counter`, `gauge`, `histogram`, `summary`, or
    /// `untyped`.
    pub kind: String,
    /// `# HELP` text, when present.
    pub help: Option<String>,
    /// Samples as `(series, value)`; the series includes any label set
    /// verbatim (`name{label="x"}`).
    pub samples: Vec<(String, f64)>,
}

/// Parses and validates an exposition document. Returns the families in
/// document order, or a description of the first violation.
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut families: Vec<Family> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut closed: HashMap<String, bool> = HashMap::new();

    // The family a series belongs to: strip labels, then the histogram /
    // summary per-series suffixes.
    fn family_of(series: &str) -> &str {
        let base = series.split('{').next().unwrap_or(series);
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stripped) = base.strip_suffix(suffix) {
                return stripped;
            }
        }
        base
    }

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: HELP without text"))?;
            match index.get(name) {
                Some(&i) => {
                    if families[i].help.is_some() {
                        return Err(format!("line {n}: duplicate HELP for {name}"));
                    }
                    families[i].help = Some(help.to_string());
                }
                None => {
                    index.insert(name.to_string(), families.len());
                    families.push(Family {
                        name: name.to_string(),
                        kind: "untyped".into(),
                        help: Some(help.to_string()),
                        samples: Vec::new(),
                    });
                }
            }
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: TYPE without kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown kind {kind:?} for {name}"));
            }
            match index.get(name) {
                Some(&i) => {
                    if families[i].kind != "untyped" {
                        return Err(format!("line {n}: duplicate TYPE for {name}"));
                    }
                    if !families[i].samples.is_empty() {
                        return Err(format!("line {n}: TYPE for {name} after its samples"));
                    }
                    families[i].kind = kind.to_string();
                }
                None => {
                    index.insert(name.to_string(), families.len());
                    families.push(Family {
                        name: name.to_string(),
                        kind: kind.to_string(),
                        help: None,
                        samples: Vec::new(),
                    });
                }
            }
        } else if let Some(rest) = line.strip_prefix('#') {
            // Plain comment lines are legal and skipped.
            let _ = rest;
        } else {
            // Sample: `<series> <value>[ <timestamp>]`.
            let mut parts = line.split_whitespace();
            let (series, value) = match (parts.next(), parts.next()) {
                (Some(s), Some(v)) => (s, v),
                _ => return Err(format!("line {n}: malformed sample {line:?}")),
            };
            let value: f64 = value
                .parse()
                .map_err(|_| format!("line {n}: unparsable value {value:?}"))?;
            let fam = family_of(series).to_string();
            let &i = index
                .get(&fam)
                .ok_or_else(|| format!("line {n}: sample {series} without # TYPE {fam}"))?;
            if closed.get(&fam).copied().unwrap_or(false) {
                return Err(format!(
                    "line {n}: samples for {fam} are interleaved with another family"
                ));
            }
            if families[i].samples.iter().any(|(s, _)| s == series) {
                return Err(format!("line {n}: duplicate series {series}"));
            }
            // Any family other than this one seen since? Mark all others
            // with samples as closed so a later re-appearance is flagged.
            for f in &families {
                if f.name != fam && !f.samples.is_empty() {
                    closed.insert(f.name.clone(), true);
                }
            }
            families[i].samples.push((series.to_string(), value));
        }
    }
    for f in &families {
        if f.samples.is_empty() {
            return Err(format!("family {} has metadata but no samples", f.name));
        }
    }
    Ok(families)
}

/// Checks that every counter series present in `earlier` is present in
/// `later` with a value at least as large. Run it over two consecutive
/// scrapes of the same process; a counter going backwards means the
/// exporter is broken (or the process silently restarted).
pub fn check_counters_monotonic(earlier: &[Family], later: &[Family]) -> Result<(), String> {
    let later_by_name: HashMap<&str, &Family> =
        later.iter().map(|f| (f.name.as_str(), f)).collect();
    for fam in earlier.iter().filter(|f| f.kind == "counter") {
        let Some(next) = later_by_name.get(fam.name.as_str()) else {
            return Err(format!("counter family {} vanished", fam.name));
        };
        for (series, value) in &fam.samples {
            let Some((_, newer)) = next.samples.iter().find(|(s, _)| s == series) else {
                return Err(format!("counter series {series} vanished"));
            };
            if newer < value {
                return Err(format!(
                    "counter {series} went backwards: {value} -> {newer}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_our_own_exporter_output() {
        let m = lhws_core::MetricsSnapshot::default();
        let text = lhws_core::encode_prometheus(&m, 2, Some(0));
        let families = parse(&text).expect("own output must validate");
        assert_eq!(families.len(), 24);
        assert!(families.iter().all(|f| f.help.is_some()));
        assert!(families.iter().all(|f| f.samples.len() == 1));
        let workers = families.iter().find(|f| f.name == "lhws_workers").unwrap();
        assert_eq!(
            (workers.kind.as_str(), workers.samples[0].1),
            ("gauge", 2.0)
        );
    }

    #[test]
    fn rejects_duplicate_family() {
        let text = "# TYPE a counter\na 1\n# TYPE a counter\na 2\n";
        let err = parse(text).unwrap_err();
        assert!(err.contains("duplicate TYPE"), "{err}");
    }

    #[test]
    fn rejects_duplicate_series_and_untyped_samples() {
        let err = parse("# TYPE a counter\na 1\na 2\n").unwrap_err();
        assert!(err.contains("duplicate series"), "{err}");
        let err = parse("a 1\n").unwrap_err();
        assert!(err.contains("without # TYPE"), "{err}");
    }

    #[test]
    fn rejects_interleaved_families() {
        let text = "# TYPE a counter\n# TYPE b counter\na 1\nb 1\na{x=\"1\"} 2\n";
        let err = parse(text).unwrap_err();
        assert!(err.contains("interleaved"), "{err}");
    }

    #[test]
    fn rejects_missing_trailing_newline_and_bad_values() {
        assert!(parse("# TYPE a counter\na 1").is_err());
        assert!(parse("# TYPE a counter\na one\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn histogram_series_map_to_their_family() {
        let text = "# TYPE lat histogram\nlat_bucket{le=\"1\"} 1\nlat_bucket{le=\"+Inf\"} 2\nlat_sum 3\nlat_count 2\n";
        let f = parse(text).expect("histogram series belong to the family");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].samples.len(), 4);
    }

    #[test]
    fn monotonic_check_catches_regression() {
        let a = parse("# TYPE a counter\n# TYPE g gauge\na 5\ng 9\n").unwrap();
        let b = parse("# TYPE a counter\n# TYPE g gauge\na 6\ng 1\n").unwrap();
        assert!(check_counters_monotonic(&a, &b).is_ok(), "gauges may fall");
        assert!(
            check_counters_monotonic(&b, &a).is_err(),
            "counters may not"
        );
        let gone = parse("# TYPE g gauge\ng 1\n").unwrap();
        assert!(check_counters_monotonic(&a, &gone).is_err());
    }
}
