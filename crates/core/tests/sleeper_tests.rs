//! Integration tests for the lock-free sleeper set: injected work must
//! always wake a parked worker (no lost-wakeup race), and wake-ups are
//! targeted — at most one unpark per injected task or resume batch, never
//! a broadcast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws_core::{join_all, simulate_latency, spawn, Config, Runtime};

/// An injected task always wakes a parked worker. The park timeout is
/// cranked to 500ms so the fallback cannot mask a lost wake-up: if the
/// unpark raced with parking and lost, the task would sit in the injector
/// for ~500ms; with the `prepare_park` → re-check → park handshake it must
/// start promptly. Repeated so a racy handshake would be caught.
#[test]
fn injected_task_always_wakes_a_parked_worker() {
    let rt = Runtime::new(
        Config::default().workers(8).park_micros(500_000), // fallback far beyond the assertion bound
    )
    .unwrap();
    let before = rt.metrics();

    for round in 0..30 {
        // Let every worker go to sleep.
        std::thread::sleep(Duration::from_millis(10));
        let t0 = Instant::now();
        let v = rt.block_on(async move { round * 2 });
        let took = t0.elapsed();
        assert_eq!(v, round * 2);
        assert!(
            took < Duration::from_millis(250),
            "round {round}: injected task took {took:?} — only the park \
             timeout fallback picked it up, so the wake-up was lost"
        );
    }

    let d = rt.metrics().since(&before);
    assert!(
        d.unparks >= 1,
        "injections into an idle runtime must go through the sleeper set"
    );
}

/// At most one unpark per injected task: injections into an 8-worker
/// runtime never broadcast. The seed runtime called `unpark_all` on every
/// inject (≈ 8 wake-ups each); the sleeper set wakes at most one.
#[test]
fn at_most_one_unpark_per_injected_task() {
    const ROUNDS: u64 = 50;
    let rt = Runtime::new(Config::default().workers(8)).unwrap();
    let before = rt.metrics();

    for _ in 0..ROUNDS {
        // Each `block_on` injects exactly one task (its body); the body
        // spawns nothing and incurs no latency, so no other wake-up
        // source runs.
        std::thread::sleep(Duration::from_millis(2));
        rt.block_on(async { std::hint::black_box(1u64) });
    }

    let d = rt.metrics().since(&before);
    assert!(
        d.unparks <= ROUNDS,
        "{} unparks for {ROUNDS} injections: inject wakes more than one \
         worker per task",
        d.unparks
    );
}

/// At most one unpark per resume *batch*: a wave of suspensions that all
/// expire in the same timer tick is delivered as few batches, each waking
/// at most one worker — far fewer wake-ups than resumed tasks.
#[test]
fn resume_batches_do_not_broadcast_unparks() {
    const TASKS: u64 = 400;
    let rt = Runtime::new(
        Config::default()
            .workers(8)
            // One coarse tick collects the whole wave into per-worker
            // batches.
            .timer_tick(Duration::from_millis(20)),
    )
    .unwrap();
    let before = rt.metrics();

    let total = rt.block_on(async {
        let hs: Vec<_> = (0..TASKS)
            .map(|_| {
                spawn(async {
                    simulate_latency(Duration::from_millis(5)).await;
                    1u64
                })
            })
            .collect();
        join_all(hs).await.into_iter().sum::<u64>()
    });
    assert_eq!(total, TASKS);

    let d = rt.metrics().since(&before);
    assert_eq!(d.resumes, TASKS);
    // Every unpark is caused by the one block_on injection or by a resume
    // batch; with an 8-worker runtime and one shard per worker there are
    // at most `workers` batches per tick, and the whole wave spans a
    // handful of ticks. A per-event (or broadcast) wake-up policy would
    // show hundreds.
    assert!(
        d.unparks < TASKS / 2,
        "{} unparks for {TASKS} resumed tasks: resume delivery is waking \
         per event, not per batch",
        d.unparks
    );
}

/// The wake-up is not just *some* unpark — the woken worker actually runs
/// the injected task even when every other worker stays parked forever
/// (park timeout of ~17 minutes disables the scavenging fallback
/// entirely).
#[test]
fn wakeup_is_sufficient_without_timeout_fallback() {
    let rt = Runtime::new(
        Config::default().workers(4).park_micros(1_000_000_000), // no fallback within test lifetime
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(20));

    let hits = Arc::new(AtomicU64::new(0));
    for i in 0..10 {
        let hits2 = hits.clone();
        let h = rt.spawn(async move {
            hits2.fetch_add(1, Ordering::Relaxed);
        });
        drop(h);
        let t0 = Instant::now();
        while hits.load(Ordering::Relaxed) != i + 1 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "injected task {i} never ran: lost wake-up with the park \
                 fallback disabled"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}
