//! Incremental trace-reader property tests, over the public API only.
//!
//! The reader plane's contract ([`Observer::trace_reader`]) is exactness
//! under concurrency: live polls plus the shutdown drain's leftovers
//! cover every recorded event exactly once; overflow and drain races are
//! *accounted* (per reader, as `dropped`/`missed`) rather than silently
//! lost; independent readers have independent cursors; and an audit fed
//! incrementally during the run reaches the same verdict as the post-hoc
//! auditor over the complete trace.

use std::time::{Duration, Instant};

use lhws_core::trace::{EventKind, TraceEvent};
use lhws_core::{join_all, simulate_latency, AuditState, FaultPlan, Runtime, Trace};

const CAPACITY: usize = 1 << 16;
const TASKS: u64 = 64;

fn latency_workload(rt: &Runtime) -> Vec<lhws_core::JoinHandle<u64>> {
    (0..TASKS)
        .map(|i| {
            rt.spawn(async move {
                simulate_latency(Duration::from_micros(200 + (i % 7) * 100)).await;
                i
            })
        })
        .collect()
}

fn count(events: &[TraceEvent], pred: impl Fn(&EventKind) -> bool) -> u64 {
    events.iter().filter(|e| pred(&e.kind)).count() as u64
}

fn suspends(events: &[TraceEvent]) -> u64 {
    count(events, |k| matches!(k, EventKind::Suspend { .. }))
}

/// Deadline-bounded spin so a regression fails loudly instead of hanging.
fn deadline() -> Instant {
    Instant::now() + Duration::from_secs(30)
}

// ---------------------------------------------------------------------
// Exactly-once under a concurrent producer.
// ---------------------------------------------------------------------

#[test]
fn reader_sees_every_event_exactly_once_under_concurrent_load() {
    let rt = Runtime::builder()
        .workers(4)
        .trace_capacity(CAPACITY)
        .build()
        .unwrap();
    let mut reader = rt.observe().trace_reader().expect("tracing enabled");

    // Poll concurrently with the producers from this thread while the
    // workload suspends and resumes on the workers.
    let handles = latency_workload(&rt);
    let mut live: Vec<TraceEvent> = Vec::new();
    let mut lost = 0u64;
    let stop = deadline();
    while rt.metrics().resumes < TASKS {
        let batch = reader.poll_events();
        lost += batch.dropped + batch.missed;
        live.extend(batch.events);
        assert!(Instant::now() < stop, "workload failed to finish");
        std::thread::sleep(Duration::from_micros(200));
    }
    let sum: u64 = rt.block_on(join_all(handles)).into_iter().sum();
    assert_eq!(sum, (0..TASKS).sum::<u64>());

    // The shutdown drain returns exactly what the live polls did not
    // consume; together they are the complete run.
    let report = rt.shutdown();
    let leftover = report.trace.expect("tracing enabled");
    assert_eq!(lost, 0, "the ring was sized for the workload");
    assert_eq!(leftover.dropped, 0);

    let mut events = live;
    events.extend(leftover.events.iter().copied());
    events.sort_by_key(|e| e.ts);

    // Exactly-once, checked against the independent metrics plane: a
    // duplicated event would overshoot the counter, a lost one would
    // undershoot it.
    assert_eq!(suspends(&events), report.metrics.suspensions);
    assert_eq!(suspends(&events), TASKS);
    let delivered: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Resume { batch_len, .. } => Some(batch_len as u64),
            _ => None,
        })
        .sum();
    assert_eq!(delivered, report.metrics.resumes);
    assert_eq!(
        count(&events, |k| matches!(k, EventKind::Steal { .. })),
        report.metrics.steals_attempted
    );

    // And the combined stream is coherent end to end: the full auditor
    // accepts it as if it had been one post-hoc drain.
    let combined = Trace {
        events,
        dropped: 0,
        workers: leftover.workers,
    };
    let audit = combined.audit();
    assert!(audit.passed(), "combined stream must audit clean:\n{audit}");
    assert_eq!(audit.unresolved, 0);
}

// ---------------------------------------------------------------------
// Overflow and drain races are accounted, never silent.
// ---------------------------------------------------------------------

#[test]
fn overflow_during_slow_reads_is_counted_not_lost() {
    // A ring far too small for the workload, and a reader that never
    // polls while the run is hot: producers must drop (drop-newest), and
    // every drop must surface in the reader's accounting.
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(16)
        .build()
        .unwrap();
    let mut reader = rt.observe().trace_reader().expect("tracing enabled");
    let handles = latency_workload(&rt);
    let sum: u64 = rt.block_on(join_all(handles)).into_iter().sum();
    assert_eq!(sum, (0..TASKS).sum::<u64>());

    // The destructive shutdown drain consumes what little the rings
    // held. The lagging reader's next poll must account for both kinds
    // of loss: producer overflow (`dropped`) and the drain racing past
    // its cursor (`missed`).
    let report = rt.shutdown();
    let leftover = report.trace.expect("tracing enabled");
    assert!(
        leftover.dropped > 0,
        "a 16-slot ring must overflow under {TASKS} suspending tasks"
    );

    let batch = reader.poll_events();
    assert_eq!(
        batch.dropped, leftover.dropped,
        "every producer-side drop is surfaced to the reader"
    );
    assert_eq!(
        batch.missed,
        leftover.events.len() as u64,
        "every event the drain consumed past this cursor counts as missed"
    );
    assert!(batch.events.is_empty(), "the drain left nothing behind");

    // Folded into a trace, the loss makes the auditor refuse to certify
    // rather than pass on absence of evidence.
    let audit = batch.into_trace().audit();
    assert!(audit.inconclusive, "loss must make the audit inconclusive");
    assert!(!audit.passed());
}

// ---------------------------------------------------------------------
// Independent cursors.
// ---------------------------------------------------------------------

#[test]
fn two_readers_poll_independent_cursors() {
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(CAPACITY)
        .build()
        .unwrap();
    let mut r1 = rt.observe().trace_reader().expect("tracing enabled");
    let mut r2 = rt.observe().trace_reader().expect("tracing enabled");

    let handles = latency_workload(&rt);
    rt.block_on(join_all(handles));

    // Exhaust r1 first — including the reclaim its polls trigger — then
    // check r2 still sees the whole workload: slots are only freed
    // behind the slowest cursor, so a fast co-reader cannot starve a
    // slow one.
    let b1 = r1.poll_events();
    assert_eq!((b1.dropped, b1.missed), (0, 0));
    assert_eq!(suspends(&b1.events), TASKS);

    let b2 = r2.poll_events();
    assert_eq!((b2.dropped, b2.missed), (0, 0));
    assert_eq!(
        suspends(&b2.events),
        TASKS,
        "r1's polls must not consume r2's view"
    );

    // Cursors advance per reader: neither sees the workload twice.
    assert_eq!(suspends(&r1.poll_events().events), 0);
    assert_eq!(suspends(&r2.poll_events().events), 0);
}

// ---------------------------------------------------------------------
// Continuous audit == post-hoc audit.
// ---------------------------------------------------------------------

#[test]
fn continuous_audit_matches_posthoc_audit_on_the_same_run() {
    // One chaotic run, observed two ways at once: an AuditState fed
    // batch-by-batch *while the faults fire*, and the standard post-hoc
    // auditor over the reassembled complete stream. Both views must
    // agree exactly — verdict and every count.
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(CAPACITY)
        .fault_plan(FaultPlan::chaos(1234))
        .build()
        .unwrap();
    let mut reader = rt.observe().trace_reader().expect("tracing enabled");
    let mut state = AuditState::new(reader.workers());
    let mut all_events: Vec<TraceEvent> = Vec::new();

    let handles = latency_workload(&rt);
    let stop = deadline();
    while rt.metrics().resumes < TASKS {
        let batch = reader.poll_events();
        state.observe(&batch.events);
        state.observe_dropped(batch.dropped + batch.missed);
        all_events.extend(batch.events);
        assert!(Instant::now() < stop, "chaos workload failed to finish");
        std::thread::sleep(Duration::from_micros(200));
    }
    rt.block_on(join_all(handles));

    let report = rt.shutdown();
    assert!(report.poisoned_worker.is_none());
    let leftover = report.trace.expect("tracing enabled");
    assert_eq!(leftover.dropped, 0);
    state.observe(&leftover.events);
    all_events.extend(leftover.events.iter().copied());

    let live = state.report();
    all_events.sort_by_key(|e| e.ts);
    let posthoc = Trace {
        events: all_events,
        dropped: 0,
        workers: leftover.workers,
    }
    .audit();

    assert!(
        posthoc.passed(),
        "post-hoc audit rejected the run:\n{posthoc}"
    );
    assert!(live.passed(), "continuous audit diverged:\n{live}");
    assert_eq!(live.suspensions, posthoc.suspensions);
    assert_eq!(live.readies, posthoc.readies);
    assert_eq!(live.execs, posthoc.execs);
    assert_eq!(live.unresolved, posthoc.unresolved);
    assert_eq!(live.max_inflight, posthoc.max_inflight);
    assert_eq!(live.deque_high_water, posthoc.deque_high_water);
    assert_eq!(live.violation_count, 0);
}

#[test]
fn live_audit_verdict_matches_posthoc_across_runs_with_same_seed() {
    // The `LiveAudit` convenience path, across two runs of the same
    // seeded fault schedule: the verdict of an audit streamed during the
    // chaos soak matches the verdict of the classic shutdown-time audit.
    let seed = 77u64;

    // Run A: continuous — poll during the run, fold the drain's
    // leftovers at the end.
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(CAPACITY)
        .fault_plan(FaultPlan::chaos(seed))
        .build()
        .unwrap();
    let mut la = rt.observe().audit_incremental().expect("tracing enabled");
    let handles = latency_workload(&rt);
    let stop = deadline();
    while rt.metrics().resumes < TASKS {
        la.poll();
        assert!(Instant::now() < stop, "chaos workload failed to finish");
        std::thread::sleep(Duration::from_micros(200));
    }
    rt.block_on(join_all(handles));
    let report = rt.shutdown();
    la.observe_trace(&report.trace.expect("tracing enabled"));
    let live = la.report();

    // Run B: classic — same seed, audit only after shutdown.
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(CAPACITY)
        .fault_plan(FaultPlan::chaos(seed))
        .build()
        .unwrap();
    let handles = latency_workload(&rt);
    rt.block_on(join_all(handles));
    let posthoc = rt.shutdown().trace.expect("tracing enabled").audit();

    assert!(
        posthoc.passed(),
        "post-hoc audit rejected seed {seed}:\n{posthoc}"
    );
    assert!(
        live.passed(),
        "continuous audit rejected seed {seed}:\n{live}"
    );
    assert_eq!(live.unresolved, 0);
    assert_eq!(posthoc.unresolved, 0);
    assert_eq!(
        live.suspensions, posthoc.suspensions,
        "the workload's suspension count is seed-stable"
    );
}
