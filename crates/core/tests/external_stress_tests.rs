//! Off-worker completion stress: external threads firing [`Completer`]s
//! concurrently with deadline expiry and runtime shutdown. Pins the
//! exactly-one-settle guarantee and the completer-drop orderings that the
//! I/O reactor relies on (a reactor thread is just another external
//! completer as far as the scheduler is concerned).

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use lhws_core::{
    external_op, join_all, Canceled, Config, DeadlineExt, LatencyMode, OpError, Runtime,
};

fn hide_rt(workers: usize) -> Runtime {
    Runtime::new(Config::default().workers(workers).mode(LatencyMode::Hide)).unwrap()
}

struct Noop;
impl Wake for Noop {
    fn wake(self: Arc<Self>) {}
}

fn poll_once<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
    let waker = Waker::from(Arc::new(Noop));
    let mut cx = Context::from_waker(&waker);
    Pin::new(fut).poll(&mut cx)
}

/// N external threads race completers against armed deadlines: for every
/// operation, the task's observed outcome agrees with the completer's
/// reported settle-race result, and the counters balance at shutdown.
#[test]
fn concurrent_completers_vs_deadlines_settle_exactly_once() {
    const OPS: usize = 64;
    const FIRERS: usize = 4;
    let rt = hide_rt(2);

    let mut completers = Vec::with_capacity(OPS);
    let mut handles = Vec::with_capacity(OPS);
    for i in 0..OPS {
        let (c, op) = external_op::<u64>();
        completers.push(Some(c));
        // Half the deadlines are tight enough that many expire before
        // their completer fires; the other half comfortably lose.
        let timeout = Duration::from_millis(if i % 2 == 0 { 2 } else { 500 });
        handles.push(rt.spawn(async move {
            match op.with_timeout(timeout).await {
                Ok(v) => (true, v),
                Err(OpError::TimedOut) => (false, 0),
                Err(OpError::Canceled) => panic!("op {i}: nothing cancels in this test"),
            }
        }));
    }

    // Fire every completer from external threads, with enough jitter that
    // the tight deadlines genuinely race the completions.
    let firers: Vec<_> = (0..FIRERS)
        .map(|f| {
            let batch: Vec<(usize, lhws_core::Completer<u64>)> = completers
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| i % FIRERS == f)
                .map(|(i, c)| (i, c.take().unwrap()))
                .collect();
            std::thread::spawn(move || {
                let mut won = Vec::new();
                for (i, c) in batch {
                    std::thread::sleep(Duration::from_micros(300));
                    won.push((i, c.complete(i as u64 + 1)));
                }
                won
            })
        })
        .collect();
    let mut won = [false; OPS];
    for t in firers {
        for (i, w) in t.join().unwrap() {
            won[i] = w;
        }
    }

    let outcomes = rt.block_on(async move { join_all(handles).await });
    let mut timed_out = 0;
    for (i, (got_value, v)) in outcomes.into_iter().enumerate() {
        // Exactly-one-settle: the waiter saw Ok(v) if and only if the
        // completer reported winning the race, and the value is intact.
        assert_eq!(
            got_value, won[i],
            "op {i}: task outcome disagrees with completer's settle result"
        );
        if got_value {
            assert_eq!(v, i as u64 + 1);
        } else {
            timed_out += 1;
        }
    }
    let report = rt.shutdown();
    assert_eq!(report.leaked_suspensions, 0, "unclean: {report:?}");
    assert_eq!(
        report.metrics.suspensions, report.metrics.resumes,
        "every suspension resumed exactly once ({timed_out}/{OPS} timed out)"
    );
}

/// Completers fired from external threads while the runtime is being shut
/// down: never hangs, never double-settles, and whatever was still parked
/// is accounted as leaked rather than lost.
#[test]
fn completers_racing_shutdown_stay_consistent() {
    const OPS: usize = 32;
    for round in 0..4u64 {
        let rt = hide_rt(2);
        let mut completers = Vec::with_capacity(OPS);
        let mut handles = Vec::with_capacity(OPS);
        for _ in 0..OPS {
            let (c, op) = external_op::<u64>();
            completers.push(c);
            handles.push(rt.spawn(op));
        }
        drop(handles);
        // Let some tasks reach their parked state before racing.
        std::thread::sleep(Duration::from_millis(2 + round));
        let firer = std::thread::spawn(move || {
            for (i, c) in completers.into_iter().enumerate() {
                c.complete(i as u64);
            }
        });
        let report = rt.shutdown();
        firer.join().unwrap();
        assert!(
            report.leaked_suspensions <= OPS as u64,
            "round {round}: {report:?}"
        );
        assert!(
            report.poisoned_worker.is_none(),
            "round {round}: {report:?}"
        );
    }
}

/// A completer dropped from an external thread while the runtime runs:
/// the cancellation is a real resume event — the waiter observes
/// `Err(Canceled)` and the ledger stays balanced.
#[test]
fn completer_drop_from_external_thread_cancels_cleanly() {
    let rt = hide_rt(2);
    let (c, op) = external_op::<u64>();
    let h = rt.spawn(op);
    let dropper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        drop(c); // settles Err(Canceled) from off-worker
    });
    let got = rt.block_on(h);
    assert_eq!(got, Err(Canceled));
    dropper.join().unwrap();
    let report = rt.shutdown();
    assert_eq!(report.leaked_suspensions, 0, "unclean: {report:?}");
    assert_eq!(report.metrics.suspensions, report.metrics.resumes);
}

/// Hard shutdown with a suspension in flight, then the completer dropped
/// *after* the workers have stopped: the drop settles safely (no panic),
/// and the undeliverable resume is reported as leaked — the ordering the
/// driver protocol exists to avoid (drivers drain *before* workers stop).
#[test]
fn completer_drop_after_shutdown_is_safe_and_reported() {
    let rt = hide_rt(2);
    let (c, op) = external_op::<u64>();
    let h = rt.spawn(op);
    // Wait until the task has parked its suspension.
    for _ in 0..200 {
        if rt.metrics().suspensions > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(rt.metrics().suspensions > 0, "task never parked");
    drop(h);
    let report = rt.shutdown();
    assert_eq!(
        report.leaked_suspensions, 1,
        "the in-flight wait is cut off: {report:?}"
    );
    // Workers are gone; the settle must still be safe.
    drop(c);
}

/// A completer dropped after shutdown with the op still held: a later
/// off-runtime poll observes `Err(Canceled)` — the op is never stranded.
#[test]
fn completer_drop_after_shutdown_later_poll_sees_canceled() {
    let rt = hide_rt(1);
    let (c, mut op) = external_op::<u64>();
    rt.shutdown();
    drop(c); // no runtime, no waiter: settles in place
    assert_eq!(poll_once(&mut op), Poll::Ready(Err(Canceled)));
}
