//! Chaos-layer integration tests: deterministic fault injection, runtime
//! supervision, deadline-aware external ops, and the trace auditor,
//! exercised end to end on real runtimes.
//!
//! The fault layer's promise is twofold: with a fixed seed the fault
//! *schedule* is a pure function (the k-th visit of a site always gets the
//! same decision), and no injected fault — delays, reorders, steal storms,
//! spurious wakes, dropped unparks, forced deque switches — may break a
//! scheduler invariant. These tests run chaotic workloads and let the
//! trace auditor ([`lhws_core::audit`]) hold the line.

use std::time::{Duration, Instant};

use lhws_core::channel::{mpsc, oneshot};
use lhws_core::{
    external_op, join_all, simulate_latency, DeadlineExt, FaultPlan, Runtime, RuntimeError,
};

const TRACE_CAPACITY: usize = 1 << 17;

fn wait_until(deadline_secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

// ---------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------

#[test]
fn fault_schedule_is_a_pure_function_of_the_seed() {
    // Two independently constructed plans with the same seed agree on
    // every decision; a different seed diverges. This is the property
    // that makes a chaos run's fault schedule bit-for-bit reproducible.
    let a = FaultPlan::chaos(42);
    let b = FaultPlan::chaos(42);
    assert_eq!(a.schedule_digest(10_000), b.schedule_digest(10_000));
    assert_ne!(
        a.schedule_digest(10_000),
        FaultPlan::chaos(43).schedule_digest(10_000)
    );
}

// ---------------------------------------------------------------------
// Chaos soak: the full plan, audited.
// ---------------------------------------------------------------------

fn chaos_run(seed: u64) -> (u64, lhws_core::AuditReport) {
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(TRACE_CAPACITY)
        .fault_plan(FaultPlan::chaos(seed))
        .build()
        .unwrap();
    let sum = rt.block_on(async {
        let handles: Vec<_> = (0..64u64)
            .map(|i| {
                lhws_core::spawn(async move {
                    simulate_latency(Duration::from_micros(200 + (i % 7) * 100)).await;
                    i
                })
            })
            .collect();
        join_all(handles).await.into_iter().sum::<u64>()
    });
    let report = rt.shutdown();
    assert!(report.poisoned_worker.is_none());
    let audit = report.trace.expect("tracing enabled").audit();
    (sum, audit)
}

#[test]
fn chaos_plan_preserves_results_and_audits_clean() {
    let expect: u64 = (0..64).sum();
    for seed in [1u64, 7, 1234] {
        // Two runs per seed: the faults are chaotic but the invariants —
        // and the computed result — must hold every time.
        for round in 0..2 {
            let (sum, audit) = chaos_run(seed);
            assert_eq!(sum, expect, "seed {seed} round {round}: wrong result");
            assert!(
                audit.passed(),
                "seed {seed} round {round}: auditor rejected the trace:\n{audit}"
            );
            assert_eq!(
                audit.unresolved, 0,
                "seed {seed} round {round}: a suspension never resumed"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Supervision: worker-loop panics poison the runtime instead of hanging.
// ---------------------------------------------------------------------

#[test]
fn worker_panic_unblocks_try_block_on() {
    // A worker's scheduler loop panics mid-run while block_on waits on an
    // external op that will never complete. Without supervision this
    // hangs forever; with it, the error surfaces within roughly a park
    // interval of the poison.
    let rt = Runtime::builder()
        .workers(2)
        .fault_plan(FaultPlan::new(11).worker_panic_after(50))
        .build()
        .unwrap();
    let (completer, op) = external_op::<u32>();
    let start = Instant::now();
    let err = rt
        .try_block_on(op)
        .expect_err("the runtime was poisoned; the blocked call must fail");
    assert!(
        matches!(err, RuntimeError::WorkerPanicked { .. }),
        "unexpected error: {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "poison took too long to surface: {:?}",
        start.elapsed()
    );
    drop(completer);
    let report = rt.shutdown();
    assert!(report.poisoned_worker.is_some());
    assert_eq!(report.faults_injected, 1, "exactly one worker-loop panic");
}

#[test]
fn try_block_on_on_a_healthy_runtime_returns_ok() {
    let rt = Runtime::builder().workers(2).build().unwrap();
    let got = rt.try_block_on(async {
        simulate_latency(Duration::from_millis(1)).await;
        7u32
    });
    assert_eq!(got.unwrap(), 7);
}

#[test]
fn injected_task_panic_surfaces_at_join_without_poisoning() {
    // task_panic at 100%: every spawned task panics on first poll. The
    // panic takes the normal CatchUnwind path — it propagates through the
    // join, and the *workers* stay healthy.
    let rt = Runtime::builder()
        .workers(2)
        .fault_plan(FaultPlan::new(3).task_panic(1_000_000))
        .build()
        .unwrap();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.block_on(async {
            let h = lhws_core::spawn(async { 42u32 });
            h.await
        })
    }));
    assert!(caught.is_err(), "the injected panic reaches the join point");
    let report = rt.shutdown();
    assert!(
        report.poisoned_worker.is_none(),
        "a task panic must not poison the runtime"
    );
    assert!(report.faults_injected >= 1);
}

// ---------------------------------------------------------------------
// Panic-in-task coverage across every suspension path (timer, channel,
// external op): counters stay balanced and the trace audits clean.
// ---------------------------------------------------------------------

#[test]
fn panics_after_each_suspension_path_balance_and_audit_clean() {
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(TRACE_CAPACITY)
        .build()
        .unwrap();

    // Timer path: suspend on a latency, resume, panic.
    let _h1 = rt.spawn(async {
        simulate_latency(Duration::from_millis(2)).await;
        panic!("panic after timer suspension");
    });
    // Channel path: suspend on an empty mpsc, resume on send, panic.
    let (tx, mut rx) = mpsc::<u32>();
    let _h2 = rt.spawn(async move {
        let _ = rx.recv().await;
        panic!("panic after channel suspension");
    });
    // External-op path: suspend on registration, resume on completion,
    // panic.
    let (completer, op) = external_op::<u32>();
    let _h3 = rt.spawn(async move {
        let _ = op.await;
        panic!("panic after external-op suspension");
    });

    // All three must be parked before we fulfill them, or the channel and
    // op paths would complete without ever suspending.
    assert!(
        wait_until(10, || rt.metrics().suspensions >= 3),
        "tasks failed to suspend: {:?}",
        rt.metrics()
    );
    tx.send(1).unwrap();
    assert!(completer.complete(2), "first settle wins");

    // Every suspension resumes even though the resumed tasks then panic.
    assert!(
        wait_until(10, || {
            let m = rt.metrics();
            m.resumes >= m.suspensions && m.suspensions >= 3
        }),
        "resumes never balanced: {:?}",
        rt.metrics()
    );

    let report = rt.shutdown();
    assert_eq!(report.metrics.suspensions, report.metrics.resumes);
    assert_eq!(report.leaked_suspensions, 0);
    assert!(report.poisoned_worker.is_none());
    let audit = report.trace.expect("tracing enabled").audit();
    assert!(audit.passed(), "auditor rejected the trace:\n{audit}");
    assert_eq!(audit.unresolved, 0);
}

// ---------------------------------------------------------------------
// The resume_path flake, pinned: an already-expired deadline must still
// register its suspension (the lost-registration race).
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_still_registers_on_worker() {
    // Reproduces the 47999/48000 "every task registered once" flake
    // deterministically: the deadline is already past at first poll
    // (in the wild, OS preemption between deadline computation and poll).
    // The fix registers anyway — the timer clamps past deadlines to its
    // next tick — so no registration is ever silently skipped.
    const N: u64 = 16;
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(TRACE_CAPACITY)
        .build()
        .unwrap();
    rt.block_on(async {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                lhws_core::spawn(async {
                    lhws_core::latency_until(Instant::now() - Duration::from_millis(1)).await;
                })
            })
            .collect();
        join_all(handles).await;
    });
    let report = rt.shutdown();
    assert!(
        report.metrics.suspensions >= N,
        "an expired-at-first-poll latency skipped its registration: {:?}",
        report.metrics
    );
    assert_eq!(report.metrics.suspensions, report.metrics.resumes);
    let audit = report.trace.expect("tracing enabled").audit();
    assert!(audit.passed(), "auditor rejected the trace:\n{audit}");
}

// ---------------------------------------------------------------------
// Shutdown with pending suspensions and external ops.
// ---------------------------------------------------------------------

#[test]
fn shutdown_reports_leaked_suspensions_and_canceled_ops() {
    const N: u64 = 8;
    let rt = Runtime::builder().workers(2).build().unwrap();
    let handles: Vec<_> = (0..N)
        .map(|_| {
            rt.spawn(async {
                simulate_latency(Duration::from_secs(60)).await;
            })
        })
        .collect();
    assert!(
        wait_until(10, || rt.metrics().suspensions >= N),
        "tasks failed to suspend: {:?}",
        rt.metrics()
    );
    drop(handles);
    let report = rt.shutdown();
    assert_eq!(
        report.leaked_suspensions, N,
        "each parked task is one leaked suspension"
    );
    assert_eq!(
        report.canceled_ops, N,
        "each resident timer entry is canceled, deterministically"
    );
    assert!(report.poisoned_worker.is_none());
}

#[test]
fn shutdown_cancels_pending_deadline_ops() {
    let rt = Runtime::builder().workers(2).build().unwrap();
    let (completer, op) = external_op::<u32>();
    let h = rt.spawn(async move {
        // A deadline far in the future: shutdown must cancel it (rather
        // than deliver it), and the op resolves as canceled, not hung.
        op.with_timeout(Duration::from_secs(3600)).await
    });
    assert!(
        wait_until(10, || rt.metrics().suspensions >= 1),
        "op failed to suspend"
    );
    drop(h);
    drop(completer); // cancels the op, resuming the task
    assert!(wait_until(10, || {
        let m = rt.metrics();
        m.resumes >= m.suspensions
    }));
    let report = rt.shutdown();
    assert_eq!(report.leaked_suspensions, 0);
    assert_eq!(
        report.canceled_ops, 1,
        "the armed deadline callback is canceled at shutdown"
    );
}

// ---------------------------------------------------------------------
// Targeted single-fault runs: each knob alone, audited.
// ---------------------------------------------------------------------

fn single_fault_run(plan: FaultPlan) -> lhws_core::AuditReport {
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(TRACE_CAPACITY)
        .fault_plan(plan)
        .build()
        .unwrap();
    let out = rt.block_on(async {
        let handles: Vec<_> = (0..32u64)
            .map(|i| {
                lhws_core::spawn(async move {
                    simulate_latency(Duration::from_micros(300)).await;
                    i * 2
                })
            })
            .collect();
        join_all(handles).await.into_iter().sum::<u64>()
    });
    assert_eq!(out, (0..32u64).map(|i| i * 2).sum::<u64>());
    let report = rt.shutdown();
    assert_eq!(report.metrics.suspensions, report.metrics.resumes);
    report.trace.expect("tracing enabled").audit()
}

#[test]
fn spurious_wakes_alone_audit_clean() {
    let audit = single_fault_run(FaultPlan::new(21).spurious_wake(500_000));
    assert!(audit.passed(), "{audit}");
}

#[test]
fn forced_deque_switches_alone_audit_clean() {
    let audit = single_fault_run(FaultPlan::new(22).deque_switch(500_000));
    assert!(audit.passed(), "{audit}");
}

#[test]
fn steal_storms_alone_audit_clean() {
    let audit = single_fault_run(FaultPlan::new(23).steal_fail(800_000));
    assert!(audit.passed(), "{audit}");
}

#[test]
fn delayed_and_reordered_resumes_alone_audit_clean() {
    let audit = single_fault_run(
        FaultPlan::new(24)
            .resume_delay(400_000, Duration::from_micros(500))
            .resume_reorder(1_000_000),
    );
    assert!(audit.passed(), "{audit}");
}

#[test]
fn oneshot_deadline_under_chaos_still_settles_exactly_once() {
    // A hostile thread completes the oneshot with jitter while a short
    // deadline races it: exactly one side wins, every time.
    let rt = Runtime::builder()
        .workers(2)
        .fault_plan(FaultPlan::chaos(77))
        .build()
        .unwrap();
    for i in 0..20u64 {
        let (tx, rx) = oneshot::<u64>();
        let hostile = std::thread::spawn(move || {
            // Jitter derived from the loop index: sometimes before the
            // deadline, sometimes after.
            std::thread::sleep(Duration::from_micros((i % 5) * 400));
            tx.send(i);
        });
        let got = rt.block_on(async move { rx.with_timeout(Duration::from_millis(1)).await });
        hostile.join().unwrap();
        // Either the send won (the value) or the deadline did (TimedOut);
        // a canceled verdict would mean the settle protocol lost an edge.
        match got {
            Ok(v) => assert_eq!(v, i),
            Err(lhws_core::OpError::TimedOut) => {}
            Err(other) => panic!("iteration {i}: unexpected verdict {other:?}"),
        }
    }
    let report = rt.shutdown();
    assert_eq!(report.metrics.suspensions, report.metrics.resumes);
}
