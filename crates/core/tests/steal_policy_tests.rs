//! Integration tests for the steal-policy layer: victim affinity,
//! adaptive batching, and the `AffinityStale` chaos fault.

use lhws_core::{join_all, spawn, FaultPlan, Runtime, StealPolicy};

/// Spawns `n` trivial tasks from one producer task (building one deep
/// deque for thieves to batch against) and sums the results.
fn scatter(rt: &Runtime, n: u64) -> u64 {
    rt.block_on(async move {
        let handles: Vec<_> = (0..n).map(|i| spawn(async move { i })).collect();
        join_all(handles).await.into_iter().sum()
    })
}

fn expected(n: u64) -> u64 {
    n * (n - 1) / 2
}

#[test]
fn affinity_policy_completes_and_accounts_attempts() {
    let rt = Runtime::builder()
        .workers(4)
        .steal_policy(StealPolicy::Affinity)
        .build()
        .unwrap();
    for _ in 0..5 {
        assert_eq!(scatter(&rt, 2_000), expected(2_000));
    }
    let m = rt.metrics();
    // Every attempt resolves through exactly one of the affinity chain's
    // terminals: a cached/shard hit or the uniform fallback (misses along
    // the chain end in the fallback).
    assert!(
        m.steal_affinity_hits + m.steal_fallbacks <= m.steals_attempted,
        "hits {} + fallbacks {} exceed attempts {}",
        m.steal_affinity_hits,
        m.steal_fallbacks,
        m.steals_attempted
    );
    // Each worker's first-ever attempt has an empty cache, so any steal
    // activity at all implies fallbacks were taken.
    if m.steals_attempted > 0 {
        assert!(m.steal_fallbacks > 0, "{m}");
    }
}

#[test]
fn affinity_stale_fault_forces_the_fallback_path() {
    // With the cache poisoned on every consult, the cached-victim and
    // same-shard paths can never produce a hit: every attempt must run
    // the uniform fallback.
    let rt = Runtime::builder()
        .workers(4)
        .steal_policy(StealPolicy::Affinity)
        .fault_plan(FaultPlan::new(9).affinity_stale(1_000_000))
        .build()
        .unwrap();
    for _ in 0..5 {
        assert_eq!(scatter(&rt, 2_000), expected(2_000));
    }
    let m = rt.metrics();
    assert!(m.steals_attempted > 0, "workload never stole: {m}");
    assert_eq!(
        m.steal_affinity_hits, 0,
        "poisoned cache must never serve a hit: {m}"
    );
    assert_eq!(
        m.steal_fallbacks, m.steals_attempted,
        "every attempt must fall back: {m}"
    );
}

#[test]
fn uniform_steal_half_lands_batches() {
    // One producer builds a deep deque; three thieves with a batch cap
    // of 8 must claim multi-task batches from it.
    let rt = Runtime::builder()
        .workers(4)
        .steal_policy(StealPolicy::Uniform)
        .steal_batch_limit(8)
        .trace_capacity(1 << 16)
        .build()
        .unwrap();
    for _ in 0..5 {
        assert_eq!(scatter(&rt, 4_000), expected(4_000));
    }
    let m = rt.metrics();
    assert!(
        m.steal_batch_tasks >= 2,
        "deep-deque run should land at least one multi-task batch: {m}"
    );
    // The StealBatch trace stream agrees with the counter when no events
    // were dropped.
    let trace = rt
        .observe()
        .trace_reader()
        .expect("tracing enabled")
        .poll_events()
        .into_trace();
    if trace.dropped == 0 {
        let s = trace.stats();
        assert_eq!(s.steal_batch_tasks, m.steal_batch_tasks, "{s}");
        assert!(s.max_steal_batch <= 8, "cap respected: {s}");
        assert!(s.steal_batches <= s.steal_attempts, "{s}");
    }
}

#[test]
fn adaptive_policy_completes_with_batching_and_faults() {
    let rt = Runtime::builder()
        .workers(4)
        .steal_policy(StealPolicy::Adaptive)
        .steal_batch_limit(16)
        .fault_plan(
            FaultPlan::new(5)
                .affinity_stale(300_000)
                .steal_fail(100_000),
        )
        .build()
        .unwrap();
    for _ in 0..10 {
        assert_eq!(scatter(&rt, 2_000), expected(2_000));
    }
    let m = rt.metrics();
    assert!(
        m.steal_affinity_hits + m.steal_fallbacks <= m.steals_attempted,
        "{m}"
    );
    let report = rt.shutdown();
    assert_eq!(report.metrics.suspensions, report.metrics.resumes);
}

#[test]
fn default_config_keeps_single_steals() {
    // The default (Uniform, steal_batch_limit 1) must never take the
    // batch path: no batch tasks, no affinity traffic.
    let rt = Runtime::builder().workers(4).build().unwrap();
    assert_eq!(scatter(&rt, 2_000), expected(2_000));
    let m = rt.metrics();
    assert_eq!(m.steal_batch_tasks, 0, "{m}");
    assert_eq!(m.steal_affinity_hits, 0, "{m}");
    assert_eq!(m.steal_fallbacks, 0, "{m}");
}
