//! Stress tests: high task counts, deep recursion, steal storms, mass
//! suspension, channels under load, and repeated runtime lifecycles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lhws_core::channel::{mpsc, oneshot};
use lhws_core::{
    fork2, join_all, simulate_latency, spawn, Config, LatencyMode, Runtime, StealPolicy,
};

fn rt(workers: usize) -> Runtime {
    Runtime::new(Config::default().workers(workers)).unwrap()
}

#[test]
fn ten_thousand_tiny_tasks() {
    let rt = rt(4);
    let n = 10_000u64;
    let sum = rt.block_on(async move {
        let handles: Vec<_> = (0..n).map(|i| spawn(async move { i })).collect();
        join_all(handles).await.into_iter().sum::<u64>()
    });
    assert_eq!(sum, n * (n - 1) / 2);
}

#[test]
fn wide_and_deep_fork_tree() {
    let rt = rt(4);
    fn tree(depth: u32) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
        Box::pin(async move {
            if depth == 0 {
                1
            } else {
                let (a, b) = fork2(tree(depth - 1), tree(depth - 1)).await;
                a + b
            }
        })
    }
    assert_eq!(rt.block_on(tree(12)), 1 << 12);
}

#[test]
fn five_thousand_suspensions_multiple_waves() {
    let rt = rt(4);
    let counter = Arc::new(AtomicU64::new(0));
    for _wave in 0..5 {
        let c = counter.clone();
        rt.block_on(async move {
            let hs: Vec<_> = (0..1000)
                .map(|i| {
                    let c = c.clone();
                    spawn(async move {
                        simulate_latency(Duration::from_micros(500 + (i % 7) * 300)).await;
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            join_all(hs).await;
        });
    }
    assert_eq!(counter.load(Ordering::Relaxed), 5_000);
    let m = rt.metrics();
    assert_eq!(m.suspensions, 5_000);
    assert_eq!(m.resumes, 5_000);
}

#[test]
fn interleaved_suspend_resume_cycles_per_task() {
    // Each task suspends repeatedly: deques must recycle correctly.
    let rt = rt(2);
    let total = rt.block_on(async {
        let hs: Vec<_> = (0..64)
            .map(|i| {
                spawn(async move {
                    let mut acc = 0u64;
                    for k in 0..8 {
                        simulate_latency(Duration::from_micros(300)).await;
                        acc += i * k;
                    }
                    acc
                })
            })
            .collect();
        join_all(hs).await.into_iter().sum::<u64>()
    });
    let expect: u64 = (0..64u64)
        .map(|i| (0..8u64).map(|k| i * k).sum::<u64>())
        .sum();
    assert_eq!(total, expect);
    let m = rt.metrics();
    assert_eq!(m.suspensions, 64 * 8);
}

#[test]
fn steal_storm_single_producer() {
    // One task floods its own deque; the other workers must drain it by
    // stealing. More workers than cores is fine (they interleave).
    let rt = Runtime::new(Config::default().workers(8)).unwrap();
    let done = rt.block_on(async {
        let hs: Vec<_> = (0..4_000)
            .map(|i| spawn(async move { std::hint::black_box(i) & 1 }))
            .collect();
        join_all(hs).await.len()
    });
    assert_eq!(done, 4_000);
    let m = rt.metrics();
    assert!(m.steals_succeeded > 0, "someone must have stolen: {m:?}");
}

#[test]
fn worker_then_deque_under_load() {
    let rt = Runtime::new(
        Config::default()
            .workers(4)
            .steal_policy(StealPolicy::WorkerThenDeque),
    )
    .unwrap();
    let out = rt.block_on(async {
        let hs: Vec<_> = (0..512)
            .map(|i| {
                spawn(async move {
                    simulate_latency(Duration::from_micros((i % 13) * 100)).await;
                    1u64
                })
            })
            .collect();
        join_all(hs).await.into_iter().sum::<u64>()
    });
    assert_eq!(out, 512);
}

#[test]
fn mpsc_heavy_traffic_many_producers() {
    let rt = rt(4);
    let (count, sum) = rt.block_on(async {
        let (tx, mut rx) = mpsc::<u64>();
        let producers: Vec<_> = (0..8)
            .map(|p| {
                let tx = tx.clone();
                spawn(async move {
                    for i in 0..500u64 {
                        tx.send(p * 10_000 + i).unwrap();
                        if i % 100 == 37 {
                            lhws_core::yield_now().await;
                        }
                    }
                })
            })
            .collect();
        drop(tx);
        let mut count = 0u64;
        let mut sum = 0u64;
        while let Some(v) = rx.recv().await {
            count += 1;
            sum = sum.wrapping_add(v);
        }
        join_all(producers).await;
        (count, sum)
    });
    assert_eq!(count, 8 * 500);
    let expect: u64 = (0..8u64)
        .flat_map(|p| (0..500u64).map(move |i| p * 10_000 + i))
        .fold(0, u64::wrapping_add);
    assert_eq!(sum, expect);
}

#[test]
fn oneshot_chains() {
    // A relay race of oneshot channels across tasks.
    let rt = rt(4);
    let out = rt.block_on(async {
        let (first_tx, mut prev_rx) = oneshot::<u64>();
        let mut relays = Vec::new();
        for _ in 0..100 {
            let (tx, rx) = oneshot::<u64>();
            relays.push(spawn(async move {
                let v = prev_rx.await.unwrap();
                tx.send(v + 1);
            }));
            prev_rx = rx;
        }
        first_tx.send(0);
        let got = prev_rx.await.unwrap();
        join_all(relays).await;
        got
    });
    assert_eq!(out, 100);
}

#[test]
fn runtime_churn() {
    // Create and destroy many runtimes with pending latency work.
    for i in 0..20 {
        let rt = Runtime::new(Config::default().workers(2).seed(i)).unwrap();
        let v = rt.block_on(async move {
            let (a, b) = fork2(async { 1u64 }, async {
                simulate_latency(Duration::from_micros(500)).await;
                2u64
            })
            .await;
            a + b
        });
        assert_eq!(v, 3);
        // Leave a detached suspended task behind on odd iterations.
        if i % 2 == 1 {
            drop(rt.spawn(async {
                simulate_latency(Duration::from_secs(60)).await;
            }));
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(rt);
    }
}

#[test]
fn blocking_mode_stress_correctness() {
    // Blocking mode must still compute correct results with many tasks.
    let rt = Runtime::new(Config::default().workers(8).mode(LatencyMode::Block)).unwrap();
    let sum = rt.block_on(async {
        let hs: Vec<_> = (0..64)
            .map(|i| {
                spawn(async move {
                    simulate_latency(Duration::from_micros(200)).await;
                    i
                })
            })
            .collect();
        join_all(hs).await.into_iter().sum::<u64>()
    });
    assert_eq!(sum, (0..64).sum::<u64>());
}

#[test]
fn hundred_thousand_concurrent_suspensions() {
    // The headline stress for the sharded timer wheel: 100k suspensions
    // live in the wheel *at the same time* across 8 workers, then all
    // expire and reinject. A watcher thread samples `suspensions -
    // resumes` to certify the peak actually reached 100k.
    use std::time::Instant;

    const N: u64 = 100_000;
    let rt = Runtime::new(Config::default().workers(8)).unwrap();

    // Warm-up wave, which also calibrates the common deadline: every task
    // must register *before* the first expiration for the peak to hit N,
    // so size the margin from measured spawn+register throughput.
    let t0 = Instant::now();
    rt.block_on(async {
        let hs: Vec<_> = (0..2_000)
            .map(|_| {
                spawn(async {
                    simulate_latency(Duration::from_millis(1)).await;
                })
            })
            .collect();
        join_all(hs).await;
    });
    let margin = (t0.elapsed() / 2_000) * (N as u32) * 5 + Duration::from_millis(500);
    let before = rt.metrics();

    let stop = AtomicU64::new(0);
    let peak = AtomicU64::new(0);
    let sum = std::thread::scope(|scope| {
        scope.spawn(|| {
            while stop.load(Ordering::Acquire) == 0 {
                let m = rt.metrics().since(&before);
                // Saturating: the two counters are read at slightly
                // different instants, so a racing register+resume pair can
                // transiently make `resumes` the larger read.
                peak.fetch_max(m.suspensions.saturating_sub(m.resumes), Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let deadline = Instant::now() + margin;
        let sum = rt.block_on(async move {
            let hs: Vec<_> = (0..N)
                .map(|_| {
                    spawn(async move {
                        lhws_core::latency_until(deadline).await;
                        1u64
                    })
                })
                .collect();
            join_all(hs).await.into_iter().sum::<u64>()
        });
        stop.store(1, Ordering::Release);
        sum
    });

    assert_eq!(sum, N, "every suspended task resumed and completed");
    let m = rt.metrics().since(&before);
    assert_eq!(m.suspensions, N, "one timer registration per task");
    assert_eq!(m.resumes, N, "one resume per registration");
    assert_eq!(
        peak.load(Ordering::Relaxed),
        N,
        "all {N} suspensions were live in the wheel concurrently \
         (margin was {margin:?})"
    );
}

#[test]
fn mixed_modes_coexisting_runtimes() {
    let hide = Runtime::new(Config::default().workers(2)).unwrap();
    let block = Runtime::new(Config::default().workers(2).mode(LatencyMode::Block)).unwrap();
    let a = hide.block_on(async {
        simulate_latency(Duration::from_millis(2)).await;
        1
    });
    let b = block.block_on(async {
        simulate_latency(Duration::from_millis(2)).await;
        2
    });
    assert_eq!(a + b, 3);
}
