//! Trace/metrics coherence and builder-validation tests.
//!
//! The tracing layer promises that its event stream is not merely
//! *plausible* but *exact*: every metrics counter bump at a traced site
//! pairs with exactly one trace event. These tests run real workloads with
//! tracing on and check the two accounting systems against each other, plus
//! the empirical side of Lemma 7 (a worker owns at most `U + 1` live
//! deques when at most `U` suspensions are in flight).

use std::time::Duration;

use lhws_core::trace::{EventKind, SuspendKind};
use lhws_core::{fork2, join_all, simulate_latency, Config, ConfigError, Runtime, RuntimeError};

/// Plenty of ring space: coherence checks require `dropped == 0`.
const CAPACITY: usize = 1 << 16;

fn traced_runtime(workers: usize) -> Runtime {
    Runtime::builder()
        .workers(workers)
        .trace_capacity(CAPACITY)
        .build()
        .unwrap()
}

fn fib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
    Box::pin(async move {
        if n < 2 {
            n
        } else {
            let (a, b) = fork2(fib(n - 1), fib(n - 2)).await;
            a + b
        }
    })
}

#[test]
fn steal_events_match_steal_metrics() {
    let rt = traced_runtime(4);
    let got = rt.block_on(fib(16));
    assert_eq!(got, 987);
    let report = rt.shutdown();
    let trace = report.trace.expect("tracing was enabled");
    assert_eq!(trace.dropped, 0, "ring capacity must cover the workload");

    let steal_events = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Steal { .. }))
        .count() as u64;
    assert_eq!(
        steal_events, report.metrics.steals_attempted,
        "one Steal trace event per steals_attempted bump"
    );

    let stats = trace.stats();
    assert_eq!(stats.steal_attempts, steal_events);
    assert_eq!(stats.steal_successes, report.metrics.steals_succeeded);
}

#[test]
fn resume_batches_sum_to_resumed_count() {
    let rt = traced_runtime(3);
    rt.block_on(async {
        let handles: Vec<_> = (0..24)
            .map(|i| {
                lhws_core::spawn(async move {
                    simulate_latency(Duration::from_millis(1 + (i % 4))).await;
                    i
                })
            })
            .collect();
        join_all(handles).await
    });
    let report = rt.shutdown();
    let trace = report.trace.expect("tracing was enabled");
    assert_eq!(trace.dropped, 0);

    let delivered: u64 = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Resume { batch_len, .. } => Some(batch_len as u64),
            _ => None,
        })
        .sum();
    assert_eq!(
        delivered, report.metrics.resumes,
        "Resume batch lengths sum to the drained-resume count"
    );
    assert_eq!(report.metrics.resumes, 24);
    assert_eq!(report.metrics.suspensions, 24);

    let suspends = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Suspend {
                    kind: SuspendKind::Timer,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(suspends, report.metrics.suspensions);

    // Every suspension completed, so each lifecycle pairs end to end.
    let stats = trace.stats();
    assert_eq!(stats.suspensions, 24);
    assert_eq!(stats.resumes_delivered, 24);
    assert_eq!(stats.ready_to_exec.count(), 24);
}

#[test]
fn high_water_respects_lemma7_bound() {
    // One worker, U = 8 concurrently suspending tasks: Lemma 7 bounds the
    // worker's live deques by U + 1.
    const U: u64 = 8;
    let rt = traced_runtime(1);
    rt.block_on(async {
        let handles: Vec<_> = (0..U)
            .map(|_| {
                lhws_core::spawn(async {
                    simulate_latency(Duration::from_millis(5)).await;
                })
            })
            .collect();
        join_all(handles).await
    });
    let report = rt.shutdown();
    let stats = report.trace.expect("tracing was enabled").stats();
    assert!(
        stats.max_deque_high_water() <= U + 1,
        "high-water {} exceeds Lemma 7 bound {}",
        stats.max_deque_high_water(),
        U + 1
    );
    // The trace-side high-water and the metrics-side observation agree.
    assert_eq!(
        stats.max_deque_high_water(),
        report.metrics.max_deques_per_worker
    );
}

#[test]
fn tracing_disabled_yields_no_trace() {
    let rt = Runtime::builder().workers(2).build().unwrap();
    assert_eq!(rt.block_on(fib(10)), 55);
    assert!(rt.observe().trace_reader().is_none());
    // The deprecated snapshot/export delegates stay pinned for one
    // release: same `None` / empty-but-valid-document behavior.
    #[allow(deprecated)]
    {
        assert!(rt.trace_snapshot().is_none());
        let mut out = Vec::new();
        rt.trace_export(&mut out).unwrap();
        // Disabled tracing exports an empty-but-valid document.
        assert!(out.starts_with(b"{"));
    }
    let report = rt.shutdown();
    assert!(report.trace.is_none());
}

// ---------------------------------------------------------------------
// Builder validation: one test per `ConfigError` variant.
// ---------------------------------------------------------------------

fn rejects(err: RuntimeError, want: ConfigError) {
    match err {
        RuntimeError::InvalidConfig(e) => assert_eq!(e, want),
        other => panic!("expected InvalidConfig({want:?}), got {other:?}"),
    }
}

#[test]
fn builder_rejects_zero_workers() {
    let err = Runtime::builder().workers(0).build().unwrap_err();
    rejects(err, ConfigError::ZeroWorkers);
}

#[test]
fn builder_rejects_explicit_zero_timer_shards() {
    let err = Runtime::builder()
        .workers(2)
        .timer_shards(0)
        .build()
        .unwrap_err();
    rejects(err, ConfigError::ZeroTimerShards);
    // Not setting the knob at all means "one shard per worker" and is fine.
    let rt = Runtime::builder().workers(2).build().unwrap();
    drop(rt);
}

#[test]
fn builder_rejects_zero_timer_tick() {
    let err = Runtime::builder()
        .workers(1)
        .timer_tick(Duration::ZERO)
        .build()
        .unwrap_err();
    rejects(err, ConfigError::ZeroTimerTick);
}

#[test]
fn builder_rejects_zero_resume_batch_limit() {
    let err = Runtime::builder()
        .workers(1)
        .resume_batch_limit(0)
        .build()
        .unwrap_err();
    rejects(err, ConfigError::ZeroResumeBatchLimit);
}

#[test]
fn builder_rejects_zero_pfor_grain() {
    let err = Runtime::builder()
        .workers(1)
        .pfor_grain(0)
        .build()
        .unwrap_err();
    rejects(err, ConfigError::ZeroPforGrain);
}

#[test]
fn builder_rejects_zero_park_interval() {
    let err = Runtime::builder()
        .workers(1)
        .park_micros(0)
        .build()
        .unwrap_err();
    rejects(err, ConfigError::ZeroParkInterval);
}

#[test]
fn builder_rejects_registry_smaller_than_workers() {
    let err = Runtime::builder()
        .workers(4)
        .registry_capacity(2)
        .build()
        .unwrap_err();
    rejects(
        err,
        ConfigError::RegistryTooSmall {
            capacity: 2,
            workers: 4,
        },
    );
}

#[test]
fn config_validate_catches_direct_field_writes() {
    let cfg = Config {
        workers: 0,
        ..Config::default()
    };
    assert_eq!(cfg.validate(), Err(ConfigError::ZeroWorkers));
    // The fluent setters clamp, so a setter-built Config always passes.
    assert_eq!(Config::default().workers(0).validate(), Ok(()));
}

#[test]
fn shutdown_report_is_coherent_with_live_metrics() {
    let rt = traced_runtime(2);
    rt.block_on(fib(12));
    let live = rt.metrics();
    let report = rt.shutdown();
    // Shutdown joins the workers, so its snapshot can only have grown.
    assert!(report.metrics.polls >= live.polls);
    let delta = report.metrics.delta(&live);
    assert_eq!(delta.tasks_spawned, 0, "no tasks spawn after block_on");
}
