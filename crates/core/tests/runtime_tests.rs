//! End-to-end tests of the latency-hiding work-stealing runtime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws_core::{
    fork2, par_map_reduce, simulate_latency, spawn, yield_now, Config, LatencyMode, LatencyProfile,
    RemoteService, Runtime, StealPolicy,
};
use lhws_deque::DequeKind;

fn rt(workers: usize) -> Runtime {
    Runtime::new(Config::default().workers(workers)).unwrap()
}

/// Sequential fib for cross-checking.
fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// Parallel fib on the runtime.
fn pfib(n: u64) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
    Box::pin(async move {
        if n < 10 {
            fib(n)
        } else {
            let (a, b) = fork2(pfib(n - 1), pfib(n - 2)).await;
            a + b
        }
    })
}

#[test]
fn block_on_simple_value() {
    let rt = rt(2);
    assert_eq!(rt.block_on(async { 7 }), 7);
}

#[test]
fn block_on_repeatedly() {
    let rt = rt(2);
    for i in 0..50 {
        assert_eq!(rt.block_on(async move { i * 2 }), i * 2);
    }
}

#[test]
fn fork_join_fib_matches_sequential() {
    let rt = rt(4);
    for n in [10u64, 15, 20] {
        assert_eq!(rt.block_on(pfib(n)), fib(n), "fib({n})");
    }
}

#[test]
fn fork_join_on_one_worker() {
    let rt = rt(1);
    assert_eq!(rt.block_on(pfib(15)), fib(15));
}

#[test]
fn spawn_many_tasks() {
    let rt = rt(4);
    let total = rt.block_on(async {
        let handles: Vec<_> = (0..500u64).map(|i| spawn(async move { i })).collect();
        let mut sum = 0;
        for h in handles {
            sum += h.await;
        }
        sum
    });
    assert_eq!(total, 500 * 499 / 2);
}

#[test]
fn external_spawn_from_non_worker() {
    let rt = rt(2);
    let h = rt.spawn(async { 99u32 });
    assert_eq!(rt.block_on(h), 99);
}

#[test]
fn latency_hiding_overlaps_sleeps() {
    // 8 parallel 40ms latencies on 2 workers: blocking would need
    // >= 160ms; hiding completes in roughly one latency.
    let rt = rt(2);
    let start = Instant::now();
    rt.block_on(async {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                spawn(async {
                    simulate_latency(Duration::from_millis(40)).await;
                })
            })
            .collect();
        for h in handles {
            h.await;
        }
    });
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(160),
        "latency was not hidden: {elapsed:?}"
    );
}

#[test]
fn blocking_mode_serializes_latency() {
    let rt = Runtime::new(Config::default().workers(2).mode(LatencyMode::Block)).unwrap();
    let start = Instant::now();
    rt.block_on(async {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                spawn(async {
                    simulate_latency(Duration::from_millis(20)).await;
                })
            })
            .collect();
        for h in handles {
            h.await;
        }
    });
    let elapsed = start.elapsed();
    // 8 × 20ms over 2 blocked workers ≥ 80ms.
    assert!(
        elapsed >= Duration::from_millis(75),
        "blocking mode should pay the latency: {elapsed:?}"
    );
}

#[test]
fn latency_mixed_with_compute() {
    let rt = rt(4);
    let out = rt.block_on(async {
        let (a, b) = fork2(pfib(18), async {
            simulate_latency(Duration::from_millis(10)).await;
            1000u64
        })
        .await;
        a + b
    });
    assert_eq!(out, fib(18) + 1000);
}

#[test]
fn many_concurrent_suspensions() {
    // Far more suspended tasks than workers: stresses the multi-deque and
    // resume machinery (the paper: "can handle computations with large
    // numbers of suspended threads").
    let rt = rt(4);
    let n = 2_000u64;
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = counter.clone();
    rt.block_on(async move {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let c = c2.clone();
                spawn(async move {
                    simulate_latency(Duration::from_millis(5)).await;
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.await;
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), n);
    let m = rt.metrics();
    assert_eq!(m.suspensions, n, "each task suspended exactly once");
    assert_eq!(m.resumes, n, "each suspension resumed exactly once");
}

#[test]
fn map_reduce_with_remote_service() {
    // The paper's Figure 8 program against a synthetic remote server.
    let rt = rt(4);
    let svc = Arc::new(RemoteService::new(
        "kv",
        LatencyProfile::Fixed(Duration::from_millis(3)),
    ));
    let sum = rt.block_on(async move {
        par_map_reduce(
            0,
            64,
            move |i| {
                let svc = svc.clone();
                async move { svc.request(i, |k| k * 2).await }
            },
            |a, b| a + b,
            0,
        )
        .await
    });
    assert_eq!(sum, (0..64).map(|i| i * 2).sum::<u64>());
}

#[test]
fn par_map_reduce_empty_and_singleton() {
    let rt = rt(2);
    let empty =
        rt.block_on(async { par_map_reduce(5, 5, |i| async move { i }, |a, b| a + b, 1234).await });
    assert_eq!(empty, 1234, "empty range returns the identity");
    let single = rt
        .block_on(async { par_map_reduce(7, 8, |i| async move { i * 3 }, |a, b| a + b, 0).await });
    assert_eq!(single, 21);
}

#[test]
fn lemma7_deques_bounded_in_practice() {
    // U = 0 computation: exactly one deque per worker, ever.
    let rt = rt(4);
    rt.block_on(pfib(20));
    let m = rt.metrics();
    assert_eq!(
        m.max_deques_per_worker, 1,
        "no suspensions => one deque per worker (the U=0 reduction)"
    );
    assert_eq!(m.suspensions, 0);
    assert_eq!(m.pfor_batches, 0);
}

#[test]
fn suspension_width_one_server_loop() {
    // The paper's server: at most one outstanding input at a time.
    let rt = rt(2);
    let out = rt.block_on(async {
        let mut acc = 0u64;
        for i in 0..20 {
            simulate_latency(Duration::from_millis(1)).await;
            let (a, rest) = fork2(async move { i }, async move { 1u64 }).await;
            acc += a + rest;
        }
        acc
    });
    assert_eq!(out, (0..20).sum::<u64>() + 20);
    let m = rt.metrics();
    // One suspension at a time: deque count per worker stays <= U+1 = 2.
    assert!(
        m.max_deques_per_worker <= 2,
        "server has U=1; got {} deques",
        m.max_deques_per_worker
    );
}

#[test]
fn panic_in_spawned_task_propagates_at_join() {
    let rt = rt(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.block_on(async {
            let h = spawn(async {
                panic!("child exploded");
            });
            h.await;
        });
    }));
    assert!(result.is_err(), "panic must propagate through block_on");
}

#[test]
fn panic_in_block_on_future_propagates() {
    let rt = rt(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.block_on(async {
            panic!("root exploded");
        });
    }));
    assert!(result.is_err());
}

#[test]
fn runtime_survives_panicked_task() {
    let rt = rt(2);
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.block_on(async {
            spawn(async { panic!("detached panic") }).await;
        });
    }));
    // The runtime must still schedule new work.
    assert_eq!(rt.block_on(async { 5 }), 5);
}

#[test]
fn worker_then_deque_policy_works() {
    let rt = Runtime::new(
        Config::default()
            .workers(4)
            .steal_policy(StealPolicy::WorkerThenDeque),
    )
    .unwrap();
    assert_eq!(rt.block_on(pfib(18)), fib(18));
    rt.block_on(async {
        let hs: Vec<_> = (0..64)
            .map(|_| spawn(async { simulate_latency(Duration::from_millis(2)).await }))
            .collect();
        for h in hs {
            h.await;
        }
    });
}

#[test]
fn mutex_deque_backend_works() {
    let rt = Runtime::new(Config::default().workers(4).deque_kind(DequeKind::Mutex)).unwrap();
    assert_eq!(rt.block_on(pfib(17)), fib(17));
}

#[test]
fn yield_now_roundtrip() {
    let rt = rt(2);
    let v = rt.block_on(async {
        let mut x = 0;
        for _ in 0..10 {
            yield_now().await;
            x += 1;
        }
        x
    });
    assert_eq!(v, 10);
}

#[test]
fn nested_fork2() {
    let rt = rt(4);
    let v = rt.block_on(async {
        let ((a, b), (c, d)) = fork2(
            fork2(async { 1 }, async { 2 }),
            fork2(async { 3 }, async { 4 }),
        )
        .await;
        a + b + c + d
    });
    assert_eq!(v, 10);
}

#[test]
fn remote_service_uniform_latency() {
    let rt = rt(4);
    let svc = Arc::new(RemoteService::new(
        "jittery",
        LatencyProfile::Uniform(Duration::from_millis(1), Duration::from_millis(8)),
    ));
    let n = 32;
    let sum = rt.block_on(async move {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let svc = svc.clone();
                spawn(async move { svc.request(i, |k| k + 1).await })
            })
            .collect();
        let mut s = 0;
        for h in handles {
            s += h.await;
        }
        s
    });
    assert_eq!(sum, (0..n).map(|i| i + 1).sum::<u64>());
}

#[test]
fn metrics_accumulate_sensibly() {
    let rt = rt(2);
    let before = rt.metrics();
    rt.block_on(pfib(16));
    let after = rt.metrics();
    let d = after.since(&before);
    assert!(d.polls > 0);
    assert!(d.tasks_spawned > 0);
    assert!(d.deques_allocated >= 1);
}

#[test]
fn live_index_eliminates_dead_steal_targets() {
    // Phase 1 inflates the registry's allocated prefix with a burst of
    // concurrent suspensions (each suspension parks a deque; the worker
    // moves on to a fresh one). Phase 2 holds one long latency while every
    // other deque sits freed, so idle thieves probe a registry that is
    // mostly dead slots — the paper's `randomDeque()` eats those misses.
    fn churn_then_idle(rt: &Runtime) -> u64 {
        rt.block_on(async {
            let hs: Vec<_> = (0..200)
                .map(|_| spawn(async { simulate_latency(Duration::from_millis(10)).await }))
                .collect();
            for h in hs {
                h.await;
            }
            simulate_latency(Duration::from_millis(80)).await;
        });
        rt.metrics().steals_dead_target
    }
    let baseline = Runtime::new(Config::default().workers(4).live_index(false)).unwrap();
    let dead_baseline = churn_then_idle(&baseline);
    let live = Runtime::new(Config::default().workers(4)).unwrap();
    let dead_live = churn_then_idle(&live);
    assert!(
        dead_baseline > 0,
        "slot-array sampling must hit freed slots during the idle phase"
    );
    assert!(
        dead_live * 10 <= dead_baseline,
        "live-set sampling should all but eliminate dead targets: \
         live={dead_live} baseline={dead_baseline}"
    );
    // The registry-backed gauges flow through the snapshot. (The absolute
    // high water is workload-shaped — a fast owner absorbs most
    // suspensions onto one deque — so only pin that it is plumbed.)
    let m = live.metrics();
    assert!(m.live_deques_high_water >= 1, "gauge must be plumbed");
}

#[test]
fn sequential_latencies_in_one_task() {
    let rt = rt(2);
    let start = Instant::now();
    rt.block_on(async {
        for _ in 0..5 {
            simulate_latency(Duration::from_millis(5)).await;
        }
    });
    let elapsed = start.elapsed();
    assert!(elapsed >= Duration::from_millis(25), "latencies are real");
    let m = rt.metrics();
    assert_eq!(m.suspensions, 5);
    assert_eq!(m.resumes, 5);
}

#[test]
fn drop_runtime_with_pending_detached_work() {
    let rt = rt(2);
    // Spawn tasks that will still be suspended when we drop the runtime.
    let _h = rt.spawn(async {
        simulate_latency(Duration::from_secs(30)).await;
    });
    std::thread::sleep(Duration::from_millis(20));
    drop(rt); // must not hang or crash
}

#[test]
fn two_runtimes_coexist() {
    let a = rt(2);
    let b = rt(2);
    let va = a.block_on(async { 1 });
    let vb = b.block_on(async { 2 });
    assert_eq!(va + vb, 3);
}

#[test]
fn deep_recursion_many_small_tasks() {
    let rt = rt(4);
    // A deep spawn chain exercising join wake-ups across workers.
    fn chain(n: u32) -> std::pin::Pin<Box<dyn std::future::Future<Output = u32> + Send>> {
        Box::pin(async move {
            if n == 0 {
                0
            } else {
                let h = spawn(chain(n - 1));
                h.await + 1
            }
        })
    }
    assert_eq!(rt.block_on(chain(300)), 300);
}

#[test]
fn stress_mixed_workload() {
    let rt = rt(4);
    let svc = Arc::new(RemoteService::new(
        "mix",
        LatencyProfile::Uniform(Duration::from_micros(200), Duration::from_millis(4)),
    ));
    let expect: u64 = (0..128u64).map(|i| i % 7 + fib(10)).sum();
    let got = rt.block_on(async move {
        par_map_reduce(
            0,
            128,
            move |i| {
                let svc = svc.clone();
                async move {
                    let r = svc.request(i, |k| k % 7).await;
                    r + pfib_local(10)
                }
            },
            |a, b| a + b,
            0,
        )
        .await
    });
    fn pfib_local(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            pfib_local(n - 1) + pfib_local(n - 2)
        }
    }
    assert_eq!(got, expect);
}

#[test]
fn left_child_priority_non_preemptive() {
    // With one worker, fork2's continuation (left child) runs to
    // completion before the spawned right child starts — the paper's
    // edge-ordering/priority property ("the current task continues
    // running until it finishes").
    let rt = rt(1);
    let log = Arc::new(parking_lot_free_log());
    let l2 = log.clone();
    rt.block_on(async move {
        let log_left = l2.clone();
        let log_right = l2.clone();
        let (_, _) = fork2(
            async move {
                log_left.lock().unwrap().push("left-start");
                yield_now().await; // even across yields, left keeps priority
                log_left.lock().unwrap().push("left-end");
            },
            async move {
                log_right.lock().unwrap().push("right");
            },
        )
        .await;
    });
    let got = log.lock().unwrap().clone();
    assert_eq!(got[0], "left-start");
    // The right child must not run before the left part finished its
    // first segment; after a yield the left task re-queues at the bottom,
    // so "left-end" still precedes "right".
    assert_eq!(got, vec!["left-start", "left-end", "right"]);
}

fn parking_lot_free_log() -> std::sync::Mutex<Vec<&'static str>> {
    std::sync::Mutex::new(Vec::new())
}

#[test]
fn fork2_left_runs_inline_same_task() {
    // The left branch is the continuation of the same task: no extra task
    // is spawned for it.
    let rt = rt(2);
    let before = rt.metrics();
    rt.block_on(async {
        let (a, b) = fork2(async { 1 }, async { 2 }).await;
        assert_eq!(a + b, 3);
    });
    let d = rt.metrics().since(&before);
    // Exactly two tasks: the block_on root and the right child.
    assert_eq!(d.tasks_spawned, 2, "left child must not spawn a task");
}
