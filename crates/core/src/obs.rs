//! Live observation plane: the blessed handle for watching a running
//! runtime.
//!
//! Everything here is readable *while the schedule is executing* — the
//! counterpart to the quiescent snapshots of
//! [`Runtime::shutdown`](crate::Runtime::shutdown):
//!
//! * [`Observer`] is the single entry point, minted by
//!   [`Runtime::observe`](crate::Runtime::observe). It holds a weak
//!   reference, so an observer (or an exporter task built on one) never
//!   keeps a dead runtime alive, and every accessor degrades to `None`
//!   once the runtime is gone.
//! * [`Observer::trace_reader`] taps the trace rings through the
//!   incremental cursor readers
//!   ([`TraceReader`]) — non-destructive,
//!   overflow-accounted, concurrent with the producers.
//! * [`LiveAudit`] runs the [`fault::audit`](crate::fault::audit)
//!   invariant checks *during* the run by folding reader batches into an
//!   [`AuditState`], instead of waiting for the shutdown trace.
//! * [`encode_prometheus`] renders a [`MetricsSnapshot`] in the
//!   Prometheus text exposition format — hand-rolled, dependency-free,
//!   stable metric order — which [`Observer::export_prometheus`] serves
//!   over any transport (the `lhws-obs` crate serves it over `lhws-net`,
//!   from a task inside the observed runtime).

use std::sync::{Arc, Weak};

use crate::fault::{AuditReport, AuditState};
use crate::metrics::MetricsSnapshot;
use crate::runtime::RtInner;
use crate::trace::{Trace, TraceReader};

/// Observation handle for a live runtime, from
/// [`Runtime::observe`](crate::Runtime::observe).
///
/// Cheap to clone and `Send`; holds only a weak reference, so it can be
/// moved into tasks running *on* the observed runtime (the self-hosted
/// exporter pattern) without creating a keep-alive cycle. After the
/// runtime shuts down or is dropped, accessors return `None` /
/// [`is_shutdown`](Self::is_shutdown) returns `true`.
#[derive(Clone)]
pub struct Observer {
    rt: Weak<RtInner>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("alive", &(self.rt.strong_count() > 0))
            .finish()
    }
}

impl Observer {
    pub(crate) fn new(rt: Weak<RtInner>) -> Observer {
        Observer { rt }
    }

    fn inner(&self) -> Option<Arc<RtInner>> {
        self.rt.upgrade()
    }

    /// Point-in-time counter snapshot with registry gauges stitched in,
    /// or `None` once the runtime is gone.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner().map(|rt| rt.registry_metrics())
    }

    /// Number of worker threads (`0` once the runtime is gone).
    pub fn workers(&self) -> usize {
        self.inner().map_or(0, |rt| rt.config.workers)
    }

    /// A fresh incremental cursor reader over the trace rings, or `None`
    /// when tracing is disabled (or the runtime is gone). Each call
    /// registers an independent reader with its own cursors; events are
    /// reclaimed only once every registered reader has passed them.
    pub fn trace_reader(&self) -> Option<TraceReader> {
        self.inner()
            .and_then(|rt| rt.tracer.as_ref().map(|t| t.new_reader()))
    }

    /// A [`LiveAudit`]: the invariant checker fed by an incremental
    /// reader, for running `fault::audit` *during* the schedule. `None`
    /// when tracing is disabled (or the runtime is gone).
    pub fn audit_incremental(&self) -> Option<LiveAudit> {
        let workers = self.workers();
        self.trace_reader()
            .map(|reader| LiveAudit::new(reader, workers))
    }

    /// Total trace events lost to ring overflow so far, or `None` when
    /// tracing is disabled.
    pub fn trace_dropped_total(&self) -> Option<u64> {
        self.inner()
            .and_then(|rt| rt.tracer.as_ref().map(|t| t.dropped_total()))
    }

    /// Renders the current metrics in the Prometheus text exposition
    /// format ([`encode_prometheus`]), or `None` once the runtime is
    /// gone.
    pub fn export_prometheus(&self) -> Option<String> {
        let rt = self.inner()?;
        let m = rt.registry_metrics();
        let dropped = rt.tracer.as_ref().map(|t| t.dropped_total());
        Some(encode_prometheus(&m, rt.config.workers, dropped))
    }

    /// `true` once the observed runtime has begun shutdown or been
    /// dropped entirely.
    pub fn is_shutdown(&self) -> bool {
        self.inner().is_none_or(|rt| rt.is_shutdown())
    }
}

/// The invariant auditor running *during* the schedule: an incremental
/// [`TraceReader`] feeding an order-tolerant [`AuditState`].
///
/// Poll it periodically while the runtime executes; monotone violations
/// (double resume, deque imbalance, double I/O resolution) are flagged
/// the moment their events are observed —
/// [`violation_count`](Self::violation_count) grows mid-run. At shutdown,
/// fold the final drained [`Trace`] with
/// [`observe_trace`](Self::observe_trace): with a single reader the
/// drain's leftovers are exactly the events this reader has not seen, so
/// live batches plus leftovers cover every event exactly once, and
/// [`report`](Self::report) matches what post-hoc
/// [`audit`](crate::fault::audit) would say about the whole run.
#[derive(Debug)]
pub struct LiveAudit {
    reader: TraceReader,
    state: AuditState,
}

impl LiveAudit {
    fn new(reader: TraceReader, workers: usize) -> LiveAudit {
        LiveAudit {
            reader,
            state: AuditState::new(workers),
        }
    }

    /// Polls the reader once and folds the batch (events + accounted
    /// loss) into the audit. Returns the number of events folded.
    pub fn poll(&mut self) -> usize {
        let batch = self.reader.poll_events();
        self.state.observe(&batch.events);
        self.state.observe_dropped(batch.dropped + batch.missed);
        batch.events.len()
    }

    /// Folds a destructively drained [`Trace`] (normally the shutdown
    /// report's) into the audit. Only the *residual* drop count — loss
    /// not already surfaced through this reader's poll deltas — is
    /// added, since a drained trace reports the cumulative total. Do not
    /// [`poll`](Self::poll) again afterwards: the drain already freed
    /// these events, so a later poll would double-count them as missed.
    pub fn observe_trace(&mut self, trace: &Trace) {
        self.state.observe(&trace.events);
        let residual = trace.dropped.saturating_sub(self.reader.dropped_seen());
        self.state.observe_dropped(residual);
    }

    /// Violations flagged so far by the streaming (monotone) checks.
    pub fn violation_count(&self) -> u64 {
        self.state.violation_count()
    }

    /// The underlying incremental audit state.
    pub fn state(&self) -> &AuditState {
        &self.state
    }

    /// Full report over everything observed so far (order-sensitive
    /// checks included). Non-consuming; call mid-run or at the end.
    pub fn report(&self) -> AuditReport {
        self.state.report()
    }
}

/// One metric line triple: `(name, help, kind)`.
const KIND_COUNTER: &str = "counter";
const KIND_GAUGE: &str = "gauge";

fn sample(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders a [`MetricsSnapshot`] (plus the worker count and, when
/// tracing is on, the cumulative trace-overflow count) in the Prometheus
/// text exposition format, version 0.0.4: `# HELP` / `# TYPE` preamble
/// per family, `lhws_` prefix, `_total` suffix on counters, one sample
/// per family, stable order. Hand-rolled so the build stays
/// dependency-free; validated by the `lhws-obs` crate's parser in CI.
pub fn encode_prometheus(
    m: &MetricsSnapshot,
    workers: usize,
    trace_dropped: Option<u64>,
) -> String {
    let mut o = String::with_capacity(4096);
    let c = KIND_COUNTER;
    let g = KIND_GAUGE;
    sample(
        &mut o,
        "lhws_polls_total",
        c,
        "Task polls executed.",
        m.polls,
    );
    sample(
        &mut o,
        "lhws_tasks_spawned_total",
        c,
        "Tasks spawned (spawn + pfor leaves).",
        m.tasks_spawned,
    );
    sample(
        &mut o,
        "lhws_steals_attempted_total",
        c,
        "Steal attempts (paper's R includes these).",
        m.steals_attempted,
    );
    sample(
        &mut o,
        "lhws_steals_succeeded_total",
        c,
        "Steal attempts that took at least one task.",
        m.steals_succeeded,
    );
    sample(
        &mut o,
        "lhws_steals_dead_target_total",
        c,
        "Steal attempts that landed on a retired deque slot.",
        m.steals_dead_target,
    );
    sample(
        &mut o,
        "lhws_steal_retries_total",
        c,
        "Bounded in-attempt retries after a lost steal race.",
        m.steal_retries,
    );
    sample(
        &mut o,
        "lhws_steal_batch_tasks_total",
        c,
        "Tasks moved by steal-half batching beyond the first.",
        m.steal_batch_tasks,
    );
    sample(
        &mut o,
        "lhws_steal_affinity_hits_total",
        c,
        "Steals satisfied by the cached affinity victim.",
        m.steal_affinity_hits,
    );
    sample(
        &mut o,
        "lhws_steal_fallbacks_total",
        c,
        "Affinity misses that fell back to a uniform draw.",
        m.steal_fallbacks,
    );
    sample(
        &mut o,
        "lhws_deque_switches_total",
        c,
        "Active-deque switches on suspension or steal.",
        m.deque_switches,
    );
    sample(
        &mut o,
        "lhws_deques_allocated_total",
        c,
        "Deques allocated (fresh, not recycled).",
        m.deques_allocated,
    );
    sample(
        &mut o,
        "lhws_suspensions_total",
        c,
        "Suspension registrations (timers, channels, external ops).",
        m.suspensions,
    );
    sample(
        &mut o,
        "lhws_resumes_total",
        c,
        "Resume events delivered back to workers.",
        m.resumes,
    );
    sample(
        &mut o,
        "lhws_pfor_batches_total",
        c,
        "Parallel-for leaf batches executed.",
        m.pfor_batches,
    );
    sample(
        &mut o,
        "lhws_unparks_total",
        c,
        "Targeted worker wake-ups issued.",
        m.unparks,
    );
    sample(
        &mut o,
        "lhws_io_registrations_total",
        c,
        "I/O readiness waits filed with a reactor driver.",
        m.io_registrations,
    );
    sample(
        &mut o,
        "lhws_io_readiness_events_total",
        c,
        "Kernel readiness events resolved into resumes.",
        m.io_readiness_events,
    );
    sample(
        &mut o,
        "lhws_io_timeouts_total",
        c,
        "I/O waits resolved by deadline instead of readiness.",
        m.io_timeouts,
    );
    sample(
        &mut o,
        "lhws_registry_compactions_total",
        c,
        "Deque-registry slot compactions.",
        m.registry_compactions,
    );
    sample(
        &mut o,
        "lhws_live_deques",
        g,
        "Deques currently in the live set.",
        m.live_deques,
    );
    sample(
        &mut o,
        "lhws_live_deques_high_water",
        g,
        "High-water mark of the live set.",
        m.live_deques_high_water,
    );
    sample(
        &mut o,
        "lhws_max_deques_per_worker",
        g,
        "Max deques owned by one worker at once (Lemma 7 observable).",
        m.max_deques_per_worker,
    );
    sample(
        &mut o,
        "lhws_workers",
        g,
        "Worker threads in the runtime.",
        workers as u64,
    );
    if let Some(dropped) = trace_dropped {
        sample(
            &mut o,
            "lhws_trace_dropped_total",
            c,
            "Trace events lost to ring overflow.",
            dropped,
        );
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_shape() {
        let m = MetricsSnapshot::default();
        let text = encode_prometheus(&m, 4, Some(3));
        // Every family has exactly one HELP, one TYPE, one sample.
        let mut names = Vec::new();
        for chunk in text.split("# HELP ").skip(1) {
            let name = chunk.split_whitespace().next().unwrap().to_string();
            assert!(chunk.contains(&format!("# TYPE {name} ")));
            assert!(
                chunk.lines().any(|l| l.starts_with(&format!("{name} "))),
                "sample line for {name}"
            );
            names.push(name);
        }
        assert_eq!(
            names.len(),
            24,
            "20 counters (incl. trace drops) + 4 gauges"
        );
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "no duplicate families");
        assert!(text.contains("lhws_workers 4"));
        assert!(text.contains("lhws_trace_dropped_total 3"));
        assert!(text.ends_with('\n'));
        // Counters carry the _total suffix; gauges don't.
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let mut parts = line.split_whitespace().skip(2);
            let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
            assert_eq!(
                name.ends_with("_total"),
                kind == "counter",
                "{name} is {kind}"
            );
        }
    }

    #[test]
    fn prometheus_text_omits_trace_family_when_tracing_off() {
        let m = MetricsSnapshot::default();
        let text = encode_prometheus(&m, 1, None);
        assert!(!text.contains("lhws_trace_dropped_total"));
    }
}
