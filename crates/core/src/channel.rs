//! Message channels whose receive operations suspend through the
//! latency-hiding machinery.
//!
//! The paper's title is about *interacting* parallel computations: threads
//! that wait for messages from other threads, clients, or devices. These
//! channels make that interaction first-class:
//!
//! * [`oneshot`] — a single-value channel (a future/promise pair).
//! * [`mpsc`] — an unbounded multi-producer single-consumer queue.
//!
//! A receive on an empty channel registers the task against its current
//! active deque (a heavy edge: `suspendCtr` rises, the worker moves on);
//! the send that fulfills it routes a resume event to the owning worker —
//! the same `callback(v, q)` / `addResumedVertices` path as timer-driven
//! latency. Off-worker (or in blocking mode) receives degrade to ordinary
//! waker-based waiting.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use parking_lot::Mutex;

use crate::external::{external_op, Canceled, Completer, DeadlineExt, DeadlineOp, ExternalOp};
use crate::worker::{self, SuspendWait};

// ---------------------------------------------------------------------
// Oneshot.
// ---------------------------------------------------------------------

/// Creates a oneshot channel: `tx.send(v)` fulfills `rx.await`.
pub fn oneshot<T: Send + 'static>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let (completer, op) = external_op();
    (OneshotSender { completer }, OneshotReceiver { op })
}

/// Sending half of a [`oneshot`] channel.
#[derive(Debug)]
pub struct OneshotSender<T: Send + 'static> {
    completer: Completer<T>,
}

impl<T: Send + 'static> OneshotSender<T> {
    /// Sends the value, resuming the receiver. Consumes the sender.
    pub fn send(self, value: T) {
        self.completer.complete(value);
    }
}

/// Receiving half of a [`oneshot`] channel. Awaiting it yields
/// `Err(Canceled)` if the sender was dropped without sending.
#[derive(Debug)]
pub struct OneshotReceiver<T: Send + 'static> {
    op: ExternalOp<T>,
}

impl<T: Send + 'static> DeadlineExt for OneshotReceiver<T> {
    type Deadlined = DeadlineOp<T>;

    /// Bounds the receive by a wall-clock deadline: the returned future
    /// resolves `Err(OpError::TimedOut)` if no send arrives in time.
    fn with_deadline(self, deadline: std::time::Instant) -> DeadlineOp<T> {
        self.op.with_deadline(deadline)
    }
}

impl<T: Send + 'static> Future for OneshotReceiver<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: structural pinning of the only field.
        unsafe { self.map_unchecked_mut(|s| &mut s.op) }.poll(cx)
    }
}

// ---------------------------------------------------------------------
// MPSC.
// ---------------------------------------------------------------------

struct MpscState<T> {
    queue: VecDeque<T>,
    /// Set while the (single) receiver is parked on an empty queue
    /// (see [`worker::register_suspension`]).
    wait: Option<SuspendWait>,
    senders: usize,
    receiver_alive: bool,
}

struct Mpsc<T> {
    state: Mutex<MpscState<T>>,
}

impl<T> Mpsc<T> {
    /// Wakes a parked receiver, if any. Must be called after a state
    /// change that could unblock it (new message, channel closure).
    fn notify(wait: Option<SuspendWait>) {
        if let Some(wait) = wait {
            wait.notify();
        }
    }
}

/// Creates an unbounded multi-producer single-consumer channel.
pub fn mpsc<T: Send + 'static>() -> (MpscSender<T>, MpscReceiver<T>) {
    let shared = Arc::new(Mpsc {
        state: Mutex::new(MpscState {
            queue: VecDeque::new(),
            wait: None,
            senders: 1,
            receiver_alive: true,
        }),
    });
    (
        MpscSender {
            shared: shared.clone(),
        },
        MpscReceiver { shared },
    )
}

/// Error returned by [`MpscSender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mpsc send failed: receiver dropped")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Sending half of an [`mpsc`] channel. Clone freely.
pub struct MpscSender<T: Send + 'static> {
    shared: Arc<Mpsc<T>>,
}

impl<T: Send + 'static> std::fmt::Debug for MpscSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscSender").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Clone for MpscSender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        MpscSender {
            shared: self.shared.clone(),
        }
    }
}

impl<T: Send + 'static> MpscSender<T> {
    /// Enqueues a message, resuming a parked receiver. Non-blocking (the
    /// channel is unbounded).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let wait = {
            let mut st = self.shared.state.lock();
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            st.wait.take()
        };
        Mpsc::<T>::notify(wait);
        Ok(())
    }
}

impl<T: Send + 'static> Drop for MpscSender<T> {
    fn drop(&mut self) {
        let wait = {
            let mut st = self.shared.state.lock();
            st.senders -= 1;
            if st.senders == 0 {
                // Closure unblocks a parked receiver (it will see the
                // empty+closed state and resolve to None).
                st.wait.take()
            } else {
                None
            }
        };
        Mpsc::<T>::notify(wait);
    }
}

/// Receiving half of an [`mpsc`] channel. Not cloneable.
pub struct MpscReceiver<T: Send + 'static> {
    shared: Arc<Mpsc<T>>,
}

impl<T: Send + 'static> std::fmt::Debug for MpscReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscReceiver").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> MpscReceiver<T> {
    /// Receives the next message; `None` once the channel is empty and all
    /// senders are gone.
    pub fn recv(&mut self) -> RecvFuture<'_, T> {
        RecvFuture { rx: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.shared.state.lock().queue.pop_front()
    }
}

impl<T: Send + 'static> Drop for MpscReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock();
        st.receiver_alive = false;
        st.queue.clear();
        // A registration that will never be fulfilled must still deliver
        // its event so the deque's suspension counter balances.
        let wait = st.wait.take();
        drop(st);
        Mpsc::<T>::notify(wait);
    }
}

/// Future returned by [`MpscReceiver::recv`].
pub struct RecvFuture<'a, T: Send + 'static> {
    rx: &'a mut MpscReceiver<T>,
}

impl<T: Send + 'static> Future for RecvFuture<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let shared = self.rx.shared.clone();
        let mut st = shared.state.lock();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if st.senders == 0 {
            return Poll::Ready(None);
        }
        match &st.wait {
            Some(SuspendWait::Deque(_)) => {
                // Still registered from an earlier poll; the pending event
                // pairs with that registration.
            }
            _ => st.wait = Some(worker::register_suspension(cx.waker())),
        }
        Poll::Pending
    }
}

impl<T: Send + 'static> Drop for RecvFuture<'_, T> {
    fn drop(&mut self) {
        // A canceled receive must balance its deque registration: deliver
        // the event now (the task is woken spuriously, which is harmless).
        let wait = {
            let mut st = self.rx.shared.state.lock();
            match st.wait.take() {
                Some(SuspendWait::Deque(reg)) => Some(SuspendWait::Deque(reg)),
                other => {
                    st.wait = other;
                    None
                }
            }
        };
        Mpsc::<T>::notify(wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fork2, spawn, Config, Runtime};
    use std::time::Duration;

    fn rt(workers: usize) -> Runtime {
        Runtime::new(Config::default().workers(workers)).unwrap()
    }

    #[test]
    fn oneshot_roundtrip() {
        let rt = rt(2);
        let out = rt.block_on(async {
            let (tx, rx) = oneshot::<u32>();
            let (_, got) = fork2(async move { tx.send(41) }, rx).await;
            got.unwrap() + 1
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn oneshot_sender_dropped() {
        let rt = rt(2);
        let out = rt.block_on(async {
            let (tx, rx) = oneshot::<u32>();
            drop(tx);
            rx.await
        });
        assert_eq!(out, Err(Canceled));
    }

    #[test]
    fn oneshot_with_timeout_times_out_then_send_is_harmless() {
        use crate::external::OpError;
        let rt = rt(2);
        let out = rt.block_on(async {
            let (tx, rx) = oneshot::<u32>();
            let got = rx.with_timeout(Duration::from_millis(10)).await;
            // The late send loses the settle race silently.
            tx.send(5);
            got
        });
        assert_eq!(out, Err(OpError::TimedOut));
    }

    #[test]
    fn oneshot_with_timeout_receives_in_time() {
        let rt = rt(2);
        let out = rt.block_on(async {
            let (tx, rx) = oneshot::<u32>();
            let (_, got) = fork2(
                async move { tx.send(41) },
                rx.with_timeout(Duration::from_secs(30)),
            )
            .await;
            got.unwrap() + 1
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn mpsc_pingpong() {
        let rt = rt(2);
        let total = rt.block_on(async {
            let (tx, mut rx) = mpsc::<u64>();
            let producer = spawn(async move {
                for i in 0..100 {
                    tx.send(i).unwrap();
                    if i % 10 == 0 {
                        crate::yield_now().await;
                    }
                }
            });
            let mut sum = 0;
            while let Some(v) = rx.recv().await {
                sum += v;
            }
            producer.await;
            sum
        });
        assert_eq!(total, (0..100).sum::<u64>());
    }

    #[test]
    fn mpsc_multiple_producers() {
        let rt = rt(4);
        let total = rt.block_on(async {
            let (tx, mut rx) = mpsc::<u64>();
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    spawn(async move {
                        for i in 0..50u64 {
                            crate::simulate_latency(Duration::from_micros(200)).await;
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut count = 0u64;
            let mut sum = 0u64;
            while let Some(v) = rx.recv().await {
                count += 1;
                sum += v;
            }
            for p in producers {
                p.await;
            }
            (count, sum)
        });
        assert_eq!(total.0, 200);
        let expect: u64 = (0..4u64)
            .map(|p| (0..50).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total.1, expect);
    }

    #[test]
    fn mpsc_close_unblocks_receiver() {
        let rt = rt(2);
        let out = rt.block_on(async {
            let (tx, mut rx) = mpsc::<u32>();
            let closer = spawn(async move {
                crate::simulate_latency(Duration::from_millis(5)).await;
                drop(tx);
            });
            let got = rx.recv().await;
            closer.await;
            got
        });
        assert_eq!(out, None);
    }

    #[test]
    fn mpsc_send_after_receiver_drop_fails() {
        let rt = rt(2);
        rt.block_on(async {
            let (tx, rx) = mpsc::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        });
    }

    #[test]
    fn mpsc_try_recv() {
        let rt = rt(2);
        rt.block_on(async {
            let (tx, mut rx) = mpsc::<u32>();
            assert_eq!(rx.try_recv(), None);
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv(), Some(9));
        });
    }

    #[test]
    fn mpsc_from_external_thread() {
        // Senders living entirely outside the runtime: the receiver
        // suspends on its deque; sends resume it via the inbox.
        let rt = rt(2);
        let (tx, mut rx) = mpsc::<u64>();
        let feeder = std::thread::spawn(move || {
            for i in 0..64 {
                tx.send(i).unwrap();
                if i % 8 == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        let sum = rt.block_on(async move {
            let mut s = 0;
            while let Some(v) = rx.recv().await {
                s += v;
            }
            s
        });
        feeder.join().unwrap();
        assert_eq!(sum, (0..64).sum::<u64>());
    }

    #[test]
    fn receiver_suspension_uses_deque_path() {
        let rt = rt(2);
        let (tx, mut rx) = mpsc::<u32>();
        let feeder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(1).unwrap();
        });
        rt.block_on(async move {
            assert_eq!(rx.recv().await, Some(1));
        });
        feeder.join().unwrap();
        let m = rt.metrics();
        assert!(
            m.suspensions >= 1 && m.resumes >= m.suspensions,
            "the parked receive went through the suspension machinery: {m:?}"
        );
    }
}
