//! Runtime metrics: relaxed atomic counters, cheap on the hot path.
//!
//! Counter bumps happen on every poll, steal attempt, suspension and
//! resume, so they must not become a coherence bottleneck. [`Counters`]
//! therefore holds one cache-padded [`CounterBlock`] **per worker** — a
//! worker bumps only its own block, so counter traffic never bounces cache
//! lines between cores — plus one shared block for bumps from off-worker
//! threads (`Runtime::spawn` from user threads, tests). [`Counters::snapshot`]
//! sums the blocks, so snapshot semantics are identical to a single shared
//! block.

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pads and aligns a value to 128 bytes — two x86-64 cache lines, covering
/// the adjacent-line prefetcher — so per-worker counter blocks never share
/// a cache line. (In-tree equivalent of `crossbeam_utils::CachePadded`.)
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own pair of cache lines.
    pub fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

/// One block of counters. All updates are `Relaxed`: metrics are
/// diagnostics, not synchronization.
#[derive(Debug, Default)]
pub(crate) struct CounterBlock {
    pub polls: AtomicU64,
    pub tasks_spawned: AtomicU64,
    pub steals_attempted: AtomicU64,
    pub steals_succeeded: AtomicU64,
    pub steals_dead_target: AtomicU64,
    pub steal_retries: AtomicU64,
    pub steal_batch_tasks: AtomicU64,
    pub steal_affinity_hits: AtomicU64,
    pub steal_fallbacks: AtomicU64,
    pub deque_switches: AtomicU64,
    pub deques_allocated: AtomicU64,
    pub suspensions: AtomicU64,
    pub resumes: AtomicU64,
    pub pfor_batches: AtomicU64,
    pub max_deques_per_worker: AtomicU64,
    pub unparks: AtomicU64,
    pub io_registrations: AtomicU64,
    pub io_readiness_events: AtomicU64,
    pub io_timeouts: AtomicU64,
}

impl CounterBlock {
    #[inline]
    pub fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Bulk bump (batch steals add whole-batch counts at once).
    #[inline]
    pub fn add(&self, c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }

    /// Monotonic max update.
    pub fn observe_deques(&self, live: u64) {
        self.max_deques_per_worker
            .fetch_max(live, Ordering::Relaxed);
    }
}

/// All runtime counters: a shared block plus cache-padded per-worker
/// blocks. Derefs to the shared block so counter fields remain directly
/// addressable (`counters.polls`) for off-worker bumps and tests.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    shared: CounterBlock,
    per_worker: Box<[CachePadded<CounterBlock>]>,
}

impl Deref for Counters {
    type Target = CounterBlock;
    fn deref(&self) -> &CounterBlock {
        &self.shared
    }
}

impl Counters {
    /// Creates counters with one padded block per worker.
    pub fn with_workers(p: usize) -> Self {
        Counters {
            shared: CounterBlock::default(),
            per_worker: (0..p).map(|_| CachePadded::default()).collect(),
        }
    }

    /// The counter block owned by worker `i` — bump through this on worker
    /// hot paths so the update stays core-local.
    #[inline]
    pub fn worker(&self, i: usize) -> &CounterBlock {
        &self.per_worker[i]
    }

    fn sum(&self, pick: impl Fn(&CounterBlock) -> &AtomicU64) -> u64 {
        let mut total = pick(&self.shared).load(Ordering::Relaxed);
        for block in self.per_worker.iter() {
            total += pick(block).load(Ordering::Relaxed);
        }
        total
    }

    fn max(&self, pick: impl Fn(&CounterBlock) -> &AtomicU64) -> u64 {
        let mut best = pick(&self.shared).load(Ordering::Relaxed);
        for block in self.per_worker.iter() {
            best = best.max(pick(block).load(Ordering::Relaxed));
        }
        best
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            polls: self.sum(|b| &b.polls),
            tasks_spawned: self.sum(|b| &b.tasks_spawned),
            steals_attempted: self.sum(|b| &b.steals_attempted),
            steals_succeeded: self.sum(|b| &b.steals_succeeded),
            steals_dead_target: self.sum(|b| &b.steals_dead_target),
            steal_retries: self.sum(|b| &b.steal_retries),
            steal_batch_tasks: self.sum(|b| &b.steal_batch_tasks),
            steal_affinity_hits: self.sum(|b| &b.steal_affinity_hits),
            steal_fallbacks: self.sum(|b| &b.steal_fallbacks),
            deque_switches: self.sum(|b| &b.deque_switches),
            deques_allocated: self.sum(|b| &b.deques_allocated),
            suspensions: self.sum(|b| &b.suspensions),
            resumes: self.sum(|b| &b.resumes),
            pfor_batches: self.sum(|b| &b.pfor_batches),
            max_deques_per_worker: self.max(|b| &b.max_deques_per_worker),
            unparks: self.sum(|b| &b.unparks),
            io_registrations: self.sum(|b| &b.io_registrations),
            io_readiness_events: self.sum(|b| &b.io_readiness_events),
            io_timeouts: self.sum(|b| &b.io_timeouts),
            // Registry-derived gauges; the runtime fills these in from the
            // deque registry when it snapshots (Counters cannot see it).
            registry_compactions: 0,
            live_deques: 0,
            live_deques_high_water: 0,
        }
    }
}

/// A point-in-time snapshot of the runtime's counters.
///
/// Snapshots are plain data, detached from the live padded counter blocks:
/// `Clone + Copy + Debug`, comparable, and printable via [`fmt::Display`]
/// without any serialization dependency. Use [`MetricsSnapshot::delta`] to
/// get per-run numbers from a long-lived runtime instead of hand-subtracting
/// fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Task polls performed (≥ task count; re-polls after suspension add).
    pub polls: u64,
    /// Tasks ever spawned (including pfor batch tasks).
    pub tasks_spawned: u64,
    /// Steal attempts `R`.
    pub steals_attempted: u64,
    /// Successful steals.
    pub steals_succeeded: u64,
    /// Steal attempts that sampled a dead (freed, not reused) deque — the
    /// slot-array baseline's probe waste. The live-set index drives this
    /// to ~0 (see `Config::live_index`).
    pub steals_dead_target: u64,
    /// Benign pop-top races ([`Steal::Retry`](lhws_deque::Steal)) absorbed
    /// inside steal attempts. Counted per inner retry iteration — before
    /// the backoff spin — so adaptive policies steering on hit rates see
    /// exact contention, not retries folded silently into one attempt.
    pub steal_retries: u64,
    /// Tasks transferred by batched (steal-half) steals, counting every
    /// task in each batch. `0` under the default single-task steal.
    pub steal_batch_tasks: u64,
    /// Successful steals whose victim came from the affinity cache or the
    /// preferred-shard draw rather than the uniform fallback (Affinity and
    /// Adaptive policies only).
    pub steal_affinity_hits: u64,
    /// Affinity/Adaptive probes that fell back to the uniform live-index
    /// draw because no cached victim or shard-local candidate was
    /// available.
    pub steal_fallbacks: u64,
    /// Deque switches (idle worker resumed one of its ready deques).
    pub deque_switches: u64,
    /// Deques ever allocated in the global registry.
    pub deques_allocated: u64,
    /// Latency suspensions recorded.
    pub suspensions: u64,
    /// Resume events delivered.
    pub resumes: u64,
    /// Resumed-vertex batches injected (pfor vertices pushed).
    pub pfor_batches: u64,
    /// Maximum live (non-freed) deques any worker owned at once
    /// (Lemma 7: ≤ U + 1).
    pub max_deques_per_worker: u64,
    /// Worker unparks issued by the sleeper set (one per injected task or
    /// resume batch at most — never a broadcast).
    pub unparks: u64,
    /// I/O readiness registrations filed with a reactor driver (one per
    /// `read_ready`/`write_ready` wait that reached the kernel).
    pub io_registrations: u64,
    /// Readiness events a reactor driver turned into resume deliveries.
    pub io_readiness_events: u64,
    /// I/O waits that resolved by deadline expiry rather than readiness.
    pub io_timeouts: u64,
    /// Live-set registry shard compactions (dense id lists shrunk after
    /// mass releases).
    pub registry_compactions: u64,
    /// Deques currently in the registry's live set (gauge, racy snapshot).
    pub live_deques: u64,
    /// High-water mark of the registry-wide live set; Lemma 7 bounds it by
    /// `P * (U + 1)`.
    pub live_deques_high_water: u64,
}

/// Former name of [`MetricsSnapshot`]. Kept so pre-builder callers of
/// `Runtime::metrics()` keep compiling; new code should name the snapshot
/// type explicitly.
pub type Metrics = MetricsSnapshot;

impl MetricsSnapshot {
    /// Difference between two snapshots (per-run metrics from a long-lived
    /// runtime). `earlier` must be an older snapshot of the *same* runtime;
    /// all monotonic counters are subtracted, while
    /// `max_deques_per_worker` — a lifetime high-water mark, not a rate —
    /// keeps the later value.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut m = *self;
        m.polls = self.polls - earlier.polls;
        m.tasks_spawned = self.tasks_spawned - earlier.tasks_spawned;
        m.steals_attempted = self.steals_attempted - earlier.steals_attempted;
        m.steals_succeeded = self.steals_succeeded - earlier.steals_succeeded;
        m.steals_dead_target = self.steals_dead_target - earlier.steals_dead_target;
        m.steal_retries = self.steal_retries - earlier.steal_retries;
        m.steal_batch_tasks = self.steal_batch_tasks - earlier.steal_batch_tasks;
        m.steal_affinity_hits = self.steal_affinity_hits - earlier.steal_affinity_hits;
        m.steal_fallbacks = self.steal_fallbacks - earlier.steal_fallbacks;
        m.deque_switches = self.deque_switches - earlier.deque_switches;
        m.deques_allocated = self.deques_allocated - earlier.deques_allocated;
        m.suspensions = self.suspensions - earlier.suspensions;
        m.resumes = self.resumes - earlier.resumes;
        m.pfor_batches = self.pfor_batches - earlier.pfor_batches;
        // Max is global, not differentiable; keep the later value.
        m.max_deques_per_worker = self.max_deques_per_worker;
        m.unparks = self.unparks - earlier.unparks;
        m.io_registrations = self.io_registrations - earlier.io_registrations;
        m.io_readiness_events = self.io_readiness_events - earlier.io_readiness_events;
        m.io_timeouts = self.io_timeouts - earlier.io_timeouts;
        m.registry_compactions = self.registry_compactions - earlier.registry_compactions;
        // Gauges and high-water marks are not differentiable; keep the
        // later values.
        m.live_deques = self.live_deques;
        m.live_deques_high_water = self.live_deques_high_water;
        m
    }

    /// Alias for [`MetricsSnapshot::delta`], kept for pre-builder callers.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        self.delta(earlier)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "polls:                 {}", self.polls)?;
        writeln!(f, "tasks spawned:         {}", self.tasks_spawned)?;
        writeln!(
            f,
            "steals:                {} attempted, {} succeeded, {} dead targets",
            self.steals_attempted, self.steals_succeeded, self.steals_dead_target
        )?;
        writeln!(f, "steal retries:         {}", self.steal_retries)?;
        writeln!(f, "steal batch tasks:     {}", self.steal_batch_tasks)?;
        writeln!(
            f,
            "steal affinity:        {} hits, {} fallbacks",
            self.steal_affinity_hits, self.steal_fallbacks
        )?;
        writeln!(f, "deque switches:        {}", self.deque_switches)?;
        writeln!(f, "deques allocated:      {}", self.deques_allocated)?;
        writeln!(f, "suspensions:           {}", self.suspensions)?;
        writeln!(f, "resumes:               {}", self.resumes)?;
        writeln!(f, "pfor batches:          {}", self.pfor_batches)?;
        writeln!(f, "max deques per worker: {}", self.max_deques_per_worker)?;
        writeln!(f, "unparks:               {}", self.unparks)?;
        writeln!(f, "io registrations:      {}", self.io_registrations)?;
        writeln!(f, "io readiness events:   {}", self.io_readiness_events)?;
        writeln!(f, "io timeouts:           {}", self.io_timeouts)?;
        writeln!(f, "registry compactions:  {}", self.registry_compactions)?;
        write!(
            f,
            "live deques:           {} (high water {})",
            self.live_deques, self.live_deques_high_water
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = Counters::default();
        c.bump(&c.polls);
        c.bump(&c.polls);
        c.bump(&c.suspensions);
        let m = c.snapshot();
        assert_eq!(m.polls, 2);
        assert_eq!(m.suspensions, 1);
        assert_eq!(m.resumes, 0);
    }

    #[test]
    fn observe_deques_keeps_max() {
        let c = Counters::default();
        c.observe_deques(3);
        c.observe_deques(1);
        c.observe_deques(7);
        c.observe_deques(2);
        assert_eq!(c.snapshot().max_deques_per_worker, 7);
    }

    #[test]
    fn delta_subtracts() {
        let c = Counters::default();
        c.bump(&c.polls);
        let a = c.snapshot();
        c.bump(&c.polls);
        c.bump(&c.polls);
        let b = c.snapshot();
        assert_eq!(b.delta(&a).polls, 2);
        // `since` stays as an alias for pre-builder callers.
        assert_eq!(b.since(&a), b.delta(&a));
    }

    /// Golden test: the exact `Display` layout, label order included.
    /// Scrapers and log differs key off this — change it consciously,
    /// update this pin in the same commit.
    #[test]
    fn display_golden_order() {
        let m = MetricsSnapshot::default();
        let expected = "\
polls:                 0
tasks spawned:         0
steals:                0 attempted, 0 succeeded, 0 dead targets
steal retries:         0
steal batch tasks:     0
steal affinity:        0 hits, 0 fallbacks
deque switches:        0
deques allocated:      0
suspensions:           0
resumes:               0
pfor batches:          0
max deques per worker: 0
unparks:               0
io registrations:      0
io readiness events:   0
io timeouts:           0
registry compactions:  0
live deques:           0 (high water 0)";
        assert_eq!(m.to_string(), expected);
    }

    #[test]
    fn delta_covers_steal_policy_counters() {
        let c = Counters::default();
        let a = c.snapshot();
        c.bump(&c.steal_batch_tasks);
        c.bump(&c.steal_affinity_hits);
        c.bump(&c.steal_affinity_hits);
        c.bump(&c.steal_fallbacks);
        let d = c.snapshot().delta(&a);
        assert_eq!(
            (
                d.steal_batch_tasks,
                d.steal_affinity_hits,
                d.steal_fallbacks
            ),
            (1, 2, 1)
        );
    }

    #[test]
    fn display_lists_every_counter() {
        let c = Counters::default();
        c.bump(&c.steals_attempted);
        c.observe_deques(5);
        let s = c.snapshot().to_string();
        assert!(s.contains("steals:                1 attempted"));
        assert!(s.contains("steal retries:         0"));
        assert!(s.contains("steal batch tasks:     0"));
        assert!(s.contains("steal affinity:        0 hits, 0 fallbacks"));
        assert!(s.contains("max deques per worker: 5"));
        assert!(s.contains("io registrations:      0"));
        assert!(s.contains("registry compactions:  0"));
        assert!(s.contains("live deques:           0 (high water 0)"));
        assert!(s.lines().count() >= 15);
    }

    #[test]
    fn io_counters_sum_and_delta() {
        let c = Counters::with_workers(2);
        c.worker(0).bump(&c.worker(0).io_registrations);
        c.bump(&c.io_registrations);
        c.bump(&c.io_readiness_events);
        let a = c.snapshot();
        assert_eq!(a.io_registrations, 2);
        assert_eq!(a.io_readiness_events, 1);
        assert_eq!(a.io_timeouts, 0);
        c.bump(&c.io_timeouts);
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.io_registrations, 0);
        assert_eq!(d.io_timeouts, 1);
    }

    #[test]
    fn steal_policy_counters_sum_and_delta() {
        let c = Counters::with_workers(2);
        c.worker(0).add(&c.worker(0).steal_batch_tasks, 7);
        c.worker(1).bump(&c.worker(1).steal_affinity_hits);
        c.bump(&c.steal_fallbacks);
        c.bump(&c.steal_retries);
        let a = c.snapshot();
        assert_eq!(a.steal_batch_tasks, 7);
        assert_eq!(a.steal_affinity_hits, 1);
        assert_eq!(a.steal_fallbacks, 1);
        assert_eq!(a.steal_retries, 1);
        c.add(&c.steal_batch_tasks, 3);
        let d = c.snapshot().delta(&a);
        assert_eq!(d.steal_batch_tasks, 3);
        assert_eq!(d.steal_affinity_hits, 0);
    }

    #[test]
    fn per_worker_blocks_aggregate() {
        let c = Counters::with_workers(4);
        for i in 0..4 {
            c.worker(i).bump(&c.worker(i).polls);
        }
        c.bump(&c.polls); // shared block
        assert_eq!(c.snapshot().polls, 5);
        c.worker(2).observe_deques(9);
        c.observe_deques(3);
        assert_eq!(c.snapshot().max_deques_per_worker, 9);
    }

    #[test]
    fn counter_blocks_are_padded() {
        assert_eq!(std::mem::align_of::<CachePadded<CounterBlock>>(), 128);
        assert!(std::mem::size_of::<CachePadded<CounterBlock>>().is_multiple_of(128));
    }
}
