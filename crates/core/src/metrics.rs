//! Runtime metrics: relaxed atomic counters, cheap on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters shared by all workers. All updates are `Relaxed`: metrics are
/// diagnostics, not synchronization.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub polls: AtomicU64,
    pub tasks_spawned: AtomicU64,
    pub steals_attempted: AtomicU64,
    pub steals_succeeded: AtomicU64,
    pub deque_switches: AtomicU64,
    pub deques_allocated: AtomicU64,
    pub suspensions: AtomicU64,
    pub resumes: AtomicU64,
    pub pfor_batches: AtomicU64,
    pub max_deques_per_worker: AtomicU64,
}

impl Counters {
    #[inline]
    pub fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotonic max update.
    pub fn observe_deques(&self, live: u64) {
        self.max_deques_per_worker
            .fetch_max(live, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> Metrics {
        Metrics {
            polls: self.polls.load(Ordering::Relaxed),
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            steals_attempted: self.steals_attempted.load(Ordering::Relaxed),
            steals_succeeded: self.steals_succeeded.load(Ordering::Relaxed),
            deque_switches: self.deque_switches.load(Ordering::Relaxed),
            deques_allocated: self.deques_allocated.load(Ordering::Relaxed),
            suspensions: self.suspensions.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            pfor_batches: self.pfor_batches.load(Ordering::Relaxed),
            max_deques_per_worker: self.max_deques_per_worker.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the runtime's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Task polls performed (≥ task count; re-polls after suspension add).
    pub polls: u64,
    /// Tasks ever spawned (including pfor batch tasks).
    pub tasks_spawned: u64,
    /// Steal attempts `R`.
    pub steals_attempted: u64,
    /// Successful steals.
    pub steals_succeeded: u64,
    /// Deque switches (idle worker resumed one of its ready deques).
    pub deque_switches: u64,
    /// Deques ever allocated in the global registry.
    pub deques_allocated: u64,
    /// Latency suspensions recorded.
    pub suspensions: u64,
    /// Resume events delivered.
    pub resumes: u64,
    /// Resumed-vertex batches injected (pfor vertices pushed).
    pub pfor_batches: u64,
    /// Maximum live (non-freed) deques any worker owned at once
    /// (Lemma 7: ≤ U + 1).
    pub max_deques_per_worker: u64,
}

impl Metrics {
    /// Difference between two snapshots (per-run metrics from a long-lived
    /// runtime).
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            polls: self.polls - earlier.polls,
            tasks_spawned: self.tasks_spawned - earlier.tasks_spawned,
            steals_attempted: self.steals_attempted - earlier.steals_attempted,
            steals_succeeded: self.steals_succeeded - earlier.steals_succeeded,
            deque_switches: self.deque_switches - earlier.deque_switches,
            deques_allocated: self.deques_allocated - earlier.deques_allocated,
            suspensions: self.suspensions - earlier.suspensions,
            resumes: self.resumes - earlier.resumes,
            pfor_batches: self.pfor_batches - earlier.pfor_batches,
            // Max is global, not differentiable; keep the later value.
            max_deques_per_worker: self.max_deques_per_worker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = Counters::default();
        c.bump(&c.polls);
        c.bump(&c.polls);
        c.bump(&c.suspensions);
        let m = c.snapshot();
        assert_eq!(m.polls, 2);
        assert_eq!(m.suspensions, 1);
        assert_eq!(m.resumes, 0);
    }

    #[test]
    fn observe_deques_keeps_max() {
        let c = Counters::default();
        c.observe_deques(3);
        c.observe_deques(1);
        c.observe_deques(7);
        c.observe_deques(2);
        assert_eq!(c.snapshot().max_deques_per_worker, 7);
    }

    #[test]
    fn since_subtracts() {
        let c = Counters::default();
        c.bump(&c.polls);
        let a = c.snapshot();
        c.bump(&c.polls);
        c.bump(&c.polls);
        let b = c.snapshot();
        assert_eq!(b.since(&a).polls, 2);
    }
}
