//! Attachment points for external event-source drivers (I/O reactors).
//!
//! The scheduler itself knows nothing about sockets or `epoll`; what it
//! exports is the *resume machinery*: an [`external_op`](crate::external_op)
//! suspension pairs a task with its deque, and firing the
//! [`Completer`](crate::Completer) from any thread routes a resume event
//! through the owner's inbox. A **driver** (e.g. `lhws_net`'s reactor) is
//! a subsystem that turns kernel readiness into those completions. This
//! module gives drivers the two things they cannot reach from outside the
//! crate:
//!
//! * [`DriverHooks`] — a cheap handle into the runtime's observability
//!   layers: the `io_*` metrics counters (bumped on the calling worker's
//!   cache-padded block when possible), the `IoRegister`/`IoReady`/
//!   `IoDeregister` trace events (routed to the worker's own SPSC ring
//!   when the calling thread is a worker of this runtime, to the shared
//!   side buffer otherwise), and the
//!   [`DroppedReadiness`](crate::FaultSite::DroppedReadiness) fault site.
//! * [`Driver`] — the shutdown half. A driver registered via
//!   [`Runtime::attach_driver`](crate::Runtime::attach_driver) is shut
//!   down by [`Runtime::shutdown`](crate::Runtime::shutdown) **before**
//!   the workers are stopped, so the cancellations it settles (dropped
//!   completers → `Err(Canceled)` resumes) are still drained and counted
//!   rather than leaked. The waits it cancels are summed into
//!   [`ShutdownReport::canceled_io_waits`](crate::ShutdownReport::canceled_io_waits).

use std::sync::Weak;

use crate::config::LatencyMode;
use crate::runtime::RtInner;
use crate::trace::{EventKind, NONE_ID};
use crate::worker;

/// An external event source attached to a runtime.
///
/// The only protocol obligation is deterministic shutdown: when the
/// runtime shuts down it calls [`Driver::shutdown`] exactly once, while
/// the workers are still running, and expects the driver to stop its
/// threads, drain its registration table (settling every in-flight wait
/// as canceled) and report what it cancelled.
pub trait Driver: Send + Sync + 'static {
    /// Short human-readable name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Stops the driver: joins its threads, drains every registered wait
    /// (each must settle — typically `Err(Canceled)` via a dropped
    /// completer) and returns the tally. Must be idempotent; the runtime
    /// calls it once, but a standalone driver handle may race it.
    fn shutdown(&self) -> DriverReport;
}

/// What a [`Driver`] cancelled when it was shut down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverReport {
    /// In-flight waits settled as canceled by the shutdown drain.
    pub canceled_waits: u64,
    /// Registration-table entries (e.g. file descriptors) drained.
    pub drained_registrations: u64,
}

/// One I/O wait lifecycle event, as reported by a driver through
/// [`DriverHooks::trace_io`]. A wait is `Register`ed exactly once and
/// resolved at most once — by `Ready` (kernel readiness consumed) or by
/// `Deregister` (cancel, timeout, shutdown drain) — the pairing the
/// trace auditor checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoTraceEvent {
    /// A readiness wait was filed with the driver.
    Register {
        /// The wait's unique token.
        token: u64,
    },
    /// The wait resolved via kernel readiness.
    Ready {
        /// The wait's unique token.
        token: u64,
    },
    /// The wait was withdrawn without readiness (cancel, timeout, or
    /// the shutdown drain).
    Deregister {
        /// The wait's unique token.
        token: u64,
    },
}

/// A driver's handle into the runtime's metrics, trace, and fault layers.
///
/// Obtained from [`Runtime::driver_hooks`](crate::Runtime::driver_hooks).
/// Holds only a weak reference: every method is a no-op (or `false`/`None`)
/// once the runtime is gone, so a driver outliving its runtime is safe.
#[derive(Clone)]
pub struct DriverHooks {
    rt: Weak<RtInner>,
}

impl std::fmt::Debug for DriverHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverHooks")
            .field("runtime_alive", &(self.rt.strong_count() > 0))
            .finish()
    }
}

impl DriverHooks {
    pub(crate) fn new(rt: Weak<RtInner>) -> DriverHooks {
        DriverHooks { rt }
    }

    /// Counts one I/O readiness registration (a wait that reached the
    /// kernel). Call where the wait is filed — usually on a worker
    /// thread mid-poll, so the bump lands on its padded counter block.
    pub fn count_io_registration(&self) {
        if let Some(rt) = self.rt.upgrade() {
            match worker::current_worker_index_in(&rt) {
                Some(w) => {
                    let c = rt.counters.worker(w);
                    c.bump(&c.io_registrations);
                }
                None => rt.counters.bump(&rt.counters.io_registrations),
            }
        }
    }

    /// Counts one kernel readiness event turned into a completion.
    pub fn count_io_readiness(&self) {
        if let Some(rt) = self.rt.upgrade() {
            match worker::current_worker_index_in(&rt) {
                Some(w) => {
                    let c = rt.counters.worker(w);
                    c.bump(&c.io_readiness_events);
                }
                None => rt.counters.bump(&rt.counters.io_readiness_events),
            }
        }
    }

    /// Counts one I/O wait resolved by deadline expiry instead of
    /// readiness.
    pub fn count_io_timeout(&self) {
        if let Some(rt) = self.rt.upgrade() {
            match worker::current_worker_index_in(&rt) {
                Some(w) => {
                    let c = rt.counters.worker(w);
                    c.bump(&c.io_timeouts);
                }
                None => rt.counters.bump(&rt.counters.io_timeouts),
            }
        }
    }

    /// Traces one I/O wait lifecycle event. The single entry point for
    /// all driver-side trace emission — new event kinds extend
    /// [`IoTraceEvent`], not this type's method list.
    pub fn trace_io(&self, event: IoTraceEvent) {
        self.trace(match event {
            IoTraceEvent::Register { token } => EventKind::IoRegister { token },
            IoTraceEvent::Ready { token } => EventKind::IoReady { token },
            IoTraceEvent::Deregister { token } => EventKind::IoDeregister { token },
        });
    }

    /// Traces an `IoRegister` event for wait `token`.
    #[deprecated(
        since = "0.1.0",
        note = "use `trace_io(IoTraceEvent::Register { token })`"
    )]
    pub fn trace_io_register(&self, token: u64) {
        self.trace_io(IoTraceEvent::Register { token });
    }

    /// Traces an `IoReady` event for wait `token`.
    #[deprecated(
        since = "0.1.0",
        note = "use `trace_io(IoTraceEvent::Ready { token })`"
    )]
    pub fn trace_io_ready(&self, token: u64) {
        self.trace_io(IoTraceEvent::Ready { token });
    }

    /// Traces an `IoDeregister` event for wait `token`.
    #[deprecated(
        since = "0.1.0",
        note = "use `trace_io(IoTraceEvent::Deregister { token })`"
    )]
    pub fn trace_io_deregister(&self, token: u64) {
        self.trace_io(IoTraceEvent::Deregister { token });
    }

    fn trace(&self, kind: EventKind) {
        if let Some(rt) = self.rt.upgrade() {
            if let Some(t) = &rt.tracer {
                // The worker's own ring requires being its producer
                // thread; everything else goes to the side buffer.
                match worker::current_worker_index_in(&rt) {
                    Some(w) => t.record(w, kind),
                    None => t.record_shared(NONE_ID, kind),
                }
            }
        }
    }

    /// Rolls the [`DroppedReadiness`](crate::FaultSite::DroppedReadiness)
    /// fault site: `true` means the driver should swallow this readiness
    /// event (neither firing the completer nor disarming interest) and
    /// rely on level-triggered re-reporting for recovery. Always `false`
    /// without a fault plan.
    pub fn drop_readiness(&self) -> bool {
        self.rt
            .upgrade()
            .and_then(|rt| rt.faults.clone())
            .is_some_and(|f| f.dropped_readiness())
    }

    /// The runtime's latency mode, or `None` once it is gone. Drivers use
    /// this to skip their event thread entirely in
    /// [`LatencyMode::Block`] — the paper's blocking baseline.
    pub fn mode(&self) -> Option<LatencyMode> {
        self.rt.upgrade().map(|rt| rt.config.mode)
    }

    /// True once the runtime has begun shutting down (or is gone).
    pub fn is_shutdown(&self) -> bool {
        match self.rt.upgrade() {
            Some(rt) => rt.is_shutdown(),
            None => true,
        }
    }
}
