//! Join handles: awaiting another task's result.
//!
//! A join edge is a *light* synchronization edge in the paper's model: the
//! joining task suspends without charging the active deque's suspension
//! counter, and the completing child re-enables it through the ordinary
//! waker path (pushed onto the completer's active deque — the enabling-edge
//! semantics of work stealing).

use std::any::Any;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

/// Payload of a propagated panic.
pub(crate) type PanicPayload = Box<dyn Any + Send + 'static>;

/// Shared completion cell between a task and its join handle.
#[derive(Debug)]
pub(crate) struct JoinCell<T> {
    inner: Mutex<JoinState<T>>,
}

#[derive(Debug)]
struct JoinState<T> {
    result: Option<Result<T, PanicPayload>>,
    waker: Option<Waker>,
}

impl<T> JoinCell<T> {
    pub fn new() -> Arc<Self> {
        Arc::new(JoinCell {
            inner: Mutex::new(JoinState {
                result: None,
                waker: None,
            }),
        })
    }

    /// Stores the result and wakes the joiner, if any.
    pub fn complete(&self, result: Result<T, PanicPayload>) {
        let waker = {
            let mut s = self.inner.lock();
            debug_assert!(s.result.is_none(), "task completed twice");
            s.result = Some(result);
            s.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    fn poll_result(&self, cx: &mut Context<'_>) -> Poll<Result<T, PanicPayload>> {
        let mut s = self.inner.lock();
        if let Some(r) = s.result.take() {
            Poll::Ready(r)
        } else {
            // Replace rather than clone_from: wakers are cheap Arc clones.
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    /// Non-blocking check used by `JoinHandle::is_finished`.
    pub fn is_done(&self) -> bool {
        self.inner.lock().result.is_some()
    }
}

/// Handle to a spawned task. Awaiting it yields the task's output; if the
/// task panicked, the panic is propagated to the awaiter (matching the
/// fork-join semantics where a child's panic surfaces at the join point).
#[derive(Debug)]
pub struct JoinHandle<T> {
    cell: Arc<JoinCell<T>>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(cell: Arc<JoinCell<T>>) -> Self {
        JoinHandle { cell }
    }

    /// True if the task has completed (successfully or by panic).
    pub fn is_finished(&self) -> bool {
        self.cell.is_done()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        match self.cell.poll_result(cx) {
            Poll::Ready(Ok(v)) => Poll::Ready(v),
            Poll::Ready(Err(payload)) => std::panic::resume_unwind(payload),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Future adapter that converts a panic during `poll` into a
/// `Ready(Err(payload))`, so task bodies never unwind through the worker.
pub(crate) struct CatchUnwind<F> {
    inner: F,
}

impl<F> CatchUnwind<F> {
    pub fn new(inner: F) -> Self {
        CatchUnwind { inner }
    }
}

impl<F: Future> Future for CatchUnwind<F> {
    type Output = Result<F::Output, PanicPayload>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: structural pinning of the only field.
        let inner = unsafe { self.map_unchecked_mut(|s| &mut s.inner) };
        match catch_unwind(AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(payload) => Poll::Ready(Err(payload)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::task::Wake;

    struct NoopWake;
    impl Wake for NoopWake {
        fn wake(self: Arc<Self>) {}
    }

    fn noop_cx_waker() -> Waker {
        Waker::from(Arc::new(NoopWake))
    }

    #[test]
    fn complete_then_poll() {
        let cell = JoinCell::new();
        cell.complete(Ok(42));
        let mut h = JoinHandle::new(cell);
        let waker = noop_cx_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(matches!(Pin::new(&mut h).poll(&mut cx), Poll::Ready(42)));
    }

    #[test]
    fn poll_then_complete_wakes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        struct Flag(AtomicBool);
        impl Wake for Flag {
            fn wake(self: Arc<Self>) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let flag = Arc::new(Flag(AtomicBool::new(false)));
        let waker = Waker::from(flag.clone());
        let mut cx = Context::from_waker(&waker);

        let cell = JoinCell::new();
        let mut h = JoinHandle::new(cell.clone());
        assert!(Pin::new(&mut h).poll(&mut cx).is_pending());
        assert!(!h.is_finished());
        cell.complete(Ok("done"));
        assert!(flag.0.load(Ordering::SeqCst), "completion wakes the joiner");
        assert!(h.is_finished());
        assert!(matches!(
            Pin::new(&mut h).poll(&mut cx),
            Poll::Ready("done")
        ));
    }

    #[test]
    #[should_panic(expected = "child panicked")]
    fn panic_propagates_at_join() {
        let cell = JoinCell::<()>::new();
        cell.complete(Err(Box::new("child panicked".to_string())));
        let mut h = JoinHandle::new(cell);
        let waker = noop_cx_waker();
        let mut cx = Context::from_waker(&waker);
        let _ = Pin::new(&mut h).poll(&mut cx);
    }

    #[test]
    fn catch_unwind_maps_panic() {
        struct Bomb;
        impl Future for Bomb {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
                panic!("boom");
            }
        }
        let mut f = CatchUnwind::new(Bomb);
        let waker = noop_cx_waker();
        let mut cx = Context::from_waker(&waker);
        // Silence the default panic hook for this expected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = Pin::new(&mut f).poll(&mut cx);
        std::panic::set_hook(prev);
        assert!(matches!(out, Poll::Ready(Err(_))));
    }

    #[test]
    fn catch_unwind_passes_values() {
        let mut f = CatchUnwind::new(std::future::ready(5));
        let waker = noop_cx_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(matches!(Pin::new(&mut f).poll(&mut cx), Poll::Ready(Ok(5))));
    }
}
