//! The timer substrate: delivers latency expirations.
//!
//! The paper's model assumes an external world (remote servers, users,
//! storage) that makes suspended vertices ready again after their latency.
//! This module is that world's stand-in, realized with the "polling in a
//! separate (system) thread" option the paper's §3 footnote describes.
//! Expirations are routed to the worker owning the suspended task's deque
//! — the paper's `callback(v, q)` — in **batches**: all of a worker's
//! expirations that fall due together arrive as one [`Vec<ResumeEvent>`],
//! so the worker pays one inbox transfer and one wake-up per burst instead
//! of per suspension, and can build a single pfor reinjection tree over
//! the burst.
//!
//! Two interchangeable implementations exist (selected by
//! [`TimerKind`](crate::config::TimerKind)):
//!
//! * [`wheel`] — the default: a sharded hierarchical timer wheel with
//!   per-shard locks, amortized O(1) insertion, and per-(worker, tick)
//!   batch delivery.
//! * [`heap`] — the original global-mutex binary heap, kept as the
//!   ablation baseline; it delivers singleton batches.

mod heap;
mod wheel;

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::config::{Config, TimerKind};
use crate::task::TaskRef;

pub(crate) use heap::HeapTimer;
pub(crate) use wheel::WheelTimer;

/// A latency expiration to deliver.
#[derive(Debug)]
pub(crate) struct TimerEntry {
    /// When the latency expires.
    pub deadline: Instant,
    /// Worker owning the deque the task suspended on.
    pub worker: usize,
    /// The suspended task.
    pub task: TaskRef,
    /// The owner's local index of that deque.
    pub local_deque: usize,
    /// Trace suspension id pairing this expiration with its `Suspend`
    /// event (`0` when tracing is off). Carried opaquely by the timer.
    pub seq: u64,
}

/// A deadline notification callback, invoked exactly once by the timer:
/// with `true` when the deadline expired, or `false` when the timer shut
/// down (or was already shut down at registration) before the deadline.
/// Used by [`crate::external::DeadlineOp`] to settle `Err(TimedOut)` /
/// `Err(Canceled)` without a dedicated suspension.
pub(crate) type DeadlineCallback = Box<dyn FnOnce(bool) + Send + 'static>;

/// Resume event delivered to a worker inbox: the paper's `callback(v, q)`
/// arguments.
#[derive(Debug)]
pub(crate) struct ResumeEvent {
    /// The resumed task (`v`).
    pub task: TaskRef,
    /// The owner's local index of the deque it belongs to (`q`).
    pub local_deque: usize,
    /// Trace suspension id (`0` when tracing is off).
    pub seq: u64,
    /// Trace timestamp at which the event was handed to the runtime (the
    /// suspension's *enable* time). Stamped by the sink; `0` from timers.
    pub enabled_at: u64,
}

/// Where the timer delivers expirations. Provided by the runtime.
pub(crate) trait ResumeSink: Send + Sync + 'static {
    /// Delivers a non-empty batch of events to worker `worker`'s inbox and
    /// wakes it (at most one unpark for the whole batch). `tick` is the
    /// timer tick the batch expired on (`0` for tick-free timers); it only
    /// labels trace events.
    fn deliver_batch(&self, worker: usize, tick: u64, events: Vec<ResumeEvent>);
}

/// Handle to the configured timer implementation. Cloning shares the
/// underlying timer.
#[derive(Clone)]
pub(crate) enum Timer {
    /// Global-mutex binary heap (ablation baseline).
    Heap(Arc<HeapTimer>),
    /// Sharded hierarchical timer wheel (default).
    Wheel(Arc<WheelTimer>),
}

impl Timer {
    /// Creates the timer selected by `config` and spawns its thread(s),
    /// delivering into `sink`. The returned handles must be joined after
    /// [`Timer::shutdown`].
    pub fn start(config: &Config, sink: Arc<dyn ResumeSink>) -> (Timer, Vec<JoinHandle<()>>) {
        match config.timer_kind {
            TimerKind::Heap => {
                let (t, h) = HeapTimer::start(sink);
                (Timer::Heap(t), vec![h])
            }
            TimerKind::Wheel => {
                let shards = if config.timer_shards == 0 {
                    config.workers
                } else {
                    config.timer_shards
                };
                let (t, hs) =
                    WheelTimer::start(shards, config.timer_tick, config.resume_batch_limit, sink);
                (Timer::Wheel(t), hs)
            }
        }
    }

    /// Registers a latency expiration.
    pub fn register(&self, entry: TimerEntry) {
        match self {
            Timer::Heap(t) => t.register(entry),
            Timer::Wheel(t) => t.register(entry),
        }
    }

    /// Registers a deadline callback: `cb(true)` fires when `deadline`
    /// passes, `cb(false)` when the timer shuts down first.
    pub fn register_deadline(&self, deadline: Instant, cb: DeadlineCallback) {
        match self {
            Timer::Heap(t) => t.register_deadline(deadline, cb),
            Timer::Wheel(t) => t.register_deadline(deadline, cb),
        }
    }

    /// Signals the timer thread(s) to exit. Pending resume entries are
    /// dropped (counted in [`Timer::canceled_ops`]); pending deadline
    /// callbacks fire with `false`.
    pub fn shutdown(&self) {
        match self {
            Timer::Heap(t) => t.shutdown(),
            Timer::Wheel(t) => t.shutdown(),
        }
    }

    /// Operations canceled by shutdown: resume entries dropped undelivered
    /// plus deadline callbacks fired with `false` (including registrations
    /// that arrived after shutdown).
    pub fn canceled_ops(&self) -> u64 {
        match self {
            Timer::Heap(t) => t.canceled_ops(),
            Timer::Wheel(t) => t.canceled_ops(),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for heap/wheel timer tests.

    use super::*;
    use parking_lot::Mutex;

    /// Records delivered batches: `(worker, events, batch_len)` per event,
    /// plus the batch boundaries.
    pub struct CollectSink {
        /// One `(worker, local_deque)` per delivered event, in order.
        pub events: Mutex<Vec<(usize, usize)>>,
        /// One `(worker, len)` per delivered batch, in order.
        pub batches: Mutex<Vec<(usize, usize)>>,
    }

    impl CollectSink {
        pub fn new() -> Arc<Self> {
            Arc::new(CollectSink {
                events: Mutex::new(Vec::new()),
                batches: Mutex::new(Vec::new()),
            })
        }

        pub fn total_events(&self) -> usize {
            self.events.lock().len()
        }
    }

    impl ResumeSink for CollectSink {
        fn deliver_batch(&self, worker: usize, _tick: u64, events: Vec<ResumeEvent>) {
            assert!(!events.is_empty(), "empty batch delivered");
            self.batches.lock().push((worker, events.len()));
            let mut got = self.events.lock();
            for e in events {
                got.push((worker, e.local_deque));
            }
        }
    }

    pub fn dummy_task() -> TaskRef {
        use crate::task::{BoxFuture, Task};
        let fut: BoxFuture = Box::pin(async {});
        Task::new_queued(std::sync::Weak::new(), fut)
    }

    pub fn entry(deadline: Instant, worker: usize, local_deque: usize) -> TimerEntry {
        TimerEntry {
            deadline,
            worker,
            task: dummy_task(),
            local_deque,
            seq: 0,
        }
    }

    /// Polls until `sink` has `n` events or `secs` elapse.
    pub fn wait_for_events(sink: &CollectSink, n: usize, secs: u64) {
        let deadline = Instant::now() + std::time::Duration::from_secs(secs);
        while sink.total_events() < n && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}
