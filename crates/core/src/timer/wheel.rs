//! Sharded hierarchical timer wheel — the default timer.
//!
//! # Why a wheel
//!
//! Under latency-hiding work stealing every suspension registers a timer,
//! so with P workers each suspending at rate λ the timer sees P·λ
//! insertions per second. The original heap timer serializes all of them
//! behind one mutex and pays O(log n) per insert; at P ≥ 8 the lock is the
//! bottleneck of the whole suspend path. The wheel removes both costs:
//!
//! * **Sharding** — the wheel is split into `nshards` independent shards
//!   (default: one per worker). An insertion locks only the shard of the
//!   suspending worker (`worker % nshards`), so with the default shard
//!   count a worker's insertions contend only with the expiration thread
//!   of its own shard, never with other workers.
//! * **Hashed hierarchical slots** — each shard keeps [`LEVELS`] rings of
//!   [`SLOTS`] slots. Level `l` slots are `64^l` ticks wide; an entry
//!   lands in the lowest level whose span covers its remaining delay, and
//!   cascades one level down each time its slot's boundary passes.
//!   Insertion is O(1): compute the level from the delta, push onto a
//!   `Vec`.
//! * **Batched expiry** — all entries expiring at the same tick for the
//!   same worker are delivered as **one** [`ResumeSink::deliver_batch`]
//!   call (chunked by `batch_limit`), so a burst of resumes costs the
//!   worker one inbox transfer and at most one unpark, and the worker can
//!   reinject the whole burst through a single pfor tree. The tick
//!   duration is therefore also the batching window.
//!
//! Deadlines are rounded **up** to the next tick boundary; an entry never
//! fires early, and fires at most one tick late plus scheduling noise.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use super::{DeadlineCallback, ResumeEvent, ResumeSink, TimerEntry};
use crate::task::TaskRef;

/// Slots per level. 64 keeps slot indexing a mask and shift.
const SLOTS: usize = 64;
/// Wheel levels. Four levels cover `64^4` ticks (≈ 14 days at the default
/// 50µs tick); later deadlines sit in a per-shard overflow list.
const LEVELS: usize = 4;
/// log2(SLOTS), for shift-based slot math.
const SLOT_BITS: u32 = 6;

/// Pseudo-worker index for deadline-callback entries. Sorts after every
/// real worker in [`WheelTimer::deliver`], so callbacks never interleave
/// with (or batch into) resume deliveries.
const DEADLINE_WORKER: usize = usize::MAX;

/// What a wheel slot holds: a latency expiration to deliver through the
/// resume sink, or a deadline callback to invoke directly.
enum Payload {
    Resume {
        task: TaskRef,
        local_deque: usize,
        /// Trace suspension id, carried through to the [`ResumeEvent`].
        seq: u64,
    },
    Deadline(DeadlineCallback),
}

/// An entry resident in the wheel, its deadline quantized to an absolute
/// tick.
struct Pending {
    /// Absolute expiry tick (deadline rounded up).
    expiry: u64,
    /// Owning worker, or [`DEADLINE_WORKER`] for callbacks.
    worker: usize,
    payload: Payload,
}

/// Width of a level-`l` slot, in ticks.
#[inline]
fn slot_width(level: usize) -> u64 {
    1u64 << (SLOT_BITS * level as u32)
}

/// Ticks covered by all of level `l` (64 slots).
#[inline]
fn level_span(level: usize) -> u64 {
    1u64 << (SLOT_BITS * (level as u32 + 1))
}

struct ShardState {
    /// `wheel[level][slot]` — entries awaiting that slot's turn.
    wheel: Vec<Vec<Vec<Pending>>>,
    /// Entries beyond the top level's span.
    overflow: Vec<Pending>,
    /// All ticks ≤ `current` have been drained.
    current: u64,
    /// Entries resident in this shard (wheel + overflow).
    count: usize,
    /// Tick the shard thread is sleeping until (`u64::MAX` = indefinite,
    /// `0` = awake). Registrations earlier than this must notify.
    wake_at: u64,
    shutdown: bool,
}

impl ShardState {
    fn new(start_tick: u64) -> Self {
        ShardState {
            wheel: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            current: start_tick,
            count: 0,
            wake_at: 0,
            shutdown: false,
        }
    }

    /// Files `p` into the lowest level covering its remaining delay, or
    /// `due` if it has already expired. Does not touch `count`.
    fn place(&mut self, p: Pending, due: &mut Vec<Pending>) {
        if p.expiry <= self.current {
            due.push(p);
            return;
        }
        let delta = p.expiry - self.current;
        for level in 0..LEVELS {
            if delta < level_span(level) {
                let slot = ((p.expiry >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.wheel[level][slot].push(p);
                return;
            }
        }
        self.overflow.push(p);
    }

    /// Advances one tick: cascades any slot whose boundary this tick
    /// crosses, then drains the level-0 slot into `due`.
    fn step(&mut self, due: &mut Vec<Pending>) {
        let due_before = due.len();
        let c = self.current;
        if c.is_multiple_of(slot_width(LEVELS - 1)) && !self.overflow.is_empty() {
            let overflow = std::mem::take(&mut self.overflow);
            for p in overflow {
                self.place(p, due);
            }
        }
        for level in (1..LEVELS).rev() {
            if c.is_multiple_of(slot_width(level)) {
                let slot = ((c >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                let entries = std::mem::take(&mut self.wheel[level][slot]);
                for p in entries {
                    self.place(p, due);
                }
            }
        }
        let slot = (c & (SLOTS as u64 - 1)) as usize;
        if !self.wheel[0][slot].is_empty() {
            for p in self.wheel[0][slot].drain(..) {
                debug_assert_eq!(p.expiry, c, "level-0 slot holds a foreign tick");
                due.push(p);
            }
        }
        let drained = due.len() - due_before;
        self.count -= drained.min(self.count);
    }

    /// Earliest tick at which something can happen: a level-0 expiry, a
    /// higher-level cascade, or an overflow re-scan. Conservative (may be
    /// early — the thread just recomputes), never late. `None` = empty.
    fn next_event_tick(&self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            let pos = self.current >> (SLOT_BITS * level as u32);
            for j in 1..=SLOTS as u64 {
                let candidate = (pos + j) << (SLOT_BITS * level as u32);
                if best.is_some_and(|b| candidate >= b) {
                    break;
                }
                if !self.wheel[level][((pos + j) & (SLOTS as u64 - 1)) as usize].is_empty() {
                    best = Some(candidate);
                    break;
                }
            }
        }
        if !self.overflow.is_empty() {
            let width = slot_width(LEVELS - 1);
            let candidate = (self.current / width + 1) * width;
            if best.is_none_or(|b| candidate < b) {
                best = Some(candidate);
            }
        }
        best
    }

    /// Removes every resident entry (used at shutdown so pending resumes
    /// can be counted and deadline callbacks canceled).
    fn drain_all(&mut self) -> Vec<Pending> {
        let mut out = Vec::with_capacity(self.count);
        for level in &mut self.wheel {
            for slot in level {
                out.append(slot);
            }
        }
        out.append(&mut self.overflow);
        self.count = 0;
        out
    }
}

struct Shard {
    state: Mutex<ShardState>,
    cond: Condvar,
}

/// Sharded hierarchical timer wheel.
pub(crate) struct WheelTimer {
    shards: Box<[Shard]>,
    tick: Duration,
    origin: Instant,
    batch_limit: usize,
    /// Entries canceled by (or registered after) shutdown.
    canceled: AtomicU64,
    /// Round-robin cursor spreading deadline callbacks across shards.
    deadline_rr: AtomicUsize,
}

impl WheelTimer {
    /// Creates a wheel with `nshards` shards and spawns one expiration
    /// thread per shard, delivering into `sink`.
    pub fn start(
        nshards: usize,
        tick: Duration,
        batch_limit: usize,
        sink: Arc<dyn ResumeSink>,
    ) -> (Arc<WheelTimer>, Vec<JoinHandle<()>>) {
        let nshards = nshards.max(1);
        let tick = tick.max(Duration::from_micros(1));
        let timer = Arc::new(WheelTimer {
            shards: (0..nshards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState::new(0)),
                    cond: Condvar::new(),
                })
                .collect(),
            tick,
            origin: Instant::now(),
            batch_limit: batch_limit.max(1),
            canceled: AtomicU64::new(0),
            deadline_rr: AtomicUsize::new(0),
        });
        let handles = (0..nshards)
            .map(|i| {
                let t = timer.clone();
                let s = sink.clone();
                std::thread::Builder::new()
                    .name(format!("lhws-timer-{i}"))
                    .spawn(move || t.run(i, s))
                    .expect("spawn timer shard thread")
            })
            .collect();
        (timer, handles)
    }

    /// Current tick (floor): every expiry tick ≤ this is due.
    fn now_tick(&self) -> u64 {
        (self.origin.elapsed().as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Deadline → absolute expiry tick, rounded up (never fires early).
    fn expiry_tick(&self, deadline: Instant) -> u64 {
        let delay = deadline.saturating_duration_since(self.origin).as_nanos();
        let tick = self.tick.as_nanos();
        (delay.div_ceil(tick)).min(u64::MAX as u128) as u64
    }

    /// Registers a latency expiration. Locks only the shard of the
    /// entry's worker.
    pub fn register(&self, entry: TimerEntry) {
        let shard = &self.shards[entry.worker % self.shards.len()];
        let expiry = self.expiry_tick(entry.deadline);
        let payload = Payload::Resume {
            task: entry.task,
            local_deque: entry.local_deque,
            seq: entry.seq,
        };
        if self.insert(shard, expiry, entry.worker, payload).is_some() {
            // Runtime is dying; drop the entry with the task, but count it.
            self.canceled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Registers a deadline callback (`cb(true)` at expiry, `cb(false)`
    /// when shutdown wins). Callbacks are spread round-robin over shards.
    pub fn register_deadline(&self, deadline: Instant, cb: DeadlineCallback) {
        let idx = self.deadline_rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let expiry = self.expiry_tick(deadline);
        let rejected = self.insert(
            &self.shards[idx],
            expiry,
            DEADLINE_WORKER,
            Payload::Deadline(cb),
        );
        if let Some(Payload::Deadline(cb)) = rejected {
            self.canceled.fetch_add(1, Ordering::Relaxed);
            cb(false);
        }
    }

    /// Files a payload into `shard`, or hands it back if the shard is shut
    /// down (so cancellation runs without any shard lock held).
    fn insert(
        &self,
        shard: &Shard,
        expiry: u64,
        worker: usize,
        payload: Payload,
    ) -> Option<Payload> {
        let mut s = shard.state.lock();
        if s.shutdown {
            return Some(payload);
        }
        // Quantize past/immediate deadlines to the next tick so delivery
        // always flows through the shard thread (and batches with
        // neighbors).
        let expiry = expiry.max(s.current + 1);
        let p = Pending {
            expiry,
            worker,
            payload,
        };
        let mut due = Vec::new();
        s.place(p, &mut due);
        debug_assert!(due.is_empty(), "clamped expiry cannot be due");
        s.count += 1;
        let must_wake = expiry < s.wake_at;
        drop(s);
        if must_wake {
            shard.cond.notify_one();
        }
        None
    }

    /// Signals every shard thread to exit. Pending resume entries are
    /// dropped (counted); pending deadline callbacks fire with `false`,
    /// outside every shard lock.
    pub fn shutdown(&self) {
        let mut canceled_cbs = Vec::new();
        let mut dropped = 0u64;
        for shard in self.shards.iter() {
            let mut s = shard.state.lock();
            if !s.shutdown {
                s.shutdown = true;
                for p in s.drain_all() {
                    match p.payload {
                        Payload::Resume { .. } => dropped += 1,
                        Payload::Deadline(cb) => canceled_cbs.push(cb),
                    }
                }
            }
            drop(s);
            shard.cond.notify_one();
        }
        self.canceled
            .fetch_add(dropped + canceled_cbs.len() as u64, Ordering::Relaxed);
        for cb in canceled_cbs {
            cb(false);
        }
    }

    /// Entries canceled by shutdown (or registered after it).
    pub fn canceled_ops(&self) -> u64 {
        self.canceled.load(Ordering::Relaxed)
    }

    fn run(&self, index: usize, sink: Arc<dyn ResumeSink>) {
        let shard = &self.shards[index];
        let mut s = shard.state.lock();
        loop {
            if s.shutdown {
                return;
            }
            let now = self.now_tick();
            let mut due: Vec<Pending> = Vec::new();
            if s.count == 0 {
                // Nothing resident: skip the idle gap in O(1).
                s.current = s.current.max(now);
            } else {
                while s.current < now {
                    s.current += 1;
                    s.step(&mut due);
                }
            }
            if !due.is_empty() {
                // Deliver without holding the shard lock: the sink takes
                // inbox locks and unparks workers.
                drop(s);
                self.deliver(due, &sink);
                s = shard.state.lock();
                continue; // time advanced during delivery; re-check
            }
            match s.next_event_tick() {
                None => {
                    s.wake_at = u64::MAX;
                    shard.cond.wait(&mut s);
                }
                Some(wake) => {
                    s.wake_at = wake;
                    let nanos = (self.tick.as_nanos() as u64).saturating_mul(wake);
                    let deadline = self.origin + Duration::from_nanos(nanos);
                    shard.cond.wait_until(&mut s, deadline);
                }
            }
            s.wake_at = 0;
        }
    }

    /// Groups `due` by worker and delivers one batch per worker (chunked
    /// by `batch_limit`). The stable sort preserves per-worker expiry and
    /// registration order; deadline callbacks sort last
    /// ([`DEADLINE_WORKER`]) and fire one by one with `true`.
    fn deliver(&self, mut due: Vec<Pending>, sink: &Arc<dyn ResumeSink>) {
        due.sort_by_key(|p| p.worker);
        let mut rest = due.into_iter().peekable();
        while let Some(first) = rest.next() {
            let worker = first.worker;
            let tick = first.expiry;
            let (task, local_deque, seq) = match first.payload {
                Payload::Resume {
                    task,
                    local_deque,
                    seq,
                } => (task, local_deque, seq),
                Payload::Deadline(cb) => {
                    cb(true);
                    continue;
                }
            };
            let mut batch = Vec::with_capacity(self.batch_limit.min(16));
            batch.push(ResumeEvent {
                task,
                local_deque,
                seq,
                enabled_at: 0,
            });
            while batch.len() < self.batch_limit && rest.peek().is_some_and(|p| p.worker == worker)
            {
                let p = rest.next().expect("peeked");
                match p.payload {
                    Payload::Resume {
                        task,
                        local_deque,
                        seq,
                    } => batch.push(ResumeEvent {
                        task,
                        local_deque,
                        seq,
                        enabled_at: 0,
                    }),
                    // Unreachable in practice (DEADLINE_WORKER never equals
                    // a real worker index), but fire rather than lose it.
                    Payload::Deadline(cb) => cb(true),
                }
            }
            sink.deliver_batch(worker, tick, batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use rand::{Rng, SeedableRng};

    fn start_wheel(
        shards: usize,
        tick: Duration,
        batch_limit: usize,
    ) -> (Arc<CollectSink>, Arc<WheelTimer>, Vec<JoinHandle<()>>) {
        let sink = CollectSink::new();
        let (timer, handles) = WheelTimer::start(shards, tick, batch_limit, sink.clone());
        (sink, timer, handles)
    }

    fn finish(timer: Arc<WheelTimer>, handles: Vec<JoinHandle<()>>) {
        timer.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn delivers_in_deadline_order() {
        let (sink, timer, handles) = start_wheel(2, Duration::from_micros(200), 1024);
        let now = Instant::now();
        timer.register(entry(now + Duration::from_millis(30), 1, 20));
        timer.register(entry(now + Duration::from_millis(10), 1, 10));
        wait_for_events(&sink, 2, 2);
        assert_eq!(sink.events.lock().as_slice(), &[(1, 10), (1, 20)]);
        finish(timer, handles);
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let (sink, timer, handles) = start_wheel(1, Duration::from_micros(50), 1024);
        timer.register(entry(Instant::now() - Duration::from_millis(5), 0, 7));
        wait_for_events(&sink, 1, 2);
        assert_eq!(sink.events.lock().as_slice(), &[(0, 7)]);
        finish(timer, handles);
    }

    #[test]
    fn shutdown_unblocks_all_shards() {
        // Cross-shard shutdown: every shard thread must exit, including
        // ones idle-waiting and ones sleeping toward a far deadline.
        let (_sink, timer, handles) = start_wheel(4, Duration::from_micros(50), 1024);
        timer.register(entry(Instant::now() + Duration::from_secs(3600), 2, 0));
        std::thread::sleep(Duration::from_millis(10));
        finish(timer, handles); // must not hang
    }

    #[test]
    fn same_tick_same_worker_is_one_batch() {
        // A coarse tick makes the batching window explicit: everything
        // registered for the same tick arrives as one deliver_batch call.
        let (sink, timer, handles) = start_wheel(1, Duration::from_millis(20), 1024);
        let deadline = Instant::now() + Duration::from_millis(25);
        for i in 0..10 {
            timer.register(entry(deadline, 3, i));
        }
        wait_for_events(&sink, 10, 2);
        assert_eq!(sink.batches.lock().as_slice(), &[(3, 10)]);
        // Within the tick, registration order is preserved.
        let events = sink.events.lock();
        assert_eq!(
            events.iter().map(|&(_, d)| d).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        finish(timer, handles);
    }

    #[test]
    fn batch_limit_chunks_bursts() {
        let (sink, timer, handles) = start_wheel(1, Duration::from_millis(20), 4);
        let deadline = Instant::now() + Duration::from_millis(25);
        for i in 0..10 {
            timer.register(entry(deadline, 0, i));
        }
        wait_for_events(&sink, 10, 2);
        let batches = sink.batches.lock();
        assert_eq!(batches.iter().map(|&(_, n)| n).sum::<usize>(), 10);
        assert!(batches.iter().all(|&(w, n)| w == 0 && n <= 4));
        finish(timer, handles);
    }

    #[test]
    fn batches_split_by_worker() {
        // One shard serving two workers must still deliver per-worker
        // batches, never a mixed one.
        let (sink, timer, handles) = start_wheel(1, Duration::from_millis(20), 1024);
        let deadline = Instant::now() + Duration::from_millis(25);
        for i in 0..6 {
            timer.register(entry(deadline, i % 2, i));
        }
        wait_for_events(&sink, 6, 2);
        {
            let batches = sink.batches.lock();
            assert_eq!(batches.len(), 2);
            assert!(batches.iter().any(|&(w, n)| w == 0 && n == 3));
            assert!(batches.iter().any(|&(w, n)| w == 1 && n == 3));
        }
        finish(timer, handles);
    }

    #[test]
    fn random_deadlines_none_lost_none_duplicated() {
        // Property: every registration is delivered exactly once, to the
        // right worker, across shards and cascade boundaries. A 1ms tick
        // with deadlines up to ~190ms exercises level-1 placement and
        // cascading (level 0 spans 64 ticks).
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x57EE1);
        let (sink, timer, handles) = start_wheel(4, Duration::from_millis(1), 1024);
        let now = Instant::now();
        let n = 400;
        for i in 0..n {
            let worker = rng.gen_range(0..8usize);
            let delay = rng.gen_range(0..190u64);
            timer.register(entry(now + Duration::from_millis(delay), worker, i));
        }
        wait_for_events(&sink, n, 5);
        let events = sink.events.lock();
        assert_eq!(events.len(), n, "lost expirations");
        let mut ids: Vec<usize> = events.iter().map(|&(_, d)| d).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicated expirations");
        drop(events);
        finish(timer, handles);
    }

    #[test]
    fn deadlines_never_fire_early() {
        let (sink, timer, handles) = start_wheel(2, Duration::from_millis(5), 1024);
        let start = Instant::now();
        let delay = Duration::from_millis(40);
        timer.register(entry(start + delay, 0, 0));
        wait_for_events(&sink, 1, 2);
        assert!(start.elapsed() >= delay, "fired before its deadline");
        finish(timer, handles);
    }

    #[test]
    fn state_places_and_cascades() {
        // Pure ShardState check, no threads: an entry 100 ticks out lands
        // in level 1, cascades to level 0 at the 64-tick boundary, and
        // expires exactly at its tick.
        let mut s = ShardState::new(0);
        let mut due = Vec::new();
        s.place(
            Pending {
                expiry: 100,
                worker: 0,
                payload: Payload::Resume {
                    task: dummy_task(),
                    local_deque: 9,
                    seq: 0,
                },
            },
            &mut due,
        );
        s.count = 1;
        assert!(due.is_empty());
        assert_eq!(s.next_event_tick(), Some(64)); // level-1 cascade boundary
        for _ in 0..99 {
            s.current += 1;
            s.step(&mut due);
            assert!(due.is_empty(), "fired early at tick {}", s.current);
        }
        s.current += 1;
        s.step(&mut due);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].expiry, 100);
        assert_eq!(s.count, 0);
        assert_eq!(s.next_event_tick(), None);
    }

    #[test]
    fn state_overflow_reenters_wheel() {
        let mut s = ShardState::new(0);
        let mut due = Vec::new();
        let far = level_span(LEVELS - 1) + 5; // beyond the top level's span
        s.place(
            Pending {
                expiry: far,
                worker: 0,
                payload: Payload::Resume {
                    task: dummy_task(),
                    local_deque: 0,
                    seq: 0,
                },
            },
            &mut due,
        );
        s.count = 1;
        assert_eq!(s.overflow.len(), 1);
        // Jump near the overflow rescan boundary and step across it.
        let width = slot_width(LEVELS - 1);
        s.current = width - 1;
        s.step(&mut due); // not a boundary; overflow untouched
        assert_eq!(s.overflow.len(), 1);
        s.current += 1; // current == width → rescan boundary
        s.step(&mut due);
        assert!(s.overflow.is_empty(), "overflow entry not refiled");
        assert!(due.is_empty());
        assert_eq!(s.count, 1);
    }

    #[test]
    fn deadline_callbacks_fire_and_cancel() {
        use std::sync::atomic::AtomicU32;
        let (sink, timer, handles) = start_wheel(2, Duration::from_micros(200), 1024);
        let fired = Arc::new(AtomicU32::new(0));
        let f2 = fired.clone();
        timer.register_deadline(
            Instant::now() + Duration::from_millis(5),
            Box::new(move |expired| {
                f2.store(if expired { 1 } else { 2 }, Ordering::SeqCst);
            }),
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while fired.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "deadline expired");
        assert_eq!(sink.total_events(), 0, "callbacks never reach the sink");

        // A far-future callback is canceled (cb(false)) by shutdown, and a
        // post-shutdown registration cancels immediately.
        let canceled = Arc::new(AtomicU32::new(0));
        let c2 = canceled.clone();
        timer.register_deadline(
            Instant::now() + Duration::from_secs(60),
            Box::new(move |expired| {
                c2.store(if expired { 1 } else { 2 }, Ordering::SeqCst);
            }),
        );
        finish(timer.clone(), handles);
        assert_eq!(canceled.load(Ordering::SeqCst), 2, "canceled at shutdown");
        assert_eq!(timer.canceled_ops(), 1);

        let late = Arc::new(AtomicU32::new(0));
        let l2 = late.clone();
        timer.register_deadline(
            Instant::now() + Duration::from_secs(60),
            Box::new(move |expired| {
                l2.store(if expired { 1 } else { 2 }, Ordering::SeqCst);
            }),
        );
        assert_eq!(late.load(Ordering::SeqCst), 2);
        assert_eq!(timer.canceled_ops(), 2);
    }

    #[test]
    fn shutdown_counts_dropped_resume_entries() {
        let (sink, timer, handles) = start_wheel(2, Duration::from_micros(200), 1024);
        let far = Instant::now() + Duration::from_secs(60);
        for i in 0..6 {
            timer.register(entry(far, i, 0));
        }
        finish(timer.clone(), handles);
        assert_eq!(timer.canceled_ops(), 6);
        assert_eq!(sink.total_events(), 0);
    }
}
