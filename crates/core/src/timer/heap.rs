//! The original timer: one thread, one mutex, one binary heap.
//!
//! Kept as the [`TimerKind::Heap`](crate::config::TimerKind::Heap)
//! ablation baseline for the sharded wheel in [`super::wheel`]. Every
//! registration takes the single global lock (O(log n) heap push) and
//! every expiration is delivered as its own singleton batch, so at scale
//! both the lock and the per-event delivery cost show up clearly against
//! the wheel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use super::{ResumeEvent, ResumeSink, TimerEntry};

struct HeapEntry {
    deadline: Instant,
    seq: u64,
    entry: TimerEntry,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

#[derive(Default)]
struct TimerState {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    shutdown: bool,
}

/// Global-mutex binary-heap timer (the ablation baseline).
pub(crate) struct HeapTimer {
    state: Mutex<TimerState>,
    cond: Condvar,
}

impl HeapTimer {
    /// Creates the timer and spawns its thread, delivering into `sink`.
    pub fn start(sink: Arc<dyn ResumeSink>) -> (Arc<HeapTimer>, std::thread::JoinHandle<()>) {
        let timer = Arc::new(HeapTimer {
            state: Mutex::new(TimerState::default()),
            cond: Condvar::new(),
        });
        let t2 = timer.clone();
        let handle = std::thread::Builder::new()
            .name("lhws-timer".into())
            .spawn(move || t2.run(sink))
            .expect("spawn timer thread");
        (timer, handle)
    }

    /// Registers a latency expiration.
    pub fn register(&self, entry: TimerEntry) {
        let mut s = self.state.lock();
        let seq = s.seq;
        s.seq += 1;
        s.heap.push(Reverse(HeapEntry {
            deadline: entry.deadline,
            seq,
            entry,
        }));
        drop(s);
        self.cond.notify_one();
    }

    /// Signals the timer thread to exit.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cond.notify_one();
    }

    fn run(&self, sink: Arc<dyn ResumeSink>) {
        let mut s = self.state.lock();
        loop {
            if s.shutdown {
                return;
            }
            match s.heap.peek() {
                None => {
                    self.cond.wait(&mut s);
                }
                Some(Reverse(top)) => {
                    let now = Instant::now();
                    if top.deadline <= now {
                        let Reverse(he) = s.heap.pop().expect("peeked");
                        // Deliver without holding the lock: the sink may
                        // unpark threads or take inbox locks.
                        drop(s);
                        sink.deliver_batch(
                            he.entry.worker,
                            0,
                            vec![ResumeEvent {
                                task: he.entry.task,
                                local_deque: he.entry.local_deque,
                                seq: he.entry.seq,
                                enabled_at: 0,
                            }],
                        );
                        s = self.state.lock();
                    } else {
                        let deadline = top.deadline;
                        self.cond.wait_until(&mut s, deadline);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use std::time::Duration;

    #[test]
    fn delivers_in_deadline_order() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink.clone());
        let now = Instant::now();
        timer.register(entry(now + Duration::from_millis(30), 2, 20));
        timer.register(entry(now + Duration::from_millis(10), 1, 10));
        wait_for_events(&sink, 2, 2);
        {
            let got = sink.events.lock();
            assert_eq!(got.as_slice(), &[(1, 10), (2, 20)]);
        }
        timer.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink.clone());
        timer.register(entry(Instant::now() - Duration::from_millis(5), 0, 0));
        wait_for_events(&sink, 1, 2);
        assert_eq!(sink.total_events(), 1);
        timer.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_unblocks_empty_wait() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink);
        std::thread::sleep(Duration::from_millis(10));
        timer.shutdown();
        handle.join().unwrap(); // must not hang
    }

    #[test]
    fn many_timers_all_fire() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink.clone());
        let now = Instant::now();
        for i in 0..50 {
            timer.register(entry(
                now + Duration::from_millis(5 + (i % 7)),
                i as usize,
                0,
            ));
        }
        wait_for_events(&sink, 50, 2);
        assert_eq!(sink.total_events(), 50);
        timer.shutdown();
        handle.join().unwrap();
    }
}
