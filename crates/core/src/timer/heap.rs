//! The original timer: one thread, one mutex, one binary heap.
//!
//! Kept as the [`TimerKind::Heap`](crate::config::TimerKind::Heap)
//! ablation baseline for the sharded wheel in [`super::wheel`]. Every
//! registration takes the single global lock (O(log n) heap push) and
//! every expiration is delivered as its own singleton batch, so at scale
//! both the lock and the per-event delivery cost show up clearly against
//! the wheel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use super::{DeadlineCallback, ResumeEvent, ResumeSink, TimerEntry};

/// What a heap slot holds: a latency expiration to deliver through the
/// resume sink, or a deadline callback to invoke directly.
enum HeapItem {
    Resume(TimerEntry),
    Deadline(DeadlineCallback),
}

struct HeapEntry {
    deadline: Instant,
    seq: u64,
    item: HeapItem,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

#[derive(Default)]
struct TimerState {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    shutdown: bool,
}

/// Global-mutex binary-heap timer (the ablation baseline).
pub(crate) struct HeapTimer {
    state: Mutex<TimerState>,
    cond: Condvar,
    /// Entries canceled by (or registered after) shutdown.
    canceled: AtomicU64,
}

impl HeapTimer {
    /// Creates the timer and spawns its thread, delivering into `sink`.
    pub fn start(sink: Arc<dyn ResumeSink>) -> (Arc<HeapTimer>, std::thread::JoinHandle<()>) {
        let timer = Arc::new(HeapTimer {
            state: Mutex::new(TimerState::default()),
            cond: Condvar::new(),
            canceled: AtomicU64::new(0),
        });
        let t2 = timer.clone();
        let handle = std::thread::Builder::new()
            .name("lhws-timer".into())
            .spawn(move || t2.run(sink))
            .expect("spawn timer thread");
        (timer, handle)
    }

    /// Registers a latency expiration.
    pub fn register(&self, entry: TimerEntry) {
        let deadline = entry.deadline;
        if !self.push(deadline, HeapItem::Resume(entry)) {
            self.canceled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Registers a deadline callback (`cb(true)` at expiry, `cb(false)`
    /// when shutdown wins).
    pub fn register_deadline(&self, deadline: Instant, cb: DeadlineCallback) {
        if let Some(HeapItem::Deadline(cb)) = self.push_or_return(deadline, HeapItem::Deadline(cb))
        {
            self.canceled.fetch_add(1, Ordering::Relaxed);
            cb(false);
        }
    }

    /// Pushes `item` unless shut down. Returns `false` when rejected.
    fn push(&self, deadline: Instant, item: HeapItem) -> bool {
        self.push_or_return(deadline, item).is_none()
    }

    /// Pushes `item` unless shut down, returning the item back on
    /// rejection so the caller can run its cancellation path outside the
    /// lock.
    fn push_or_return(&self, deadline: Instant, item: HeapItem) -> Option<HeapItem> {
        let mut s = self.state.lock();
        if s.shutdown {
            return Some(item);
        }
        let seq = s.seq;
        s.seq += 1;
        s.heap.push(Reverse(HeapEntry {
            deadline,
            seq,
            item,
        }));
        drop(s);
        self.cond.notify_one();
        None
    }

    /// Signals the timer thread to exit, dropping pending resume entries
    /// (counted) and firing pending deadline callbacks with `false`.
    pub fn shutdown(&self) {
        let mut canceled_cbs = Vec::new();
        let mut dropped = 0u64;
        {
            let mut s = self.state.lock();
            if !s.shutdown {
                s.shutdown = true;
                for Reverse(he) in s.heap.drain() {
                    match he.item {
                        HeapItem::Resume(_) => dropped += 1,
                        HeapItem::Deadline(cb) => canceled_cbs.push(cb),
                    }
                }
            }
        }
        self.canceled
            .fetch_add(dropped + canceled_cbs.len() as u64, Ordering::Relaxed);
        self.cond.notify_one();
        for cb in canceled_cbs {
            cb(false);
        }
    }

    /// Entries canceled by shutdown (or registered after it).
    pub fn canceled_ops(&self) -> u64 {
        self.canceled.load(Ordering::Relaxed)
    }

    fn run(&self, sink: Arc<dyn ResumeSink>) {
        let mut s = self.state.lock();
        loop {
            if s.shutdown {
                return;
            }
            match s.heap.peek() {
                None => {
                    self.cond.wait(&mut s);
                }
                Some(Reverse(top)) => {
                    let now = Instant::now();
                    if top.deadline <= now {
                        let Reverse(he) = s.heap.pop().expect("peeked");
                        // Deliver without holding the lock: the sink may
                        // unpark threads or take inbox locks, and deadline
                        // callbacks take arbitrary user-side locks.
                        drop(s);
                        match he.item {
                            HeapItem::Resume(entry) => sink.deliver_batch(
                                entry.worker,
                                0,
                                vec![ResumeEvent {
                                    task: entry.task,
                                    local_deque: entry.local_deque,
                                    seq: entry.seq,
                                    enabled_at: 0,
                                }],
                            ),
                            HeapItem::Deadline(cb) => cb(true),
                        }
                        s = self.state.lock();
                    } else {
                        let deadline = top.deadline;
                        self.cond.wait_until(&mut s, deadline);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use std::time::Duration;

    #[test]
    fn delivers_in_deadline_order() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink.clone());
        let now = Instant::now();
        timer.register(entry(now + Duration::from_millis(30), 2, 20));
        timer.register(entry(now + Duration::from_millis(10), 1, 10));
        wait_for_events(&sink, 2, 2);
        {
            let got = sink.events.lock();
            assert_eq!(got.as_slice(), &[(1, 10), (2, 20)]);
        }
        timer.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink.clone());
        timer.register(entry(Instant::now() - Duration::from_millis(5), 0, 0));
        wait_for_events(&sink, 1, 2);
        assert_eq!(sink.total_events(), 1);
        timer.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_unblocks_empty_wait() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink);
        std::thread::sleep(Duration::from_millis(10));
        timer.shutdown();
        handle.join().unwrap(); // must not hang
    }

    #[test]
    fn many_timers_all_fire() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink.clone());
        let now = Instant::now();
        for i in 0..50 {
            timer.register(entry(
                now + Duration::from_millis(5 + (i % 7)),
                i as usize,
                0,
            ));
        }
        wait_for_events(&sink, 50, 2);
        assert_eq!(sink.total_events(), 50);
        timer.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn deadline_callbacks_fire_and_cancel() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink);
        let fired = Arc::new(AtomicU32::new(0));
        let f2 = fired.clone();
        timer.register_deadline(
            Instant::now() + Duration::from_millis(5),
            Box::new(move |expired| {
                f2.store(if expired { 1 } else { 2 }, Ordering::SeqCst);
            }),
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while fired.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1, "deadline expired");

        // A far-future callback is canceled (cb(false)) by shutdown.
        let canceled = Arc::new(AtomicU32::new(0));
        let c2 = canceled.clone();
        timer.register_deadline(
            Instant::now() + Duration::from_secs(60),
            Box::new(move |expired| {
                c2.store(if expired { 1 } else { 2 }, Ordering::SeqCst);
            }),
        );
        timer.shutdown();
        handle.join().unwrap();
        assert_eq!(canceled.load(Ordering::SeqCst), 2, "canceled at shutdown");
        assert_eq!(timer.canceled_ops(), 1);

        // Registration after shutdown cancels immediately.
        let late = Arc::new(AtomicU32::new(0));
        let l2 = late.clone();
        timer.register_deadline(
            Instant::now() + Duration::from_secs(60),
            Box::new(move |expired| {
                l2.store(if expired { 1 } else { 2 }, Ordering::SeqCst);
            }),
        );
        assert_eq!(late.load(Ordering::SeqCst), 2);
        assert_eq!(timer.canceled_ops(), 2);
    }

    #[test]
    fn shutdown_counts_dropped_resume_entries() {
        let sink = CollectSink::new();
        let (timer, handle) = HeapTimer::start(sink.clone());
        let far = Instant::now() + Duration::from_secs(60);
        for i in 0..4 {
            timer.register(entry(far, i, 0));
        }
        timer.shutdown();
        handle.join().unwrap();
        assert_eq!(timer.canceled_ops(), 4);
        assert_eq!(sink.total_events(), 0);
    }
}
