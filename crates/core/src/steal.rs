//! Per-worker steal-policy state: victim affinity and adaptive tuning.
//!
//! The paper's thief is memoryless — every probe draws a fresh uniform
//! victim ([`StealPolicy::Uniform`]). The alternative policies keep a
//! little state per worker, all of it thread-local to the thief (no
//! shared writes, no atomics):
//!
//! * **Affinity** ([`StealPolicy::Affinity`]): remember the last victim
//!   a steal succeeded against and try it again first; if the id has
//!   retired, prefer a draw from the same registry shard (deques of the
//!   same owner hash to one shard, so "same shard" approximates "same
//!   busy worker"); otherwise fall back to the uniform draw.
//! * **Adaptive** ([`StealPolicy::Adaptive`]): the affinity chain plus
//!   two feedback loops — the probe burst per idle step ramps between
//!   [`MIN_PROBES`] and [`MAX_PROBES`] on the observed hit rate (long
//!   dry spells mean work is scarce or contended: probe harder before
//!   parking), and the steal-half batch cap ramps between 1 and
//!   [`Config::steal_batch_limit`](crate::Config::steal_batch_limit) on
//!   observed victim depth (full batches mean deep victims: take more).
//!
//! All tuning is deliberately coarse (powers of two, fixed windows):
//! the point is to be robust across workloads, not optimal on one.

use lhws_deque::DequeId;

use crate::config::StealPolicy;

/// Baseline probe-burst length: how many victim draws one idle step
/// makes before giving the step back (re-checking resumes, then
/// parking). With the live-set index a draw hits a stealable target in
/// O(1) expected probes, so a short burst either finds work or strongly
/// suggests there is none. Every policy starts here; Adaptive ramps.
pub(crate) const MIN_PROBES: usize = 4;

/// Adaptive's probe-burst ceiling: bounded so an idle worker still
/// returns to its resume inbox and the parking check promptly.
pub(crate) const MAX_PROBES: usize = 16;

/// Steal attempts per adaptive tuning window. Hit rates are judged per
/// window, not per attempt, so one lucky steal cannot whipsaw the budget.
const WINDOW: u32 = 64;

/// Thief-local policy state. Owned by the worker, mutated only from its
/// own thread.
#[derive(Debug)]
pub(crate) struct PolicyState {
    policy: StealPolicy,
    /// Hard batch cap from [`Config::steal_batch_limit`](crate::Config::steal_batch_limit).
    limit: usize,
    /// Current steal-half cap: pinned at `limit` for fixed policies,
    /// ramped within `[1, limit]` by Adaptive.
    batch_cap: usize,
    /// Current probe budget per idle burst.
    probes: usize,
    /// Last victim a steal succeeded against (Affinity/Adaptive).
    last_victim: Option<DequeId>,
    /// Owner of the last successful victim; indexes the registry shard
    /// preferred once the victim id itself retires.
    preferred_owner: Option<usize>,
    window_attempts: u32,
    window_hits: u32,
}

impl PolicyState {
    pub fn new(policy: StealPolicy, limit: usize) -> Self {
        let limit = limit.max(1);
        PolicyState {
            policy,
            limit,
            // Adaptive earns its batch size from evidence of depth;
            // everyone else takes the configured cap at face value.
            batch_cap: if policy == StealPolicy::Adaptive {
                1
            } else {
                limit
            },
            probes: MIN_PROBES,
            last_victim: None,
            preferred_owner: None,
            window_attempts: 0,
            window_hits: 0,
        }
    }

    /// Number of victim draws the current idle burst makes.
    #[inline]
    pub fn probe_budget(&self) -> usize {
        self.probes
    }

    /// Current steal-half cap passed to the deque layer (1 = the plain
    /// single-item steal path).
    #[inline]
    pub fn batch_cap(&self) -> usize {
        self.batch_cap
    }

    /// The remembered last-successful victim, if any.
    #[inline]
    pub fn cached_victim(&self) -> Option<DequeId> {
        self.last_victim
    }

    /// The owner whose registry shard the thief prefers, if any.
    #[inline]
    pub fn preferred_owner(&self) -> Option<usize> {
        self.preferred_owner
    }

    /// Remembers `victim` (owned by `owner`) after a successful steal.
    pub fn record_hit(&mut self, victim: DequeId, owner: Option<usize>) {
        self.last_victim = Some(victim);
        if owner.is_some() {
            self.preferred_owner = owner;
        }
    }

    /// Forgets the cached victim id (it missed or retired). The shard
    /// preference survives: locality usually outlives one deque.
    pub fn clear_victim(&mut self) {
        self.last_victim = None;
    }

    /// Forgets the whole affinity signal — the same-shard draw came up
    /// dry, or the `AffinityStale` chaos fault poisoned the cache.
    pub fn poison(&mut self) {
        self.last_victim = None;
        self.preferred_owner = None;
    }

    /// Records one probe outcome. Adaptive retunes its probe budget
    /// every [`WINDOW`] attempts: a hit rate under 1/4 doubles the burst
    /// (work is scarce or contended — search harder before parking), a
    /// rate of 1/2 or better halves it back toward the baseline. No-op
    /// for the other policies.
    pub fn record_attempt(&mut self, hit: bool) {
        if self.policy != StealPolicy::Adaptive {
            return;
        }
        self.window_attempts += 1;
        self.window_hits += hit as u32;
        if self.window_attempts < WINDOW {
            return;
        }
        let (hits, attempts) = (self.window_hits, self.window_attempts);
        self.window_attempts = 0;
        self.window_hits = 0;
        if hits * 4 < attempts {
            self.probes = (self.probes * 2).min(MAX_PROBES);
        } else if hits * 2 >= attempts {
            self.probes = (self.probes / 2).max(MIN_PROBES);
        }
    }

    /// Records a successful claim of `n` tasks against cap `cap`.
    /// Adaptive grows its cap while victims run deep (the claim filled
    /// the cap) and shrinks it when claims come up short (`n ≤ cap/2`,
    /// i.e. the victim held few tasks — batching a shallow deque only
    /// strips the owner). No-op for the other policies.
    pub fn record_batch(&mut self, n: usize, cap: usize) {
        if self.policy != StealPolicy::Adaptive {
            return;
        }
        if n >= cap {
            self.batch_cap = (self.batch_cap * 2).min(self.limit);
        } else if n * 2 <= cap {
            self.batch_cap = (self.batch_cap / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policies_pin_cap_and_probes() {
        for policy in [
            StealPolicy::Uniform,
            StealPolicy::Affinity,
            StealPolicy::WorkerThenDeque,
        ] {
            let mut s = PolicyState::new(policy, 8);
            assert_eq!(s.batch_cap(), 8);
            assert_eq!(s.probe_budget(), MIN_PROBES);
            for _ in 0..10 * WINDOW {
                s.record_attempt(false);
                s.record_batch(1, 8);
            }
            assert_eq!(s.batch_cap(), 8, "{policy:?} cap never moves");
            assert_eq!(s.probe_budget(), MIN_PROBES, "{policy:?} probes never move");
        }
        // limit 0 is clamped, matching the deque layer.
        assert_eq!(PolicyState::new(StealPolicy::Uniform, 0).batch_cap(), 1);
    }

    #[test]
    fn adaptive_probes_ramp_on_dry_windows_and_decay_on_hits() {
        let mut s = PolicyState::new(StealPolicy::Adaptive, 1);
        assert_eq!(s.probe_budget(), MIN_PROBES);
        // Two bone-dry windows: 4 → 8 → 16, then saturate.
        for _ in 0..3 * WINDOW {
            s.record_attempt(false);
        }
        assert_eq!(s.probe_budget(), MAX_PROBES);
        // Hot windows decay back to the floor, never below.
        for _ in 0..3 * WINDOW {
            s.record_attempt(true);
        }
        assert_eq!(s.probe_budget(), MIN_PROBES);
        // A middling window (1/4 ≤ rate < 1/2) holds steady.
        for i in 0..WINDOW {
            s.record_attempt(i % 3 == 0);
        }
        assert_eq!(s.probe_budget(), MIN_PROBES);
    }

    #[test]
    fn adaptive_batch_cap_tracks_victim_depth() {
        let mut s = PolicyState::new(StealPolicy::Adaptive, 16);
        assert_eq!(s.batch_cap(), 1, "adaptive starts at single steals");
        // Full claims grow the cap geometrically up to the limit.
        s.record_batch(1, 1);
        assert_eq!(s.batch_cap(), 2);
        s.record_batch(2, 2);
        s.record_batch(4, 4);
        s.record_batch(8, 8);
        assert_eq!(s.batch_cap(), 16);
        s.record_batch(16, 16);
        assert_eq!(s.batch_cap(), 16, "capped at the configured limit");
        // Short claims shrink it back down to single steals.
        s.record_batch(8, 16);
        assert_eq!(s.batch_cap(), 8);
        s.record_batch(1, 8);
        s.record_batch(1, 4);
        s.record_batch(1, 2);
        assert_eq!(s.batch_cap(), 1);
        // A claim of just over half the cap holds steady.
        s.record_batch(1, 1);
        s.record_batch(2, 2);
        s.record_batch(3, 4);
        assert_eq!(s.batch_cap(), 4);
    }

    #[test]
    fn affinity_cache_lifecycle() {
        let mut s = PolicyState::new(StealPolicy::Affinity, 1);
        assert_eq!(s.cached_victim(), None);
        assert_eq!(s.preferred_owner(), None);
        s.record_hit(DequeId(7), Some(3));
        assert_eq!(s.cached_victim(), Some(DequeId(7)));
        assert_eq!(s.preferred_owner(), Some(3));
        // A miss drops the id but keeps the shard preference.
        s.clear_victim();
        assert_eq!(s.cached_victim(), None);
        assert_eq!(s.preferred_owner(), Some(3));
        // A hit without a known owner keeps the previous preference.
        s.record_hit(DequeId(9), None);
        assert_eq!(s.cached_victim(), Some(DequeId(9)));
        assert_eq!(s.preferred_owner(), Some(3));
        // Poisoning wipes everything.
        s.poison();
        assert_eq!(s.cached_victim(), None);
        assert_eq!(s.preferred_owner(), None);
    }
}
