//! Runtime configuration: the validated [`RuntimeBuilder`] entry point
//! (reached via [`crate::Runtime::builder`]), the plain [`Config`] knob
//! bag it is built from, and the typed [`ConfigError`] rejections.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use lhws_deque::DequeKind;

use crate::fault::{FaultPlan, FaultSite};
use crate::runtime::{Runtime, RuntimeError};

/// How the runtime treats latency-incurring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyMode {
    /// Latency-hiding work stealing (the paper's algorithm): a task that
    /// incurs latency suspends, its worker switches to other work, and the
    /// task is reinjected through the resumed-vertices machinery.
    #[default]
    Hide,
    /// The baseline the paper compares against: the worker *blocks* (the
    /// thread sleeps) for the full latency. One deque per worker; classic
    /// work stealing.
    Block,
}

/// Victim-selection policy for steals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// The analyzed algorithm: a uniformly random deque from the global
    /// registry (possibly freed or empty — a failed attempt). The
    /// paper-validated default.
    #[default]
    Uniform,
    /// Locality-aware victim selection: retry the last successful victim
    /// while it stays live, then prefer a deque from that victim's
    /// live-set shard, and only then fall back to the uniform draw
    /// (Suksompong/Leiserson/Schardl, arXiv:1804.04773: localized
    /// stealing retains near-optimal bounds).
    Affinity,
    /// [`Affinity`](Self::Affinity) victim selection plus metrics-driven
    /// tuning: the per-worker probe budget ramps up when the observed
    /// hit rate drops (contention) and the steal-half batch size ramps
    /// up — within [`Config::steal_batch_limit`] — while victims are deep
    /// enough to fill full batches (Gast/Khatiri/Trystram,
    /// arXiv:1805.00857: batching changes the makespan bound when steals
    /// have latency).
    Adaptive,
    /// The paper's §6 optimization: pick a random *worker*, then a random
    /// deque from the deques that worker currently advertises as
    /// stealable. Requires a little synchronization between workers but
    /// wastes fewer attempts on empty deques.
    WorkerThenDeque,
}

/// Timer implementation used to track latency deadlines. Analogous to
/// [`DequeKind`]: both variants implement the same protocol, so either can
/// back a run; the choice only affects constant factors. Kept selectable
/// for ablation benchmarks (`resume_path`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimerKind {
    /// Sharded hierarchical timer wheel: per-shard fine-grained locks,
    /// amortized O(1) insertion, and expirations delivered in per-worker
    /// batches. The default.
    #[default]
    Wheel,
    /// The original single-threaded binary-heap timer behind one global
    /// mutex: O(log n) insertion, one delivery per expiration. Kept as the
    /// ablation baseline.
    Heap,
}

/// Configuration for [`crate::Runtime`]. Build with the fluent setters.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of worker threads (default: available parallelism).
    pub workers: usize,
    /// Latency handling mode.
    pub mode: LatencyMode,
    /// Steal policy.
    pub steal_policy: StealPolicy,
    /// Hard cap on how many tasks one steal may transfer (steal-half
    /// claims `ceil(live/2)` up to this limit). The default of `1` is the
    /// paper's analyzed single-task steal for every policy; raising it
    /// enables batching for all policies, with [`StealPolicy::Adaptive`]
    /// additionally sizing batches dynamically within the cap.
    pub steal_batch_limit: usize,
    /// Deque implementation.
    pub deque_kind: DequeKind,
    /// Capacity of the global deque registry (`gDeques`). By Lemma 7 the
    /// algorithm needs at most `P · (U + 1)` deques; the default of 65 536
    /// is comfortable for any realistic suspension width.
    pub registry_capacity: usize,
    /// Number of live-set index shards in the deque registry. `0` (the
    /// default) means one shard per worker, which keeps each worker's
    /// register/release traffic on its own shard.
    pub registry_shards: usize,
    /// Whether thieves sample victims from the registry's live-set index
    /// (`true`, the default) or from the whole allocated slot prefix (the
    /// paper's plain `randomDeque()`, kept as an ablation baseline whose
    /// probes can land on dead slots — see the `steals_dead_target`
    /// metric).
    pub live_index: bool,
    /// How long an idle worker parks between scavenging rounds, in
    /// microseconds. Bounds wake-up staleness for events that race with
    /// parking.
    pub park_micros: u64,
    /// Pfor unfolding grain: resumed batches of at most this size are
    /// scheduled directly; larger batches split in half into stealable
    /// subtasks.
    pub pfor_grain: usize,
    /// Seed for the per-worker victim-selection RNGs.
    pub seed: u64,
    /// Timer implementation.
    pub timer_kind: TimerKind,
    /// Tick granularity of the timer wheel. Deadlines are rounded up to
    /// the next tick boundary, so this bounds both resume latency slop and
    /// the batching window: suspensions expiring within one tick of each
    /// other are delivered together. Ignored by [`TimerKind::Heap`].
    pub timer_tick: Duration,
    /// Number of timer-wheel shards. `0` (the default) means one shard per
    /// worker, which makes a worker's insertions contend only with
    /// expirations of its own timers. Ignored by [`TimerKind::Heap`].
    pub timer_shards: usize,
    /// Maximum resume events delivered to a worker in one batch. Larger
    /// batches amortize wake-up and locking cost; smaller ones reduce the
    /// burst a single worker must absorb before its next steal check.
    pub resume_batch_limit: usize,
    /// Per-worker trace ring capacity in events (rounded up to a power of
    /// two). `0` (the default) disables tracing entirely: no rings are
    /// allocated and every event site reduces to one never-taken branch.
    /// See [`crate::trace`].
    pub trace_capacity: usize,
    /// Deterministic fault-injection schedule for chaos testing. `None`
    /// (the default) builds no injector at all — every injection site
    /// reduces to one never-taken branch, the same zero-cost pattern as
    /// the tracer. See [`crate::fault`].
    pub fault_plan: Option<FaultPlan>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mode: LatencyMode::default(),
            steal_policy: StealPolicy::default(),
            steal_batch_limit: 1,
            deque_kind: DequeKind::default(),
            registry_capacity: 1 << 16,
            registry_shards: 0,
            live_index: true,
            park_micros: 100,
            pfor_grain: 4,
            seed: 0x1A7E_11C1,
            timer_kind: TimerKind::default(),
            timer_tick: Duration::from_micros(50),
            timer_shards: 0,
            resume_batch_limit: 1024,
            trace_capacity: 0,
            fault_plan: None,
        }
    }
}

impl Config {
    /// Sets the number of worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the latency-handling mode.
    pub fn mode(mut self, m: LatencyMode) -> Self {
        self.mode = m;
        self
    }

    /// Sets the steal policy.
    pub fn steal_policy(mut self, p: StealPolicy) -> Self {
        self.steal_policy = p;
        self
    }

    /// Sets the per-steal task transfer cap (clamped to ≥ 1; `1` is the
    /// paper's single-task steal).
    pub fn steal_batch_limit(mut self, n: usize) -> Self {
        self.steal_batch_limit = n.max(1);
        self
    }

    /// Sets the deque implementation.
    pub fn deque_kind(mut self, k: DequeKind) -> Self {
        self.deque_kind = k;
        self
    }

    /// Sets the registry capacity.
    pub fn registry_capacity(mut self, c: usize) -> Self {
        self.registry_capacity = c.max(self.workers);
        self
    }

    /// Sets the live-set shard count (`0` = one shard per worker).
    pub fn registry_shards(mut self, n: usize) -> Self {
        self.registry_shards = n;
        self
    }

    /// Selects the thief sampling path: live-set index (`true`) or the
    /// whole-slot-prefix baseline (`false`).
    pub fn live_index(mut self, on: bool) -> Self {
        self.live_index = on;
        self
    }

    /// Sets the idle park interval in microseconds.
    pub fn park_micros(mut self, us: u64) -> Self {
        self.park_micros = us.max(1);
        self
    }

    /// Sets the pfor unfolding grain.
    pub fn pfor_grain(mut self, g: usize) -> Self {
        self.pfor_grain = g.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the timer implementation.
    pub fn timer_kind(mut self, k: TimerKind) -> Self {
        self.timer_kind = k;
        self
    }

    /// Sets the timer-wheel tick granularity (clamped to ≥ 1µs).
    pub fn timer_tick(mut self, d: Duration) -> Self {
        self.timer_tick = d.max(Duration::from_micros(1));
        self
    }

    /// Sets the timer-wheel shard count (`0` = one shard per worker).
    pub fn timer_shards(mut self, n: usize) -> Self {
        self.timer_shards = n;
        self
    }

    /// Sets the per-delivery resume batch limit.
    pub fn resume_batch_limit(mut self, n: usize) -> Self {
        self.resume_batch_limit = n.max(1);
        self
    }

    /// Sets the per-worker trace ring capacity (`0` disables tracing).
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events;
        self
    }

    /// Enables deterministic fault injection with the given plan. See
    /// [`crate::fault`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validates the knob combination, returning the first violation.
    ///
    /// The fluent [`Config`] setters clamp rather than fail, so a `Config`
    /// built through them always passes. This catches direct field writes
    /// (all fields are `pub`) and is the single checker behind
    /// [`RuntimeBuilder::build`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.timer_tick.is_zero() {
            return Err(ConfigError::ZeroTimerTick);
        }
        if self.resume_batch_limit == 0 {
            return Err(ConfigError::ZeroResumeBatchLimit);
        }
        if self.pfor_grain == 0 {
            return Err(ConfigError::ZeroPforGrain);
        }
        if self.steal_batch_limit == 0 {
            return Err(ConfigError::ZeroStealBatchLimit);
        }
        if self.park_micros == 0 {
            return Err(ConfigError::ZeroParkInterval);
        }
        if self.registry_capacity < self.workers {
            return Err(ConfigError::RegistryTooSmall {
                capacity: self.registry_capacity,
                workers: self.workers,
            });
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate()?;
        }
        Ok(())
    }
}

/// A rejected [`RuntimeBuilder`] knob combination. Each variant names the
/// specific invalid setting so callers can report (or test) it precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `workers == 0`: the runtime needs at least one worker thread.
    ZeroWorkers,
    /// `timer_shards` was explicitly set to `0`. On the plain [`Config`]
    /// struct `0` means "one shard per worker", but the builder separates
    /// the auto default from an explicit zero and rejects the latter.
    ZeroTimerShards,
    /// `registry_shards` was explicitly set to `0` through the builder
    /// (on the plain [`Config`] struct `0` means "one shard per worker").
    ZeroRegistryShards,
    /// `timer_tick == 0`: the wheel cannot advance in zero-length ticks.
    ZeroTimerTick,
    /// `resume_batch_limit == 0`: deliveries could never carry an event.
    ZeroResumeBatchLimit,
    /// `pfor_grain == 0`: batch splitting would never terminate.
    ZeroPforGrain,
    /// `steal_batch_limit == 0`: a steal could never transfer a task.
    ZeroStealBatchLimit,
    /// `park_micros == 0`: idle workers would spin without ever parking.
    ZeroParkInterval,
    /// `registry_capacity < workers`: each worker needs at least its one
    /// initial deque slot in the global registry.
    RegistryTooSmall {
        /// The configured registry capacity.
        capacity: usize,
        /// The configured worker count it must cover.
        workers: usize,
    },
    /// A [`FaultPlan`] rate exceeds 1 000 000 ppm (rates are fractions of
    /// one million visits).
    FaultRateOutOfRange {
        /// The injection site whose rate is out of range.
        site: FaultSite,
        /// The offending rate.
        ppm: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be >= 1"),
            ConfigError::ZeroTimerShards => {
                write!(
                    f,
                    "timer_shards must be >= 1 (omit it for one shard per worker)"
                )
            }
            ConfigError::ZeroRegistryShards => {
                write!(
                    f,
                    "registry_shards must be >= 1 (omit it for one shard per worker)"
                )
            }
            ConfigError::ZeroTimerTick => write!(f, "timer_tick must be non-zero"),
            ConfigError::ZeroResumeBatchLimit => {
                write!(f, "resume_batch_limit must be >= 1")
            }
            ConfigError::ZeroPforGrain => write!(f, "pfor_grain must be >= 1"),
            ConfigError::ZeroStealBatchLimit => {
                write!(f, "steal_batch_limit must be >= 1")
            }
            ConfigError::ZeroParkInterval => write!(f, "park_micros must be >= 1"),
            ConfigError::RegistryTooSmall { capacity, workers } => write!(
                f,
                "registry_capacity ({capacity}) must be >= workers ({workers})"
            ),
            ConfigError::FaultRateOutOfRange { site, ppm } => {
                write!(f, "fault rate for {site:?} ({ppm} ppm) exceeds 1000000 ppm")
            }
        }
    }
}

impl Error for ConfigError {}

/// Validated constructor for [`Runtime`], reached via
/// [`Runtime::builder`](crate::Runtime::builder).
///
/// Unlike the fluent [`Config`] setters, which silently clamp out-of-range
/// values, the builder's setters store exactly what they are given and
/// [`RuntimeBuilder::build`] rejects invalid combinations with a typed
/// [`ConfigError`] (wrapped in [`RuntimeError::InvalidConfig`]). This is
/// the recommended entry point; `Config` remains as the plain knob bag for
/// call sites that predate the builder.
///
/// ```
/// use lhws_core::Runtime;
///
/// let rt = Runtime::builder().workers(2).build().unwrap();
/// assert_eq!(rt.workers(), 2);
/// ```
#[derive(Debug, Clone, Default)]
#[must_use = "builders do nothing until `build()` is called"]
pub struct RuntimeBuilder {
    cfg: Config,
    /// Distinguishes "never set" (auto: one shard per worker) from an
    /// explicit value, so an explicit `0` can be rejected.
    timer_shards: Option<usize>,
    /// Same auto-vs-explicit split for the registry's live-set shards.
    registry_shards: Option<usize>,
}

impl RuntimeBuilder {
    /// Starts from defaults ([`Config::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads. `0` is rejected at build time.
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Sets the latency-handling mode.
    pub fn mode(mut self, m: LatencyMode) -> Self {
        self.cfg.mode = m;
        self
    }

    /// Sets the steal policy.
    pub fn steal_policy(mut self, p: StealPolicy) -> Self {
        self.cfg.steal_policy = p;
        self
    }

    /// Sets the per-steal task transfer cap (steal-half batching). `0` is
    /// rejected at build time; `1` (the default) is the paper's
    /// single-task steal.
    pub fn steal_batch_limit(mut self, n: usize) -> Self {
        self.cfg.steal_batch_limit = n;
        self
    }

    /// Sets the deque implementation.
    pub fn deque_kind(mut self, k: DequeKind) -> Self {
        self.cfg.deque_kind = k;
        self
    }

    /// Sets the registry capacity. Must cover at least one deque per
    /// worker or build time rejects it.
    pub fn registry_capacity(mut self, c: usize) -> Self {
        self.cfg.registry_capacity = c;
        self
    }

    /// Sets the live-set shard count. Omit for the default of one shard
    /// per worker; an explicit `0` is rejected at build time.
    pub fn registry_shards(mut self, n: usize) -> Self {
        self.registry_shards = Some(n);
        self
    }

    /// Selects the thief sampling path: live-set index (`true`, the
    /// default) or the whole-slot-prefix baseline (`false`).
    pub fn live_index(mut self, on: bool) -> Self {
        self.cfg.live_index = on;
        self
    }

    /// Sets the idle park interval in microseconds. `0` is rejected at
    /// build time.
    pub fn park_micros(mut self, us: u64) -> Self {
        self.cfg.park_micros = us;
        self
    }

    /// Sets the pfor unfolding grain. `0` is rejected at build time.
    pub fn pfor_grain(mut self, g: usize) -> Self {
        self.cfg.pfor_grain = g;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Sets the timer implementation.
    pub fn timer_kind(mut self, k: TimerKind) -> Self {
        self.cfg.timer_kind = k;
        self
    }

    /// Sets the timer-wheel tick granularity. A zero duration is rejected
    /// at build time.
    pub fn timer_tick(mut self, d: Duration) -> Self {
        self.cfg.timer_tick = d;
        self
    }

    /// Sets the timer-wheel shard count. Omit for the default of one shard
    /// per worker; an explicit `0` is rejected at build time.
    pub fn timer_shards(mut self, n: usize) -> Self {
        self.timer_shards = Some(n);
        self
    }

    /// Sets the per-delivery resume batch limit. `0` is rejected at build
    /// time.
    pub fn resume_batch_limit(mut self, n: usize) -> Self {
        self.cfg.resume_batch_limit = n;
        self
    }

    /// Enables event tracing with the given per-worker ring capacity in
    /// events (rounded up to a power of two; `0` leaves tracing off). See
    /// [`crate::trace`].
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.cfg.trace_capacity = events;
        self
    }

    /// Enables deterministic fault injection with the given plan. Rates
    /// above 1 000 000 ppm are rejected at build time. See [`crate::fault`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Validates the configuration without starting a runtime, returning
    /// the would-be [`Config`].
    pub fn validate(&self) -> Result<Config, ConfigError> {
        if let Some(n) = self.timer_shards {
            if n == 0 {
                return Err(ConfigError::ZeroTimerShards);
            }
        }
        if let Some(n) = self.registry_shards {
            if n == 0 {
                return Err(ConfigError::ZeroRegistryShards);
            }
        }
        let mut cfg = self.cfg;
        cfg.timer_shards = self.timer_shards.unwrap_or(0);
        cfg.registry_shards = self.registry_shards.unwrap_or(0);
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates the knobs and starts the runtime.
    pub fn build(&self) -> Result<Runtime, RuntimeError> {
        let cfg = self.validate().map_err(RuntimeError::InvalidConfig)?;
        Runtime::new(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(c.workers >= 1);
        assert_eq!(c.mode, LatencyMode::Hide);
        assert_eq!(c.steal_policy, StealPolicy::Uniform);
        assert_eq!(c.steal_batch_limit, 1, "single-task steal by default");
        assert!(c.registry_capacity >= c.workers);
    }

    #[test]
    fn setters_clamp() {
        let c = Config::default()
            .workers(0)
            .pfor_grain(0)
            .park_micros(0)
            .steal_batch_limit(0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.pfor_grain, 1);
        assert_eq!(c.park_micros, 1);
        assert_eq!(c.steal_batch_limit, 1);
    }

    #[test]
    fn steal_knobs() {
        let c = Config::default()
            .steal_policy(StealPolicy::Adaptive)
            .steal_batch_limit(16);
        assert_eq!(c.steal_policy, StealPolicy::Adaptive);
        assert_eq!(c.steal_batch_limit, 16);

        // Builder: explicit 0 rejected, valid values pass through.
        assert_eq!(
            RuntimeBuilder::new().steal_batch_limit(0).validate().err(),
            Some(ConfigError::ZeroStealBatchLimit)
        );
        let cfg = RuntimeBuilder::new()
            .steal_policy(StealPolicy::Affinity)
            .steal_batch_limit(8)
            .validate()
            .unwrap();
        assert_eq!(cfg.steal_policy, StealPolicy::Affinity);
        assert_eq!(cfg.steal_batch_limit, 8);
    }

    #[test]
    fn timer_knobs() {
        let c = Config::default();
        assert_eq!(c.timer_kind, TimerKind::Wheel);
        assert_eq!(c.timer_shards, 0);
        assert!(c.resume_batch_limit >= 1);

        let c = c
            .timer_kind(TimerKind::Heap)
            .timer_tick(Duration::ZERO)
            .timer_shards(3)
            .resume_batch_limit(0);
        assert_eq!(c.timer_kind, TimerKind::Heap);
        assert_eq!(c.timer_tick, Duration::from_micros(1));
        assert_eq!(c.timer_shards, 3);
        assert_eq!(c.resume_batch_limit, 1);
    }

    #[test]
    fn registry_knobs() {
        let c = Config::default();
        assert_eq!(c.registry_shards, 0);
        assert!(c.live_index);
        let c = c.registry_shards(4).live_index(false);
        assert_eq!(c.registry_shards, 4);
        assert!(!c.live_index);

        // Builder: explicit 0 shards rejected, omitted means auto.
        assert_eq!(
            RuntimeBuilder::new().registry_shards(0).validate().err(),
            Some(ConfigError::ZeroRegistryShards)
        );
        let cfg = RuntimeBuilder::new().registry_shards(2).validate().unwrap();
        assert_eq!(cfg.registry_shards, 2);
        let cfg = RuntimeBuilder::new().validate().unwrap();
        assert_eq!(cfg.registry_shards, 0, "auto default");
    }

    #[test]
    fn fluent_chain() {
        let c = Config::default()
            .workers(3)
            .mode(LatencyMode::Block)
            .steal_policy(StealPolicy::WorkerThenDeque)
            .seed(9);
        assert_eq!(c.workers, 3);
        assert_eq!(c.mode, LatencyMode::Block);
        assert_eq!(c.steal_policy, StealPolicy::WorkerThenDeque);
        assert_eq!(c.seed, 9);
    }
}
