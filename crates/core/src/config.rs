//! Runtime configuration.

use std::time::Duration;

use lhws_deque::DequeKind;

/// How the runtime treats latency-incurring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyMode {
    /// Latency-hiding work stealing (the paper's algorithm): a task that
    /// incurs latency suspends, its worker switches to other work, and the
    /// task is reinjected through the resumed-vertices machinery.
    #[default]
    Hide,
    /// The baseline the paper compares against: the worker *blocks* (the
    /// thread sleeps) for the full latency. One deque per worker; classic
    /// work stealing.
    Block,
}

/// Victim-selection policy for steals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// The analyzed algorithm: a uniformly random deque from the global
    /// registry (possibly freed or empty — a failed attempt).
    #[default]
    RandomDeque,
    /// The paper's §6 optimization: pick a random *worker*, then a random
    /// deque from the deques that worker currently advertises as
    /// stealable. Requires a little synchronization between workers but
    /// wastes fewer attempts on empty deques.
    WorkerThenDeque,
}

/// Timer implementation used to track latency deadlines. Analogous to
/// [`DequeKind`]: both variants implement the same protocol, so either can
/// back a run; the choice only affects constant factors. Kept selectable
/// for ablation benchmarks (`resume_path`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimerKind {
    /// Sharded hierarchical timer wheel: per-shard fine-grained locks,
    /// amortized O(1) insertion, and expirations delivered in per-worker
    /// batches. The default.
    #[default]
    Wheel,
    /// The original single-threaded binary-heap timer behind one global
    /// mutex: O(log n) insertion, one delivery per expiration. Kept as the
    /// ablation baseline.
    Heap,
}

/// Configuration for [`crate::Runtime`]. Build with the fluent setters.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of worker threads (default: available parallelism).
    pub workers: usize,
    /// Latency handling mode.
    pub mode: LatencyMode,
    /// Steal policy.
    pub steal_policy: StealPolicy,
    /// Deque implementation.
    pub deque_kind: DequeKind,
    /// Capacity of the global deque registry (`gDeques`). By Lemma 7 the
    /// algorithm needs at most `P · (U + 1)` deques; the default of 65 536
    /// is comfortable for any realistic suspension width.
    pub registry_capacity: usize,
    /// How long an idle worker parks between scavenging rounds, in
    /// microseconds. Bounds wake-up staleness for events that race with
    /// parking.
    pub park_micros: u64,
    /// Pfor unfolding grain: resumed batches of at most this size are
    /// scheduled directly; larger batches split in half into stealable
    /// subtasks.
    pub pfor_grain: usize,
    /// Seed for the per-worker victim-selection RNGs.
    pub seed: u64,
    /// Timer implementation.
    pub timer_kind: TimerKind,
    /// Tick granularity of the timer wheel. Deadlines are rounded up to
    /// the next tick boundary, so this bounds both resume latency slop and
    /// the batching window: suspensions expiring within one tick of each
    /// other are delivered together. Ignored by [`TimerKind::Heap`].
    pub timer_tick: Duration,
    /// Number of timer-wheel shards. `0` (the default) means one shard per
    /// worker, which makes a worker's insertions contend only with
    /// expirations of its own timers. Ignored by [`TimerKind::Heap`].
    pub timer_shards: usize,
    /// Maximum resume events delivered to a worker in one batch. Larger
    /// batches amortize wake-up and locking cost; smaller ones reduce the
    /// burst a single worker must absorb before its next steal check.
    pub resume_batch_limit: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mode: LatencyMode::default(),
            steal_policy: StealPolicy::default(),
            deque_kind: DequeKind::default(),
            registry_capacity: 1 << 16,
            park_micros: 100,
            pfor_grain: 4,
            seed: 0x1A7E_11C1,
            timer_kind: TimerKind::default(),
            timer_tick: Duration::from_micros(50),
            timer_shards: 0,
            resume_batch_limit: 1024,
        }
    }
}

impl Config {
    /// Sets the number of worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the latency-handling mode.
    pub fn mode(mut self, m: LatencyMode) -> Self {
        self.mode = m;
        self
    }

    /// Sets the steal policy.
    pub fn steal_policy(mut self, p: StealPolicy) -> Self {
        self.steal_policy = p;
        self
    }

    /// Sets the deque implementation.
    pub fn deque_kind(mut self, k: DequeKind) -> Self {
        self.deque_kind = k;
        self
    }

    /// Sets the registry capacity.
    pub fn registry_capacity(mut self, c: usize) -> Self {
        self.registry_capacity = c.max(self.workers);
        self
    }

    /// Sets the idle park interval in microseconds.
    pub fn park_micros(mut self, us: u64) -> Self {
        self.park_micros = us.max(1);
        self
    }

    /// Sets the pfor unfolding grain.
    pub fn pfor_grain(mut self, g: usize) -> Self {
        self.pfor_grain = g.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the timer implementation.
    pub fn timer_kind(mut self, k: TimerKind) -> Self {
        self.timer_kind = k;
        self
    }

    /// Sets the timer-wheel tick granularity (clamped to ≥ 1µs).
    pub fn timer_tick(mut self, d: Duration) -> Self {
        self.timer_tick = d.max(Duration::from_micros(1));
        self
    }

    /// Sets the timer-wheel shard count (`0` = one shard per worker).
    pub fn timer_shards(mut self, n: usize) -> Self {
        self.timer_shards = n;
        self
    }

    /// Sets the per-delivery resume batch limit.
    pub fn resume_batch_limit(mut self, n: usize) -> Self {
        self.resume_batch_limit = n.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(c.workers >= 1);
        assert_eq!(c.mode, LatencyMode::Hide);
        assert_eq!(c.steal_policy, StealPolicy::RandomDeque);
        assert!(c.registry_capacity >= c.workers);
    }

    #[test]
    fn setters_clamp() {
        let c = Config::default().workers(0).pfor_grain(0).park_micros(0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.pfor_grain, 1);
        assert_eq!(c.park_micros, 1);
    }

    #[test]
    fn timer_knobs() {
        let c = Config::default();
        assert_eq!(c.timer_kind, TimerKind::Wheel);
        assert_eq!(c.timer_shards, 0);
        assert!(c.resume_batch_limit >= 1);

        let c = c
            .timer_kind(TimerKind::Heap)
            .timer_tick(Duration::ZERO)
            .timer_shards(3)
            .resume_batch_limit(0);
        assert_eq!(c.timer_kind, TimerKind::Heap);
        assert_eq!(c.timer_tick, Duration::from_micros(1));
        assert_eq!(c.timer_shards, 3);
        assert_eq!(c.resume_batch_limit, 1);
    }

    #[test]
    fn fluent_chain() {
        let c = Config::default()
            .workers(3)
            .mode(LatencyMode::Block)
            .steal_policy(StealPolicy::WorkerThenDeque)
            .seed(9);
        assert_eq!(c.workers, 3);
        assert_eq!(c.mode, LatencyMode::Block);
        assert_eq!(c.steal_policy, StealPolicy::WorkerThenDeque);
        assert_eq!(c.seed, 9);
    }
}
