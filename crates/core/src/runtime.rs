//! The runtime: worker threads, the global deque registry, the injector,
//! and the timer, assembled into a public [`Runtime`] handle.

use std::collections::VecDeque;
use std::future::Future;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle as ThreadHandle;
use std::time::{Duration, Instant};

use lhws_deque::{DequeId, Registry};
use parking_lot::{Condvar, Mutex};

use crate::config::{Config, ConfigError, RuntimeBuilder};
use crate::driver::{Driver, DriverHooks, DriverReport};
use crate::fault::{FaultInjector, PanicInjected};
use crate::join::{CatchUnwind, JoinCell, JoinHandle, PanicPayload};
use crate::metrics::{CachePadded, Counters, MetricsSnapshot};
use crate::obs::Observer;
use crate::sleep::Sleepers;
use crate::task::{Task, TaskRef};
use crate::timer::{ResumeEvent, ResumeSink, Timer, TimerEntry};
use crate::trace::{EventKind, Trace, Tracer, NONE_ID};
use crate::worker::{self, Worker};

/// A worker's resume inbox: expirations and external completions queue
/// here until the worker drains them. Batches move through it by vector
/// swap — a delivery hands its whole `Vec` over when the inbox is empty,
/// and a drain swaps the accumulated vector out — so the mutex is held
/// for O(1) on both sides of the common case. Cache-padded: inboxes sit
/// in an array and are touched by different threads.
#[derive(Default)]
struct Inbox {
    queue: Mutex<Vec<ResumeEvent>>,
}

/// Shared runtime internals.
pub(crate) struct RtInner {
    /// Immutable configuration.
    pub config: Config,
    /// The global deque registry (`gDeques` + `gTotalDeques`).
    pub registry: Registry<TaskRef>,
    /// External submissions and off-runtime wake-ups.
    injector: Mutex<VecDeque<TaskRef>>,
    /// Per-worker resume inboxes.
    inboxes: Box<[CachePadded<Inbox>]>,
    /// Which workers are parked; wakes at most one per event.
    pub sleepers: Sleepers,
    /// Shutdown flag checked by every worker iteration.
    shutdown: AtomicBool,
    /// The timer (set right after construction).
    timer: OnceLock<Timer>,
    /// Metrics counters (shared block + per-worker padded blocks).
    pub counters: Counters,
    /// Advertised stealable deques per worker (WorkerThenDeque policy).
    pub shared_steal: Vec<Mutex<Vec<DequeId>>>,
    /// Event tracer; `None` (the default) is the whole cost of disabled
    /// tracing. See [`crate::trace`].
    pub tracer: Option<Arc<Tracer>>,
    /// Fault injector; `None` (the default) is the whole cost of disabled
    /// fault injection — the same pattern as `tracer`. See [`crate::fault`].
    pub faults: Option<Arc<FaultInjector>>,
    /// Index of the first worker whose scheduler loop panicked, if any.
    /// Once set the runtime is poisoned: shutdown has been initiated and
    /// blocked callers resolve with an error instead of hanging.
    poisoned: OnceLock<usize>,
    /// Attached event-source drivers (I/O reactors), shut down *before*
    /// the workers so their cancellations still resume and get counted.
    /// Drained on shutdown, making driver shutdown idempotent.
    drivers: Mutex<Vec<Arc<dyn Driver>>>,
    /// Accumulated reports from drained drivers.
    driver_report: Mutex<DriverReport>,
}

impl RtInner {
    pub fn timer(&self) -> &Timer {
        self.timer.get().expect("timer started in Runtime::new")
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Marks the runtime poisoned after worker `worker`'s scheduler loop
    /// panicked: records the worker, initiates shutdown so the remaining
    /// workers exit, cancels pending timer/deadline registrations, and
    /// unparks everyone. Suspended tasks will never resume — callers
    /// blocked in [`Runtime::block_on`] observe the poison flag via their
    /// timed wait instead of hanging on a lost completion.
    pub fn poison(&self, worker: usize) {
        let _ = self.poisoned.set(worker);
        self.shutdown.store(true, Ordering::Release);
        if let Some(timer) = self.timer.get() {
            timer.shutdown();
        }
        self.sleepers.unpark_all();
    }

    /// The worker whose panic poisoned the runtime, if any.
    pub fn poisoned_worker(&self) -> Option<usize> {
        self.poisoned.get().copied()
    }

    /// Pushes an external task/wake-up and wakes **at most one** parked
    /// worker — an awake worker will find the task by polling the
    /// injector, and waking more than one per task is a thundering herd.
    pub fn inject(&self, task: TaskRef) {
        self.injector.lock().push_back(task);
        if let Some(t) = &self.tracer {
            t.record_shared(NONE_ID, EventKind::Inject);
        }
        // Fault: swallow the unpark. Safe because parks are timed
        // (`Config::park_micros`), so a sleeping worker re-polls the
        // injector within one park interval.
        if let Some(f) = &self.faults {
            if f.drop_unpark() {
                return;
            }
        }
        if let Some(woken) = self.sleepers.unpark_one() {
            self.counters.bump(&self.counters.unparks);
            if let Some(t) = &self.tracer {
                t.record_shared(
                    NONE_ID,
                    EventKind::Unpark {
                        worker: woken as u32,
                    },
                );
            }
        }
    }

    pub fn pop_injected(&self) -> Option<TaskRef> {
        self.injector.lock().pop_front()
    }

    /// Counter snapshot with the registry-derived gauges filled in.
    /// `Counters` cannot see the registry, so the live-set size, its high
    /// water, and the compaction count are stitched in here.
    pub(crate) fn registry_metrics(&self) -> MetricsSnapshot {
        let mut m = self.counters.snapshot();
        m.registry_compactions = self.registry.compactions();
        m.live_deques = self.registry.live_len() as u64;
        m.live_deques_high_water = self.registry.live_high_water() as u64;
        m
    }

    /// True if the injector holds work (workers re-check this between
    /// `Sleepers::prepare_park` and parking).
    pub fn injector_nonempty(&self) -> bool {
        !self.injector.lock().is_empty()
    }

    /// Moves the whole accumulated batch of worker `worker`'s inbox into
    /// `into` (which must be empty) by vector swap.
    pub fn drain_inbox(&self, worker: usize, into: &mut Vec<ResumeEvent>) {
        debug_assert!(into.is_empty());
        let mut q = self.inboxes[worker].queue.lock();
        if !q.is_empty() {
            std::mem::swap(&mut *q, into);
        }
    }

    /// True if worker `worker`'s inbox holds events.
    pub fn inbox_nonempty(&self, worker: usize) -> bool {
        !self.inboxes[worker].queue.lock().is_empty()
    }

    /// Routes a single resume event to a worker's inbox (the paper's
    /// `callback(v, q)`). Used by external completions, which arrive one
    /// at a time; timer expirations go through [`ResumeSink`] in batches.
    pub fn deliver_resume(&self, worker: usize, mut event: ResumeEvent) {
        if let Some(f) = &self.faults {
            // Fault: delay the delivery by re-routing it through the timer
            // with a short jittered deadline. The timer hands it back via
            // `deliver_batch`, which does not re-roll this site, so a
            // delayed event is delivered exactly once (or counted as
            // canceled if shutdown wins the race).
            if let Some(delay) = f.resume_delay() {
                self.timer().register(TimerEntry {
                    deadline: Instant::now() + delay,
                    worker,
                    task: event.task,
                    local_deque: event.local_deque,
                    seq: event.seq,
                });
                return;
            }
        }
        if let Some(t) = &self.tracer {
            // Delivery time is the suspension's *enable* time.
            event.enabled_at = t.now();
            t.record_shared(
                worker as u32,
                EventKind::Resume {
                    batch_len: 1,
                    tick: 0,
                },
            );
        }
        self.inboxes[worker].queue.lock().push(event);
        // Fault: swallow the unpark (timed parks bound the damage).
        if let Some(f) = &self.faults {
            if f.drop_unpark() {
                return;
            }
        }
        if self.sleepers.unpark_worker(worker) {
            self.counters.bump(&self.counters.unparks);
            if let Some(t) = &self.tracer {
                t.record_shared(
                    NONE_ID,
                    EventKind::Unpark {
                        worker: worker as u32,
                    },
                );
            }
        }
    }
}

impl ResumeSink for RtInner {
    fn deliver_batch(&self, worker: usize, tick: u64, mut events: Vec<ResumeEvent>) {
        debug_assert!(!events.is_empty());
        // Fault: reverse the batch, exercising the consumer's indifference
        // to intra-batch ordering (each event resumes an independent
        // suspension; nothing may assume deadline order within a tick).
        if events.len() > 1 {
            if let Some(f) = &self.faults {
                if f.resume_reorder() {
                    events.reverse();
                }
            }
        }
        if let Some(t) = &self.tracer {
            let enabled_at = t.now();
            for e in events.iter_mut() {
                e.enabled_at = enabled_at;
            }
            t.record_shared(
                worker as u32,
                EventKind::Resume {
                    batch_len: events.len() as u32,
                    tick,
                },
            );
        }
        {
            let mut q = self.inboxes[worker].queue.lock();
            if q.is_empty() {
                // Common case: hand the delivered vector over wholesale.
                std::mem::swap(&mut *q, &mut events);
            } else {
                q.append(&mut events);
            }
        }
        // Fault: swallow the unpark (timed parks bound the damage).
        if let Some(f) = &self.faults {
            if f.drop_unpark() {
                return;
            }
        }
        // One unpark for the whole batch, and only if the worker is
        // actually parked.
        if self.sleepers.unpark_worker(worker) {
            self.counters.bump(&self.counters.unparks);
            if let Some(t) = &self.tracer {
                t.record_shared(
                    NONE_ID,
                    EventKind::Unpark {
                        worker: worker as u32,
                    },
                );
            }
        }
    }
}

/// A latency-hiding work-stealing runtime.
///
/// Dropping the runtime shuts it down: workers and the timer thread(s)
/// are joined. Tasks still pending at shutdown are dropped.
pub struct Runtime {
    inner: Arc<RtInner>,
    workers: Vec<ThreadHandle<()>>,
    timer_threads: Vec<ThreadHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.inner.config.workers)
            .field("mode", &self.inner.config.mode)
            .field("timer", &self.inner.config.timer_kind)
            .finish_non_exhaustive()
    }
}

/// Errors from runtime construction and supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Failed to spawn a worker or timer thread.
    ThreadSpawn(String),
    /// The configuration was rejected (see [`ConfigError`]).
    InvalidConfig(ConfigError),
    /// A worker's scheduler loop panicked; the runtime is poisoned and the
    /// blocked call was aborted instead of hanging on a resume that will
    /// never arrive.
    WorkerPanicked {
        /// Index of the worker whose loop panicked.
        worker: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ThreadSpawn(e) => write!(f, "failed to spawn thread: {e}"),
            RuntimeError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RuntimeError::WorkerPanicked { worker } => {
                write!(
                    f,
                    "runtime poisoned: worker {worker}'s scheduler loop panicked"
                )
            }
        }
    }
}

impl From<ConfigError> for RuntimeError {
    fn from(e: ConfigError) -> Self {
        RuntimeError::InvalidConfig(e)
    }
}

impl std::error::Error for RuntimeError {}

impl Runtime {
    /// Returns the validated builder — the recommended way to construct a
    /// runtime. See [`RuntimeBuilder`].
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Starts a runtime with the given configuration. The configuration
    /// is validated first ([`Config::validate`]); prefer
    /// [`Runtime::builder`] for typed rejection of individual knobs.
    pub fn new(config: Config) -> Result<Runtime, RuntimeError> {
        config.validate()?;
        let p = config.workers;
        let tracer =
            (config.trace_capacity > 0).then(|| Arc::new(Tracer::new(p, config.trace_capacity)));
        let faults = config
            .fault_plan
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let inner = Arc::new(RtInner {
            config,
            registry: Registry::with_capacity_and_shards(
                config.registry_capacity,
                if config.registry_shards == 0 {
                    p
                } else {
                    config.registry_shards
                },
            ),
            injector: Mutex::new(VecDeque::new()),
            inboxes: (0..p).map(|_| CachePadded::default()).collect(),
            sleepers: Sleepers::new(p),
            shutdown: AtomicBool::new(false),
            timer: OnceLock::new(),
            counters: Counters::with_workers(p),
            shared_steal: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            tracer,
            faults,
            poisoned: OnceLock::new(),
            drivers: Mutex::new(Vec::new()),
            driver_report: Mutex::new(DriverReport::default()),
        });

        let (timer, timer_threads) = Timer::start(&config, inner.clone() as Arc<dyn ResumeSink>);
        inner
            .timer
            .set(timer)
            .unwrap_or_else(|_| unreachable!("timer set once"));

        let mut workers = Vec::with_capacity(p);
        for i in 0..p {
            let w = Worker::new(inner.clone(), i);
            let supervisor = inner.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lhws-worker-{i}"))
                .spawn(move || {
                    // Supervision: a panic escaping the scheduler loop
                    // (not a task panic — those are caught per-poll) means
                    // this worker's suspensions are lost. Poison the
                    // runtime so blocked callers fail fast instead of
                    // hanging.
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.run())).is_err() {
                        supervisor.poison(i);
                    }
                })
                .map_err(|e| RuntimeError::ThreadSpawn(e.to_string()))?;
            workers.push(handle);
        }

        Ok(Runtime {
            inner,
            workers,
            timer_threads,
        })
    }

    /// Spawns a task onto the runtime, returning its join handle.
    ///
    /// From a worker thread of this runtime, the task is pushed onto the
    /// current active deque (a fork edge); from outside it enters through
    /// the global injector.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        spawn_on(&self.inner, fut)
    }

    /// Runs a future to completion on the runtime, blocking the calling
    /// thread (which must not be a worker of this runtime).
    ///
    /// Panics if the runtime is poisoned by a worker-loop panic while the
    /// future is in flight; use [`Runtime::try_block_on`] to handle that
    /// as an error instead.
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        match self.try_block_on(fut) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Runtime::block_on`], but resolves with
    /// [`RuntimeError::WorkerPanicked`] if a worker's scheduler loop
    /// panics while the future is in flight, instead of hanging forever
    /// on a completion that will never be delivered. The error surfaces
    /// within roughly one park interval (`Config::park_micros`) of the
    /// poisoning. Panics *inside the future itself* are still propagated
    /// by resuming the unwind on this thread.
    pub fn try_block_on<F>(&self, fut: F) -> Result<F::Output, RuntimeError>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        if let Some(cur) = worker::current_runtime() {
            assert!(
                !Arc::ptr_eq(&cur, &self.inner),
                "Runtime::block_on called from one of this runtime's own worker threads; \
                 this would deadlock — use spawn instead"
            );
        }
        struct BlockCell<T> {
            slot: Mutex<Option<Result<T, PanicPayload>>>,
            cond: Condvar,
        }
        let cell = Arc::new(BlockCell {
            slot: Mutex::new(None),
            cond: Condvar::new(),
        });
        let c2 = cell.clone();
        let body = async move {
            let result = CatchUnwind::new(fut).await;
            let mut slot = c2.slot.lock();
            *slot = Some(result);
            c2.cond.notify_all();
        };
        self.inner.counters.bump(&self.inner.counters.tasks_spawned);
        let task = Task::new_queued(Arc::downgrade(&self.inner), Box::pin(body));
        self.inner.inject(task);

        // Timed wait: the completion notify is the fast path; the timeout
        // exists solely so a poisoned runtime is noticed. A completed
        // result always wins over poison — the value is real even if a
        // worker died afterwards.
        let park = Duration::from_micros(self.inner.config.park_micros);
        let mut slot = cell.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return match result {
                    Ok(v) => Ok(v),
                    Err(payload) => std::panic::resume_unwind(payload),
                };
            }
            if let Some(worker) = self.inner.poisoned_worker() {
                return Err(RuntimeError::WorkerPanicked { worker });
            }
            cell.cond.wait_for(&mut slot, park);
        }
    }

    /// The blessed observation handle for this runtime: metrics
    /// snapshots, incremental trace readers, continuous invariant
    /// auditing, and the Prometheus text exporter all hang off the
    /// returned [`Observer`]. The handle is weak — clone it into tasks
    /// running *on* this runtime (the self-hosted `/metrics` exporter
    /// pattern) without keeping a dead runtime alive.
    pub fn observe(&self) -> Observer {
        Observer::new(Arc::downgrade(&self.inner))
    }

    /// A point-in-time snapshot of the runtime's metrics counters, with
    /// the registry-derived gauges (live set size, high water,
    /// compactions) filled in. Thin delegate for
    /// [`observe`](Self::observe)`().metrics()`.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.observe()
            .metrics()
            .expect("runtime is alive while borrowed")
    }

    /// Drains the event tracer into a [`Trace`] snapshot, or `None` when
    /// tracing is disabled. The snapshot races with the still-running
    /// schedule: events recorded concurrently land in the next snapshot,
    /// and a suspension may appear without its later lifecycle events. For
    /// complete, quiescent data use [`Runtime::shutdown`].
    #[deprecated(
        since = "0.1.0",
        note = "destructive mid-run drains steal events from live readers; use \
                `observe().trace_reader()` for incremental non-destructive reads, \
                or `shutdown()` for the complete quiescent trace"
    )]
    pub fn trace_snapshot(&self) -> Option<Trace> {
        self.inner.tracer.as_ref().map(|t| t.drain())
    }

    /// Drains the trace and writes it as Chrome-trace/Perfetto JSON. With
    /// tracing disabled an empty-but-valid document is written, so the
    /// output always parses.
    #[deprecated(
        since = "0.1.0",
        note = "destructive mid-run drains steal events from live readers; poll \
                `observe().trace_reader()` and export `TraceBatch::into_trace()`, \
                or export the `shutdown()` report's trace"
    )]
    pub fn trace_export<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        #[allow(deprecated)]
        match self.trace_snapshot() {
            Some(trace) => trace.export_chrome(w),
            None => Trace {
                events: Vec::new(),
                dropped: 0,
                workers: self.workers(),
            }
            .export_chrome(w),
        }
    }

    /// A [`DriverHooks`] handle for an external event-source driver (an
    /// I/O reactor): access to the `io_*` metrics counters, the
    /// `IoRegister`/`IoReady`/`IoDeregister` trace events and the
    /// `DroppedReadiness` fault site. See [`crate::driver`].
    pub fn driver_hooks(&self) -> DriverHooks {
        DriverHooks::new(Arc::downgrade(&self.inner))
    }

    /// Attaches `driver` to this runtime's shutdown sequence:
    /// [`Runtime::shutdown`] (and `Drop`) calls [`Driver::shutdown`]
    /// exactly once, *before* stopping the workers, and folds its
    /// [`DriverReport`] into [`ShutdownReport::canceled_io_waits`].
    pub fn attach_driver(&self, driver: Arc<dyn Driver>) {
        self.inner.drivers.lock().push(driver);
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.config.workers
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &Config {
        &self.inner.config
    }

    /// Shuts the runtime down — joins workers and timer threads — and
    /// *then* snapshots metrics and trace, so the report is quiescent:
    /// no event or counter bump races the snapshot, every delivered
    /// suspension has its full lifecycle recorded.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.join_now();
        let metrics = self.inner.registry_metrics();
        let driver_report = *self.inner.driver_report.lock();
        ShutdownReport {
            leaked_suspensions: metrics.suspensions.saturating_sub(metrics.resumes),
            canceled_ops: self.inner.timer().canceled_ops(),
            canceled_io_waits: driver_report.canceled_waits,
            poisoned_worker: self.inner.poisoned_worker(),
            faults_injected: self.inner.faults.as_ref().map_or(0, |f| f.injected_total()),
            metrics,
            trace: self.inner.tracer.as_ref().map(|t| t.drain()),
        }
    }

    /// Stops and joins all threads. Idempotent — `shutdown` runs it
    /// before snapshotting and `Drop` runs it again on the drained lists.
    ///
    /// Ordering matters: attached drivers are shut down **first**, while
    /// the workers are still running. A driver's shutdown drain drops the
    /// completers of every in-flight wait, each of which settles
    /// `Err(Canceled)` and delivers a resume event — events only live
    /// workers can drain into the `resumes` counter. Only then is the
    /// worker shutdown flag raised. Between the two, a bounded quiesce
    /// wait gives the workers a chance to drain those cancellations so
    /// they are counted rather than reported as leaked.
    fn join_now(&mut self) {
        let drivers: Vec<Arc<dyn Driver>> = std::mem::take(&mut *self.inner.drivers.lock());
        if !drivers.is_empty() {
            let mut agg = DriverReport::default();
            for d in drivers {
                let r = d.shutdown();
                agg.canceled_waits += r.canceled_waits;
                agg.drained_registrations += r.drained_registrations;
            }
            {
                let mut stored = self.inner.driver_report.lock();
                stored.canceled_waits += agg.canceled_waits;
                stored.drained_registrations += agg.drained_registrations;
            }
            if agg.canceled_waits > 0 && self.inner.poisoned_worker().is_none() {
                // Bounded: balance may be unreachable if non-I/O
                // suspensions (timers, channels) are also in flight.
                let deadline = Instant::now() + Duration::from_millis(250);
                loop {
                    let m = self.inner.counters.snapshot();
                    if m.resumes >= m.suspensions || Instant::now() >= deadline {
                        break;
                    }
                    self.inner.sleepers.unpark_all();
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.timer().shutdown();
        self.inner.sleepers.unpark_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for t in self.timer_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// What [`Runtime::shutdown`] returns: the final, quiescent state of a
/// finished runtime.
#[derive(Debug)]
#[non_exhaustive]
pub struct ShutdownReport {
    /// Final metrics counters.
    pub metrics: MetricsSnapshot,
    /// Complete event trace, when tracing was enabled.
    pub trace: Option<Trace>,
    /// Suspensions registered but never resumed — tasks that were still
    /// parked (on timers, channels, or external ops) when shutdown cut
    /// them off. Zero for a quiescent runtime.
    pub leaked_suspensions: u64,
    /// Timer registrations (latency resumes and deadline callbacks)
    /// canceled by shutdown rather than delivered.
    pub canceled_ops: u64,
    /// In-flight I/O waits canceled by attached drivers' shutdown drains
    /// (each settled `Err(Canceled)` before the workers stopped). Zero
    /// for a quiescent runtime — and always zero without a driver.
    pub canceled_io_waits: u64,
    /// The worker whose scheduler-loop panic poisoned the runtime, if any.
    pub poisoned_worker: Option<usize>,
    /// Total faults injected by the fault plan (zero when none was set).
    pub faults_injected: u64,
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.join_now();
    }
}

/// Spawns `fut` as a task on `rt` (worker-local push when possible).
pub(crate) fn spawn_on<F>(rt: &Arc<RtInner>, fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let cell = JoinCell::new();
    let c2 = cell.clone();
    // `PanicInjected` sits *inside* `CatchUnwind`, so an injected task
    // panic takes the exact same unwind path as a user panic: caught
    // here, surfaced at the join point.
    let faults = rt.faults.clone();
    let body = async move {
        let result = CatchUnwind::new(PanicInjected::new(fut, faults)).await;
        c2.complete(result);
    };
    let task = Task::new_queued(Arc::downgrade(rt), Box::pin(body));
    // The local path bumps the worker's own counter block inside the TLS
    // access; only the injector path touches the shared block.
    if !worker::enqueue_local_if_same_runtime(rt, &task, true) {
        rt.counters.bump(&rt.counters.tasks_spawned);
        rt.inject(task);
    }
    JoinHandle::new(cell)
}
