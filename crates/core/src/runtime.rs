//! The runtime: worker threads, the global deque registry, the injector,
//! and the timer, assembled into a public [`Runtime`] handle.

use std::future::Future;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{JoinHandle as ThreadHandle, Thread};

use crossbeam::channel::{unbounded, Sender};
use crossbeam::queue::SegQueue;
use lhws_deque::{DequeId, Registry};
use parking_lot::{Condvar, Mutex};

use crate::config::Config;
use crate::join::{CatchUnwind, JoinCell, JoinHandle, PanicPayload};
use crate::metrics::{Counters, Metrics};
use crate::task::{Task, TaskRef};
use crate::timer::{ResumeEvent, ResumeSink, Timer};
use crate::worker::{self, Worker};

/// Shared runtime internals.
pub(crate) struct RtInner {
    /// Immutable configuration.
    pub config: Config,
    /// The global deque registry (`gDeques` + `gTotalDeques`).
    pub registry: Registry<TaskRef>,
    /// External submissions and off-runtime wake-ups.
    injector: SegQueue<TaskRef>,
    /// Per-worker resume inboxes (sender side; receivers live in workers).
    inboxes: Vec<Sender<ResumeEvent>>,
    /// Worker `Thread` handles for unparking, registered at startup.
    threads: Mutex<Vec<Option<Thread>>>,
    /// Shutdown flag checked by every worker iteration.
    shutdown: AtomicBool,
    /// The timer thread handle (set right after construction).
    timer: OnceLock<Arc<Timer>>,
    /// Metrics counters.
    pub counters: Counters,
    /// Advertised stealable deques per worker (WorkerThenDeque policy).
    pub shared_steal: Vec<Mutex<Vec<DequeId>>>,
}

impl RtInner {
    pub fn timer(&self) -> &Arc<Timer> {
        self.timer.get().expect("timer started in Runtime::new")
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Pushes an external task/wake-up and wakes a worker.
    pub fn inject(&self, task: TaskRef) {
        self.injector.push(task);
        self.unpark_all();
    }

    pub fn pop_injected(&self) -> Option<TaskRef> {
        self.injector.pop()
    }

    pub fn register_thread(&self, index: usize) {
        self.threads.lock()[index] = Some(std::thread::current());
    }

    pub fn unpark_worker(&self, index: usize) {
        if let Some(t) = &self.threads.lock()[index] {
            t.unpark();
        }
    }

    pub fn unpark_all(&self) {
        for t in self.threads.lock().iter().flatten() {
            t.unpark();
        }
    }
}

impl RtInner {
    /// Routes a resume event to a worker's inbox (the paper's
    /// `callback(v, q)` delivery). Used by the timer and by external
    /// completions.
    pub fn deliver_resume(&self, worker: usize, event: ResumeEvent) {
        // A send can only fail at shutdown, when the receiver is gone; the
        // task is then dropped with the runtime.
        let _ = self.inboxes[worker].send(event);
        self.unpark_worker(worker);
    }
}

impl ResumeSink for RtInner {
    fn deliver(&self, worker: usize, event: ResumeEvent) {
        self.deliver_resume(worker, event);
    }
}

/// A latency-hiding work-stealing runtime.
///
/// Dropping the runtime shuts it down: workers and the timer thread are
/// joined. Tasks still pending at shutdown are dropped.
pub struct Runtime {
    inner: Arc<RtInner>,
    workers: Vec<ThreadHandle<()>>,
    timer_thread: Option<ThreadHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.inner.config.workers)
            .field("mode", &self.inner.config.mode)
            .finish_non_exhaustive()
    }
}

/// Errors from runtime construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Failed to spawn a worker or timer thread.
    ThreadSpawn(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ThreadSpawn(e) => write!(f, "failed to spawn thread: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl Runtime {
    /// Starts a runtime with the given configuration.
    pub fn new(config: Config) -> Result<Runtime, RuntimeError> {
        let p = config.workers;
        let mut inbox_senders = Vec::with_capacity(p);
        let mut inbox_receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            inbox_senders.push(tx);
            inbox_receivers.push(rx);
        }
        let inner = Arc::new(RtInner {
            config,
            registry: Registry::with_capacity(config.registry_capacity),
            injector: SegQueue::new(),
            inboxes: inbox_senders,
            threads: Mutex::new(vec![None; p]),
            shutdown: AtomicBool::new(false),
            timer: OnceLock::new(),
            counters: Counters::default(),
            shared_steal: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
        });

        let (timer, timer_thread) = Timer::start(inner.clone() as Arc<dyn ResumeSink>);
        inner
            .timer
            .set(timer)
            .unwrap_or_else(|_| unreachable!("timer set once"));

        let mut workers = Vec::with_capacity(p);
        for (i, rx) in inbox_receivers.into_iter().enumerate() {
            let w = Worker::new(inner.clone(), i, rx);
            let handle = std::thread::Builder::new()
                .name(format!("lhws-worker-{i}"))
                .spawn(move || w.run())
                .map_err(|e| RuntimeError::ThreadSpawn(e.to_string()))?;
            workers.push(handle);
        }

        Ok(Runtime {
            inner,
            workers,
            timer_thread: Some(timer_thread),
        })
    }

    /// Spawns a task onto the runtime, returning its join handle.
    ///
    /// From a worker thread of this runtime, the task is pushed onto the
    /// current active deque (a fork edge); from outside it enters through
    /// the global injector.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        spawn_on(&self.inner, fut)
    }

    /// Runs a future to completion on the runtime, blocking the calling
    /// thread (which must not be a worker of this runtime).
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        if let Some(cur) = worker::current_runtime() {
            assert!(
                !Arc::ptr_eq(&cur, &self.inner),
                "Runtime::block_on called from one of this runtime's own                  worker threads; this would deadlock — use spawn instead"
            );
        }
        struct BlockCell<T> {
            slot: Mutex<Option<Result<T, PanicPayload>>>,
            cond: Condvar,
        }
        let cell = Arc::new(BlockCell {
            slot: Mutex::new(None),
            cond: Condvar::new(),
        });
        let c2 = cell.clone();
        let body = async move {
            let result = CatchUnwind::new(fut).await;
            let mut slot = c2.slot.lock();
            *slot = Some(result);
            c2.cond.notify_all();
        };
        self.inner.counters.bump(&self.inner.counters.tasks_spawned);
        let task = Task::new_queued(Arc::downgrade(&self.inner), Box::pin(body));
        self.inner.inject(task);

        let mut slot = cell.slot.lock();
        while slot.is_none() {
            cell.cond.wait(&mut slot);
        }
        match slot.take().expect("just checked") {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// A snapshot of the runtime's metrics counters.
    pub fn metrics(&self) -> Metrics {
        self.inner.counters.snapshot()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.config.workers
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &Config {
        &self.inner.config
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.timer().shutdown();
        self.inner.unpark_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawns `fut` as a task on `rt` (worker-local push when possible).
pub(crate) fn spawn_on<F>(rt: &Arc<RtInner>, fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let cell = JoinCell::new();
    let c2 = cell.clone();
    let body = async move {
        let result = CatchUnwind::new(fut).await;
        c2.complete(result);
    };
    rt.counters.bump(&rt.counters.tasks_spawned);
    let task = Task::new_queued(Arc::downgrade(rt), Box::pin(body));
    if !worker::enqueue_local_if_same_runtime(rt, &task) {
        rt.inject(task);
    }
    JoinHandle::new(cell)
}
