//! The runtime: worker threads, the global deque registry, the injector,
//! and the timer, assembled into a public [`Runtime`] handle.

use std::collections::VecDeque;
use std::future::Future;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle as ThreadHandle;

use lhws_deque::{DequeId, Registry};
use parking_lot::{Condvar, Mutex};

use crate::config::{Config, ConfigError, RuntimeBuilder};
use crate::join::{CatchUnwind, JoinCell, JoinHandle, PanicPayload};
use crate::metrics::{CachePadded, Counters, MetricsSnapshot};
use crate::sleep::Sleepers;
use crate::task::{Task, TaskRef};
use crate::timer::{ResumeEvent, ResumeSink, Timer};
use crate::trace::{EventKind, Trace, Tracer, NONE_ID};
use crate::worker::{self, Worker};

/// A worker's resume inbox: expirations and external completions queue
/// here until the worker drains them. Batches move through it by vector
/// swap — a delivery hands its whole `Vec` over when the inbox is empty,
/// and a drain swaps the accumulated vector out — so the mutex is held
/// for O(1) on both sides of the common case. Cache-padded: inboxes sit
/// in an array and are touched by different threads.
#[derive(Default)]
struct Inbox {
    queue: Mutex<Vec<ResumeEvent>>,
}

/// Shared runtime internals.
pub(crate) struct RtInner {
    /// Immutable configuration.
    pub config: Config,
    /// The global deque registry (`gDeques` + `gTotalDeques`).
    pub registry: Registry<TaskRef>,
    /// External submissions and off-runtime wake-ups.
    injector: Mutex<VecDeque<TaskRef>>,
    /// Per-worker resume inboxes.
    inboxes: Box<[CachePadded<Inbox>]>,
    /// Which workers are parked; wakes at most one per event.
    pub sleepers: Sleepers,
    /// Shutdown flag checked by every worker iteration.
    shutdown: AtomicBool,
    /// The timer (set right after construction).
    timer: OnceLock<Timer>,
    /// Metrics counters (shared block + per-worker padded blocks).
    pub counters: Counters,
    /// Advertised stealable deques per worker (WorkerThenDeque policy).
    pub shared_steal: Vec<Mutex<Vec<DequeId>>>,
    /// Event tracer; `None` (the default) is the whole cost of disabled
    /// tracing. See [`crate::trace`].
    pub tracer: Option<Arc<Tracer>>,
}

impl RtInner {
    pub fn timer(&self) -> &Timer {
        self.timer.get().expect("timer started in Runtime::new")
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Pushes an external task/wake-up and wakes **at most one** parked
    /// worker — an awake worker will find the task by polling the
    /// injector, and waking more than one per task is a thundering herd.
    pub fn inject(&self, task: TaskRef) {
        self.injector.lock().push_back(task);
        if let Some(t) = &self.tracer {
            t.record_shared(NONE_ID, EventKind::Inject);
        }
        if let Some(woken) = self.sleepers.unpark_one() {
            self.counters.bump(&self.counters.unparks);
            if let Some(t) = &self.tracer {
                t.record_shared(
                    NONE_ID,
                    EventKind::Unpark {
                        worker: woken as u32,
                    },
                );
            }
        }
    }

    pub fn pop_injected(&self) -> Option<TaskRef> {
        self.injector.lock().pop_front()
    }

    /// True if the injector holds work (workers re-check this between
    /// `Sleepers::prepare_park` and parking).
    pub fn injector_nonempty(&self) -> bool {
        !self.injector.lock().is_empty()
    }

    /// Moves the whole accumulated batch of worker `worker`'s inbox into
    /// `into` (which must be empty) by vector swap.
    pub fn drain_inbox(&self, worker: usize, into: &mut Vec<ResumeEvent>) {
        debug_assert!(into.is_empty());
        let mut q = self.inboxes[worker].queue.lock();
        if !q.is_empty() {
            std::mem::swap(&mut *q, into);
        }
    }

    /// True if worker `worker`'s inbox holds events.
    pub fn inbox_nonempty(&self, worker: usize) -> bool {
        !self.inboxes[worker].queue.lock().is_empty()
    }

    /// Routes a single resume event to a worker's inbox (the paper's
    /// `callback(v, q)`). Used by external completions, which arrive one
    /// at a time; timer expirations go through [`ResumeSink`] in batches.
    pub fn deliver_resume(&self, worker: usize, mut event: ResumeEvent) {
        if let Some(t) = &self.tracer {
            // Delivery time is the suspension's *enable* time.
            event.enabled_at = t.now();
            t.record_shared(
                worker as u32,
                EventKind::Resume {
                    batch_len: 1,
                    tick: 0,
                },
            );
        }
        self.inboxes[worker].queue.lock().push(event);
        if self.sleepers.unpark_worker(worker) {
            self.counters.bump(&self.counters.unparks);
            if let Some(t) = &self.tracer {
                t.record_shared(
                    NONE_ID,
                    EventKind::Unpark {
                        worker: worker as u32,
                    },
                );
            }
        }
    }
}

impl ResumeSink for RtInner {
    fn deliver_batch(&self, worker: usize, tick: u64, mut events: Vec<ResumeEvent>) {
        debug_assert!(!events.is_empty());
        if let Some(t) = &self.tracer {
            let enabled_at = t.now();
            for e in events.iter_mut() {
                e.enabled_at = enabled_at;
            }
            t.record_shared(
                worker as u32,
                EventKind::Resume {
                    batch_len: events.len() as u32,
                    tick,
                },
            );
        }
        {
            let mut q = self.inboxes[worker].queue.lock();
            if q.is_empty() {
                // Common case: hand the delivered vector over wholesale.
                std::mem::swap(&mut *q, &mut events);
            } else {
                q.append(&mut events);
            }
        }
        // One unpark for the whole batch, and only if the worker is
        // actually parked.
        if self.sleepers.unpark_worker(worker) {
            self.counters.bump(&self.counters.unparks);
            if let Some(t) = &self.tracer {
                t.record_shared(
                    NONE_ID,
                    EventKind::Unpark {
                        worker: worker as u32,
                    },
                );
            }
        }
    }
}

/// A latency-hiding work-stealing runtime.
///
/// Dropping the runtime shuts it down: workers and the timer thread(s)
/// are joined. Tasks still pending at shutdown are dropped.
pub struct Runtime {
    inner: Arc<RtInner>,
    workers: Vec<ThreadHandle<()>>,
    timer_threads: Vec<ThreadHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.inner.config.workers)
            .field("mode", &self.inner.config.mode)
            .field("timer", &self.inner.config.timer_kind)
            .finish_non_exhaustive()
    }
}

/// Errors from runtime construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Failed to spawn a worker or timer thread.
    ThreadSpawn(String),
    /// The configuration was rejected (see [`ConfigError`]).
    InvalidConfig(ConfigError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ThreadSpawn(e) => write!(f, "failed to spawn thread: {e}"),
            RuntimeError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl From<ConfigError> for RuntimeError {
    fn from(e: ConfigError) -> Self {
        RuntimeError::InvalidConfig(e)
    }
}

impl std::error::Error for RuntimeError {}

impl Runtime {
    /// Returns the validated builder — the recommended way to construct a
    /// runtime. See [`RuntimeBuilder`].
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Starts a runtime with the given configuration. The configuration
    /// is validated first ([`Config::validate`]); prefer
    /// [`Runtime::builder`] for typed rejection of individual knobs.
    pub fn new(config: Config) -> Result<Runtime, RuntimeError> {
        config.validate()?;
        let p = config.workers;
        let tracer =
            (config.trace_capacity > 0).then(|| Arc::new(Tracer::new(p, config.trace_capacity)));
        let inner = Arc::new(RtInner {
            config,
            registry: Registry::with_capacity(config.registry_capacity),
            injector: Mutex::new(VecDeque::new()),
            inboxes: (0..p).map(|_| CachePadded::default()).collect(),
            sleepers: Sleepers::new(p),
            shutdown: AtomicBool::new(false),
            timer: OnceLock::new(),
            counters: Counters::with_workers(p),
            shared_steal: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            tracer,
        });

        let (timer, timer_threads) = Timer::start(&config, inner.clone() as Arc<dyn ResumeSink>);
        inner
            .timer
            .set(timer)
            .unwrap_or_else(|_| unreachable!("timer set once"));

        let mut workers = Vec::with_capacity(p);
        for i in 0..p {
            let w = Worker::new(inner.clone(), i);
            let handle = std::thread::Builder::new()
                .name(format!("lhws-worker-{i}"))
                .spawn(move || w.run())
                .map_err(|e| RuntimeError::ThreadSpawn(e.to_string()))?;
            workers.push(handle);
        }

        Ok(Runtime {
            inner,
            workers,
            timer_threads,
        })
    }

    /// Spawns a task onto the runtime, returning its join handle.
    ///
    /// From a worker thread of this runtime, the task is pushed onto the
    /// current active deque (a fork edge); from outside it enters through
    /// the global injector.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        spawn_on(&self.inner, fut)
    }

    /// Runs a future to completion on the runtime, blocking the calling
    /// thread (which must not be a worker of this runtime).
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        if let Some(cur) = worker::current_runtime() {
            assert!(
                !Arc::ptr_eq(&cur, &self.inner),
                "Runtime::block_on called from one of this runtime's own worker threads; \
                 this would deadlock — use spawn instead"
            );
        }
        struct BlockCell<T> {
            slot: Mutex<Option<Result<T, PanicPayload>>>,
            cond: Condvar,
        }
        let cell = Arc::new(BlockCell {
            slot: Mutex::new(None),
            cond: Condvar::new(),
        });
        let c2 = cell.clone();
        let body = async move {
            let result = CatchUnwind::new(fut).await;
            let mut slot = c2.slot.lock();
            *slot = Some(result);
            c2.cond.notify_all();
        };
        self.inner.counters.bump(&self.inner.counters.tasks_spawned);
        let task = Task::new_queued(Arc::downgrade(&self.inner), Box::pin(body));
        self.inner.inject(task);

        let mut slot = cell.slot.lock();
        while slot.is_none() {
            cell.cond.wait(&mut slot);
        }
        match slot.take().expect("just checked") {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// A point-in-time snapshot of the runtime's metrics counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.counters.snapshot()
    }

    /// Drains the event tracer into a [`Trace`] snapshot, or `None` when
    /// tracing is disabled. The snapshot races with the still-running
    /// schedule: events recorded concurrently land in the next snapshot,
    /// and a suspension may appear without its later lifecycle events. For
    /// complete, quiescent data use [`Runtime::shutdown`].
    pub fn trace_snapshot(&self) -> Option<Trace> {
        self.inner.tracer.as_ref().map(|t| t.drain())
    }

    /// Drains the trace and writes it as Chrome-trace/Perfetto JSON. With
    /// tracing disabled an empty-but-valid document is written, so the
    /// output always parses.
    pub fn trace_export<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        match self.trace_snapshot() {
            Some(trace) => trace.export_chrome(w),
            None => Trace {
                events: Vec::new(),
                dropped: 0,
                workers: self.workers(),
            }
            .export_chrome(w),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.config.workers
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &Config {
        &self.inner.config
    }

    /// Shuts the runtime down — joins workers and timer threads — and
    /// *then* snapshots metrics and trace, so the report is quiescent:
    /// no event or counter bump races the snapshot, every delivered
    /// suspension has its full lifecycle recorded.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.join_now();
        ShutdownReport {
            metrics: self.inner.counters.snapshot(),
            trace: self.inner.tracer.as_ref().map(|t| t.drain()),
        }
    }

    /// Stops and joins all threads. Idempotent — `shutdown` runs it
    /// before snapshotting and `Drop` runs it again on the drained lists.
    fn join_now(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.timer().shutdown();
        self.inner.sleepers.unpark_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for t in self.timer_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// What [`Runtime::shutdown`] returns: the final, quiescent state of a
/// finished runtime.
#[derive(Debug)]
#[non_exhaustive]
pub struct ShutdownReport {
    /// Final metrics counters.
    pub metrics: MetricsSnapshot,
    /// Complete event trace, when tracing was enabled.
    pub trace: Option<Trace>,
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.join_now();
    }
}

/// Spawns `fut` as a task on `rt` (worker-local push when possible).
pub(crate) fn spawn_on<F>(rt: &Arc<RtInner>, fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let cell = JoinCell::new();
    let c2 = cell.clone();
    let body = async move {
        let result = CatchUnwind::new(fut).await;
        c2.complete(result);
    };
    let task = Task::new_queued(Arc::downgrade(rt), Box::pin(body));
    // The local path bumps the worker's own counter block inside the TLS
    // access; only the injector path touches the shared block.
    if !worker::enqueue_local_if_same_runtime(rt, &task, true) {
        rt.counters.bump(&rt.counters.tasks_spawned);
        rt.inject(task);
    }
    JoinHandle::new(cell)
}
