//! Lock-free sleeper set: targeted worker wake-ups.
//!
//! The original runtime kept worker `Thread` handles in a
//! `Mutex<Vec<Option<Thread>>>` and called `unpark_all` on every injected
//! task — a broadcast that serialized every producer on one lock and woke
//! P workers to claim one task (a thundering herd for P−1 of them). This
//! module replaces both:
//!
//! * An **atomic idle bitmask** (one bit per worker, in `AtomicU64` words)
//!   tracks exactly which workers are parked. Producers scan it without
//!   locks and wake **at most one** worker per injected task
//!   ([`Sleepers::unpark_one`]) or the one owning worker per resume batch
//!   ([`Sleepers::unpark_worker`]).
//! * Thread handles live in a write-once [`OnceLock`] table, populated by
//!   each worker at startup — no lock on any wake path.
//!
//! # Protocol (no lost wake-ups)
//!
//! A worker going idle (1) sets its bit with a `SeqCst` RMW, (2)
//! **re-checks** all work sources, and only then (3) parks. A producer
//! (1) publishes work, then (2) scans the bitmask with `SeqCst` ordering
//! and clears-and-unparks one set bit. Either the producer's scan sees
//! the worker's bit (and unparks it), or the worker's bit-set came after
//! the scan — in which case the worker's step-(2) re-check observes the
//! already-published work and it never parks. Workers additionally park
//! with a timeout (`Config::park_micros`), bounding the cost of any
//! missed wake-up to one park interval.
//!
//! The timed park is also what makes two fault-tolerance properties hold:
//! the fault layer's `DropUnpark` injection (swallowing a legitimate
//! unpark, see [`crate::fault`]) degrades throughput by at most one park
//! interval per drop instead of deadlocking, and a poisoned runtime
//! (worker scheduler-loop panic) is observed by the remaining workers'
//! shutdown check within one interval even if the poisoner's
//! `unpark_all` raced their park commit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::thread::Thread;

const WORD_BITS: usize = 64;

/// The set of currently-parked workers. See the module docs for the
/// wake-up protocol.
pub(crate) struct Sleepers {
    /// Idle bitmask: bit `i` set ⇔ worker `i` is parked (or committing to
    /// park).
    words: Box<[AtomicU64]>,
    /// Worker thread handles, set once by each worker before first park.
    threads: Box<[OnceLock<Thread>]>,
}

impl Sleepers {
    /// Creates a sleeper set for `n` workers, all awake.
    pub fn new(n: usize) -> Self {
        Sleepers {
            words: (0..n.div_ceil(WORD_BITS))
                .map(|_| AtomicU64::new(0))
                .collect(),
            threads: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Records the calling thread as worker `index`'s thread. Must be
    /// called on the worker thread before its first park.
    pub fn register(&self, index: usize) {
        let _ = self.threads[index].set(std::thread::current());
    }

    #[inline]
    fn split(index: usize) -> (usize, u64) {
        (index / WORD_BITS, 1u64 << (index % WORD_BITS))
    }

    /// Step (1) of going idle: marks worker `index` as parked. The caller
    /// must re-check every work source after this and, if anything
    /// appeared, call [`cancel_park`](Self::cancel_park) instead of
    /// parking.
    pub fn prepare_park(&self, index: usize) {
        let (w, m) = Self::split(index);
        self.words[w].fetch_or(m, Ordering::SeqCst);
    }

    /// Withdraws worker `index` from the set (found work, or returned from
    /// `park` with the bit still set after a timeout).
    pub fn cancel_park(&self, index: usize) {
        let (w, m) = Self::split(index);
        self.words[w].fetch_and(!m, Ordering::SeqCst);
    }

    /// Wakes exactly one parked worker, if any. Returns the woken worker's
    /// index. The woken worker's bit is cleared by the caller side (here),
    /// so concurrent `unpark_one` calls wake distinct workers.
    pub fn unpark_one(&self) -> Option<usize> {
        for (w, word) in self.words.iter().enumerate() {
            let mut cur = word.load(Ordering::SeqCst);
            while cur != 0 {
                let bit = cur.trailing_zeros() as usize;
                let m = 1u64 << bit;
                match word.compare_exchange_weak(cur, cur & !m, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => {
                        let index = w * WORD_BITS + bit;
                        if let Some(t) = self.threads[index].get() {
                            t.unpark();
                        }
                        return Some(index);
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
        None
    }

    /// Wakes worker `index` if it is parked. Returns `true` if it was.
    pub fn unpark_worker(&self, index: usize) -> bool {
        let (w, m) = Self::split(index);
        if self.words[w].fetch_and(!m, Ordering::SeqCst) & m != 0 {
            if let Some(t) = self.threads[index].get() {
                t.unpark();
            }
            return true;
        }
        false
    }

    /// Wakes every parked worker (shutdown only). Returns how many were
    /// woken.
    pub fn unpark_all(&self) -> usize {
        let mut woken = 0;
        for (w, word) in self.words.iter().enumerate() {
            let mut set = word.swap(0, Ordering::SeqCst);
            while set != 0 {
                let bit = set.trailing_zeros() as usize;
                set &= set - 1;
                if let Some(t) = self.threads[w * WORD_BITS + bit].get() {
                    t.unpark();
                }
                woken += 1;
            }
        }
        woken
    }

    /// True if any worker is currently in the set.
    #[cfg(test)]
    pub fn any_sleeping(&self) -> bool {
        self.words.iter().any(|w| w.load(Ordering::SeqCst) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn unpark_one_clears_exactly_one_bit() {
        let s = Sleepers::new(80); // spans two words
        s.prepare_park(3);
        s.prepare_park(70);
        assert_eq!(s.unpark_one(), Some(3));
        assert!(s.any_sleeping());
        assert_eq!(s.unpark_one(), Some(70));
        assert!(!s.any_sleeping());
        assert_eq!(s.unpark_one(), None);
    }

    #[test]
    fn unpark_worker_is_targeted() {
        let s = Sleepers::new(8);
        s.prepare_park(2);
        s.prepare_park(5);
        assert!(s.unpark_worker(5));
        assert!(!s.unpark_worker(5)); // already clear
        assert!(s.unpark_worker(2));
        assert!(!s.any_sleeping());
    }

    #[test]
    fn cancel_park_withdraws() {
        let s = Sleepers::new(4);
        s.prepare_park(1);
        s.cancel_park(1);
        assert_eq!(s.unpark_one(), None);
    }

    #[test]
    fn unpark_actually_wakes_parked_thread() {
        let s = Arc::new(Sleepers::new(1));
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            s2.register(0);
            s2.prepare_park(0);
            // No work to re-check in this test; park until unparked (long
            // timeout so a protocol bug fails the test, not the build).
            std::thread::park_timeout(Duration::from_secs(10));
            s2.cancel_park(0);
        });
        // Wait until the worker has registered and set its bit.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !s.any_sleeping() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(s.any_sleeping());
        let woke = std::time::Instant::now();
        assert_eq!(s.unpark_one(), Some(0));
        t.join().unwrap();
        assert!(
            woke.elapsed() < Duration::from_secs(5),
            "unpark did not wake the thread"
        );
    }

    #[test]
    fn concurrent_unpark_one_wakes_distinct_workers() {
        for _ in 0..50 {
            let s = Arc::new(Sleepers::new(2));
            s.prepare_park(0);
            s.prepare_park(1);
            let a = {
                let s = s.clone();
                std::thread::spawn(move || s.unpark_one())
            };
            let b = {
                let s = s.clone();
                std::thread::spawn(move || s.unpark_one())
            };
            let (a, b) = (a.join().unwrap(), b.join().unwrap());
            assert!(a.is_some() && b.is_some());
            assert_ne!(a, b, "both unpark_one calls woke the same worker");
            assert!(!s.any_sleeping());
        }
    }
}
