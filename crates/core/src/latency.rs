//! Latency-incurring operations.
//!
//! [`simulate_latency`] is the runtime's `input()` / `getValue()`: an
//! operation that completes after a wall-clock delay. Its behaviour follows
//! the runtime's [`LatencyMode`](crate::LatencyMode):
//!
//! * **Hide** — the task suspends without blocking the worker; a timer
//!   entry is registered against the current active deque and the task
//!   resumes through the `callback`/`addResumedVertices` machinery. This is
//!   the paper's algorithm.
//! * **Block** — the worker thread sleeps for the remaining latency, as a
//!   conventional work-stealing runtime does on a blocking call. This is
//!   the paper's experimental baseline, which "simulates a latency of δ
//!   milliseconds by sleeping for δ milliseconds".
//!
//! [`RemoteService`] wraps the same mechanism in a request/response shape
//! for the examples: a synthetic stand-in for the remote servers, users and
//! storage devices the paper's workloads talk to.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

use crate::config::LatencyMode;
use crate::worker;

/// Sleeps for `d` without blocking the worker (in `Hide` mode) or by
/// blocking it (in `Block` mode). See the module docs.
///
/// Outside a runtime worker this falls back to a plain blocking sleep.
pub fn simulate_latency(d: Duration) -> LatencyFuture {
    LatencyFuture {
        deadline: Instant::now() + d,
        registered: false,
    }
}

/// Sleeps until `deadline` (same semantics as [`simulate_latency`]).
pub fn latency_until(deadline: Instant) -> LatencyFuture {
    LatencyFuture {
        deadline,
        registered: false,
    }
}

/// Future returned by [`simulate_latency`].
#[derive(Debug)]
pub struct LatencyFuture {
    deadline: Instant,
    /// Whether a timer registration is (or was) outstanding. In Hide mode
    /// the *first* on-worker poll always registers — even when the
    /// deadline has already passed (the timer clamps past deadlines to
    /// the next tick). An expired-deadline `Ready` fast path here would
    /// race OS preemption between deadline computation and first poll and
    /// silently skip the suspension, losing a registration the trace
    /// invariants (and tests) expect to see.
    registered: bool,
}

impl Future for LatencyFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.registered {
            // A poll after our timer registration: either the resume
            // (deadline reached, possibly early by one tick of timer
            // granularity) or a spurious wake.
            if Instant::now() >= this.deadline {
                return Poll::Ready(());
            }
            // Register again so suspendCtr increments and resume events
            // keep pairing one-to-one. Falls through to the unregistered
            // path (the task may have migrated off a worker in tests).
        }
        match worker::current_latency_mode() {
            Some(LatencyMode::Hide) => {
                // Register a fresh timer entry for this suspension; the
                // worker pairs it with a suspendCtr increment after the
                // poll. Past deadlines register too (see `registered`):
                // the timer fires them on its next tick.
                if worker::register_latency(this.deadline) {
                    this.registered = true;
                    Poll::Pending
                } else {
                    // Not actually on a worker (e.g. polled during a test
                    // harness): degrade to blocking.
                    let now = Instant::now();
                    if now < this.deadline {
                        std::thread::sleep(this.deadline - now);
                    }
                    Poll::Ready(())
                }
            }
            Some(LatencyMode::Block) | None => {
                let now = Instant::now();
                if now < this.deadline {
                    std::thread::sleep(this.deadline - now);
                }
                Poll::Ready(())
            }
        }
    }
}

/// Latency distribution of a [`RemoteService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyProfile {
    /// Every request takes exactly this long.
    Fixed(Duration),
    /// Requests take a uniformly random duration in `[min, max]`, derived
    /// deterministically from the request key.
    Uniform(Duration, Duration),
}

impl LatencyProfile {
    fn sample(&self, key: u64) -> Duration {
        match *self {
            LatencyProfile::Fixed(d) => d,
            LatencyProfile::Uniform(lo, hi) => {
                if hi <= lo {
                    return lo;
                }
                // SplitMix64 on the key: deterministic per request,
                // well-distributed across requests.
                let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let span = (hi - lo).as_nanos() as u64;
                lo + Duration::from_nanos(z % (span + 1))
            }
        }
    }
}

/// A synthetic remote endpoint: requests incur latency per the profile,
/// then produce a value. Substitutes for the paper's remote servers / user
/// input exactly the way the paper's own benchmark did (sleep, then
/// return).
#[derive(Debug, Clone)]
pub struct RemoteService {
    name: String,
    profile: LatencyProfile,
}

impl RemoteService {
    /// Creates a service with the given latency profile.
    pub fn new(name: impl Into<String>, profile: LatencyProfile) -> Self {
        RemoteService {
            name: name.into(),
            profile,
        }
    }

    /// The service's name (for logs and examples).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issues request `key`: waits out the sampled latency (suspending in
    /// Hide mode), then computes the response with `f`.
    pub async fn request<T>(&self, key: u64, f: impl FnOnce(u64) -> T) -> T {
        let d = self.profile.sample(key);
        simulate_latency(d).await;
        f(key)
    }

    /// The latency this service would charge for request `key`.
    pub fn latency_of(&self, key: u64) -> Duration {
        self.profile.sample(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_profile_is_constant() {
        let p = LatencyProfile::Fixed(Duration::from_millis(7));
        assert_eq!(p.sample(0), Duration::from_millis(7));
        assert_eq!(p.sample(99), Duration::from_millis(7));
    }

    #[test]
    fn uniform_profile_in_range_and_deterministic() {
        let lo = Duration::from_millis(2);
        let hi = Duration::from_millis(10);
        let p = LatencyProfile::Uniform(lo, hi);
        for key in 0..200 {
            let d = p.sample(key);
            assert!(d >= lo && d <= hi, "key {key}: {d:?}");
            assert_eq!(d, p.sample(key), "deterministic per key");
        }
        // Different keys spread across the range.
        let distinct: std::collections::HashSet<_> = (0..50).map(|k| p.sample(k)).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn degenerate_uniform_range() {
        let d = Duration::from_millis(5);
        let p = LatencyProfile::Uniform(d, d);
        assert_eq!(p.sample(3), d);
        let inverted = LatencyProfile::Uniform(d, Duration::from_millis(1));
        assert_eq!(inverted.sample(3), d, "inverted range clamps to lo");
    }

    #[test]
    fn latency_future_off_worker_blocks() {
        // Off a worker thread the future degrades to a blocking sleep and
        // completes on first poll.
        use std::task::Wake;
        struct W;
        impl Wake for W {
            fn wake(self: std::sync::Arc<Self>) {}
        }
        let waker = std::task::Waker::from(std::sync::Arc::new(W));
        let mut cx = Context::from_waker(&waker);
        let start = Instant::now();
        let mut f = simulate_latency(Duration::from_millis(5));
        assert!(Pin::new(&mut f).poll(&mut cx).is_ready());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn expired_deadline_ready_immediately() {
        use std::task::Wake;
        struct W;
        impl Wake for W {
            fn wake(self: std::sync::Arc<Self>) {}
        }
        let waker = std::task::Waker::from(std::sync::Arc::new(W));
        let mut cx = Context::from_waker(&waker);
        let mut f = latency_until(Instant::now() - Duration::from_millis(1));
        assert!(Pin::new(&mut f).poll(&mut cx).is_ready());
    }
}
