//! External operations: latency-incurring operations completed by the
//! outside world.
//!
//! [`simulate_latency`](crate::simulate_latency) models latency with a
//! timer, as the paper's own benchmark did. Real programs wait on *events*:
//! a network reply, a user keystroke, a device interrupt. [`external_op`]
//! provides exactly that — a one-shot operation whose task side suspends
//! through the same heavy-edge machinery (the deque's `suspendCtr`, the
//! owner's inbox, `addResumedVertices`) and whose [`Completer`] can be
//! fired from **any** thread.
//!
//! Semantics:
//!
//! * On a latency-hiding worker, the first `Pending` poll registers the
//!   task against its current (worker, active deque) pair, exactly like a
//!   timer suspension. `Completer::complete` then routes a resume event to
//!   the owning worker's inbox.
//! * Re-polls before completion (spurious wakes) keep the original
//!   registration: one registration pairs with exactly one resume event,
//!   so suspension counters always balance. The deque recorded at first
//!   suspension remains the task's home deque for this operation.
//! * Off-worker (or in blocking mode), the future degrades to ordinary
//!   waker-based waiting — no deque bookkeeping, completion wakes the task
//!   through the injector.
//! * Dropping the `Completer` without completing cancels the operation:
//!   the future resolves to `Err(Canceled)`. **While the runtime is
//!   running**, the cancellation delivers a resume event like any
//!   completion, so the suspension count stays balanced. A completer
//!   dropped *after* the workers have stopped (during or after
//!   [`Runtime::shutdown`](crate::Runtime::shutdown)) still settles the
//!   state safely — the drop never panics and a later poll still observes
//!   `Err(Canceled)` — but the resume event has no live worker left to
//!   drain it, so the suspension is reported in
//!   [`ShutdownReport::leaked_suspensions`](crate::ShutdownReport::leaked_suspensions)
//!   rather than balanced. Drivers that hold completers (I/O reactors)
//!   avoid this by being shut down *before* the workers — see
//!   [`crate::driver`].
//! * [`DeadlineExt::with_deadline`] bounds the wait through the runtime
//!   timer: the resulting [`DeadlineOp`] resolves `Err(TimedOut)` if the
//!   completer has not fired by the deadline. The settle protocol is
//!   **idempotent** — the deadline and a racing completer both try to
//!   settle, exactly one wins, and the loser is a no-op (the completer
//!   reports which via [`Completer::complete`]'s return value).

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::worker::{self, SuspendWait};

/// The operation was canceled: its [`Completer`] was dropped unfired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "external operation canceled: completer dropped")
    }
}

impl std::error::Error for Canceled {}

/// Why an external operation resolved without a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// The [`Completer`] was dropped unfired (or the runtime shut down
    /// with the deadline still pending).
    Canceled,
    /// A [`DeadlineOp`] deadline expired before the completer fired.
    TimedOut,
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::Canceled => write!(f, "external operation canceled"),
            OpError::TimedOut => write!(f, "external operation timed out"),
        }
    }
}

impl std::error::Error for OpError {}

/// Extension trait unifying the deadline surface: every suspending
/// operation that can be bounded by the runtime timer — [`ExternalOp`],
/// [`OneshotReceiver`](crate::channel::OneshotReceiver), and the net crate's
/// readiness futures — implements it once, with one typed error path
/// ([`OpError`]) underneath.
///
/// `with_timeout` is provided in terms of `with_deadline`, so an
/// implementation defines the absolute form only and both spellings agree
/// by construction.
pub trait DeadlineExt: Sized {
    /// The deadline-bounded form of this operation.
    type Deadlined;

    /// Bounds the operation with an absolute deadline through the runtime
    /// timer: the result resolves with a timeout error if the operation
    /// has not completed by `deadline`. The settle protocol is idempotent —
    /// the deadline and a racing completion both try to settle, exactly
    /// one wins, and the loser is a no-op.
    fn with_deadline(self, deadline: Instant) -> Self::Deadlined;

    /// [`DeadlineExt::with_deadline`] with a relative timeout.
    fn with_timeout(self, timeout: Duration) -> Self::Deadlined {
        self.with_deadline(Instant::now() + timeout)
    }
}

enum OpState<T> {
    /// Created; not yet polled, not yet completed.
    Idle,
    /// Waiting: suspended on a worker deque or parked behind a waker
    /// (see [`worker::register_suspension`]).
    Parked(SuspendWait),
    /// Completed (or canceled / timed out); value not yet taken.
    Done(Result<T, OpError>),
    /// Value delivered to the future.
    Finished,
}

struct Shared<T> {
    state: Mutex<OpState<T>>,
}

/// Creates a one-shot external operation: the [`ExternalOp`] future
/// suspends until the [`Completer`] fires (from any thread).
pub fn external_op<T: Send + 'static>() -> (Completer<T>, ExternalOp<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(OpState::Idle),
    });
    (
        Completer {
            shared: Some(shared.clone()),
        },
        ExternalOp { shared },
    )
}

/// Completion side of an [`external_op`]. Firing it resumes the waiting
/// task; dropping it unfired cancels the operation.
pub struct Completer<T: Send + 'static> {
    shared: Option<Arc<Shared<T>>>,
}

impl<T: Send + 'static> std::fmt::Debug for Completer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completer").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Completer<T> {
    /// Completes the operation with `value`, resuming the waiting task.
    ///
    /// Returns `true` when this call **won** the settle race — the waiter
    /// will observe `Ok(value)` — and `false` when it lost (a deadline
    /// already timed the operation out), in which case `value` is dropped.
    pub fn complete(mut self, value: T) -> bool {
        match self.shared.take() {
            Some(shared) => settle(&shared, Ok(value)),
            None => false,
        }
    }
}

impl<T: Send + 'static> Drop for Completer<T> {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            settle(&shared, Err(OpError::Canceled));
        }
    }
}

/// Stores the outcome and resumes/wakes the waiter, if any. Idempotent:
/// the first settler wins and returns `true`; later settlers (a completer
/// racing a deadline, or vice versa) are no-ops returning `false`, so the
/// waiter is notified exactly once.
fn settle<T: Send + 'static>(shared: &Shared<T>, outcome: Result<T, OpError>) -> bool {
    let prev = {
        let mut st = shared.state.lock();
        if matches!(&*st, OpState::Done(_) | OpState::Finished) {
            return false; // already settled; this settler lost the race
        }
        std::mem::replace(&mut *st, OpState::Done(outcome))
    };
    match prev {
        OpState::Idle => {}
        // The paper's callback(v, q) on the deque path; a plain wake on
        // the waker path.
        OpState::Parked(wait) => wait.notify(),
        OpState::Done(_) | OpState::Finished => unreachable!("checked above"),
    }
    true
}

/// Future side of an [`external_op`]. Resolves when the completer fires.
pub struct ExternalOp<T: Send + 'static> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + 'static> std::fmt::Debug for ExternalOp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalOp").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> DeadlineExt for ExternalOp<T> {
    type Deadlined = DeadlineOp<T>;

    /// The returned [`DeadlineOp`] resolves `Err(TimedOut)` if the
    /// completer has not fired by `deadline`. See [`DeadlineOp`] for the
    /// race and counter-balance semantics.
    fn with_deadline(self, deadline: Instant) -> DeadlineOp<T> {
        DeadlineOp {
            shared: self.shared,
            deadline,
            arm_attempted: false,
            timer_armed: false,
        }
    }
}

impl<T: Send + 'static> Future for ExternalOp<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.shared.state.lock();
        match &mut *st {
            OpState::Done(_) => {
                let OpState::Done(v) = std::mem::replace(&mut *st, OpState::Finished) else {
                    unreachable!()
                };
                // A plain ExternalOp never arms a deadline, so the only
                // error it can observe is cancellation.
                Poll::Ready(v.map_err(|_| Canceled))
            }
            OpState::Finished => panic!("ExternalOp polled after completion"),
            OpState::Parked(SuspendWait::Deque(_)) => {
                // Spurious re-poll while suspended: keep the original
                // registration (it pairs with the one pending event).
                Poll::Pending
            }
            st_ref @ (OpState::Idle | OpState::Parked(SuspendWait::Waker(_))) => {
                *st_ref = OpState::Parked(worker::register_suspension(cx.waker()));
                Poll::Pending
            }
        }
    }
}

/// An [`ExternalOp`] bounded by a deadline (see
/// [`DeadlineExt::with_deadline`]).
///
/// On a latency-hiding runtime the first poll arms a one-shot deadline on
/// the runtime timer; whichever of {completer, deadline, runtime shutdown}
/// settles first wins, and the suspension registered by the poll is
/// resumed exactly once regardless — counters stay balanced. Off any
/// runtime there is no timer, so the deadline is checked at each poll
/// (best effort): a completer firing still wakes the future, but a timeout
/// is only observed when something polls it.
pub struct DeadlineOp<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    deadline: Instant,
    /// First poll already tried to arm the timer (arm exactly once).
    arm_attempted: bool,
    /// A runtime timer holds the deadline; no per-poll deadline checks
    /// needed.
    timer_armed: bool,
}

impl<T: Send + 'static> std::fmt::Debug for DeadlineOp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadlineOp")
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Future for DeadlineOp<T> {
    type Output = Result<T, OpError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if !this.arm_attempted {
            this.arm_attempted = true;
            if let Some(rt) = worker::current_runtime() {
                // Arm before taking the state lock: timer registration
                // takes a shard lock, and the callback takes the state
                // lock — never both at once, in either order.
                let shared = this.shared.clone();
                rt.timer().register_deadline(
                    this.deadline,
                    Box::new(move |expired| {
                        let outcome = if expired {
                            OpError::TimedOut
                        } else {
                            OpError::Canceled // runtime shut down first
                        };
                        settle(&shared, Err(outcome));
                    }),
                );
                this.timer_armed = true;
            }
        }
        let mut st = this.shared.state.lock();
        match &mut *st {
            OpState::Done(_) => {
                let OpState::Done(v) = std::mem::replace(&mut *st, OpState::Finished) else {
                    unreachable!()
                };
                Poll::Ready(v)
            }
            OpState::Finished => panic!("DeadlineOp polled after completion"),
            OpState::Parked(SuspendWait::Deque(_)) => Poll::Pending,
            st_ref @ (OpState::Idle | OpState::Parked(SuspendWait::Waker(_))) => {
                if !this.timer_armed && Instant::now() >= this.deadline {
                    // No timer to enforce the deadline (off-runtime poll):
                    // enforce it here. No suspension was registered on
                    // this path, so nothing needs resuming.
                    *st_ref = OpState::Finished;
                    return Poll::Ready(Err(OpError::TimedOut));
                }
                *st_ref = OpState::Parked(worker::register_suspension(cx.waker()));
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Config, Runtime};
    use std::task::Waker;
    use std::time::Duration;

    #[test]
    fn complete_before_poll() {
        let rt = Runtime::new(Config::default().workers(2)).unwrap();
        let (c, op) = external_op::<u32>();
        c.complete(7);
        assert_eq!(rt.block_on(op), Ok(7));
    }

    #[test]
    fn complete_from_external_thread() {
        let rt = Runtime::new(Config::default().workers(2)).unwrap();
        let (c, op) = external_op::<String>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c.complete("hello".to_string());
        });
        let got = rt.block_on(op);
        assert_eq!(got.as_deref(), Ok("hello"));
        t.join().unwrap();
        let m = rt.metrics();
        assert_eq!(m.suspensions, 1, "the op suspended through the deque path");
        assert_eq!(m.resumes, 1);
    }

    #[test]
    fn cancellation_surfaces() {
        let rt = Runtime::new(Config::default().workers(2)).unwrap();
        let (c, op) = external_op::<u32>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            drop(c);
        });
        assert_eq!(rt.block_on(op), Err(Canceled));
        t.join().unwrap();
    }

    #[test]
    fn many_external_ops_in_flight() {
        let rt = Runtime::new(Config::default().workers(2)).unwrap();
        let n = 200;
        let mut completers = Vec::new();
        let mut ops = Vec::new();
        for _ in 0..n {
            let (c, op) = external_op::<u64>();
            completers.push(c);
            ops.push(op);
        }
        let firing = std::thread::spawn(move || {
            for (i, c) in completers.into_iter().enumerate() {
                c.complete(i as u64);
            }
        });
        let sum = rt.block_on(async move {
            let handles: Vec<_> = ops
                .into_iter()
                .map(|op| crate::spawn(async move { op.await.unwrap() }))
                .collect();
            let mut s = 0;
            for h in handles {
                s += h.await;
            }
            s
        });
        firing.join().unwrap();
        assert_eq!(sum, (0..n as u64).sum::<u64>());
    }

    #[test]
    fn deadline_times_out_and_completer_loses() {
        let rt = Runtime::new(Config::default().workers(2)).unwrap();
        let (c, op) = external_op::<u32>();
        let got = rt.block_on(op.with_timeout(Duration::from_millis(20)));
        assert_eq!(got, Err(OpError::TimedOut));
        // The late completer loses the settle race, harmlessly.
        assert!(!c.complete(9), "completer must report it lost");
        // The suspension registered by the waiting poll was resumed by the
        // timeout settle: counters balance.
        let m = rt.metrics();
        assert_eq!(m.suspensions, m.resumes);
    }

    #[test]
    fn completer_beats_deadline() {
        let rt = Runtime::new(Config::default().workers(2)).unwrap();
        let (c, op) = external_op::<u32>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            assert!(c.complete(7), "completer fired well before the deadline");
        });
        let got = rt.block_on(op.with_timeout(Duration::from_secs(30)));
        assert_eq!(got, Ok(7));
        t.join().unwrap();
        // The armed deadline is canceled at shutdown and counted.
        let report = rt.shutdown();
        assert_eq!(report.canceled_ops, 1);
        assert_eq!(report.leaked_suspensions, 0);
    }

    #[test]
    fn deadline_cancellation_still_surfaces() {
        let rt = Runtime::new(Config::default().workers(2)).unwrap();
        let (c, op) = external_op::<u32>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            drop(c);
        });
        let got = rt.block_on(op.with_timeout(Duration::from_secs(30)));
        assert_eq!(got, Err(OpError::Canceled));
        t.join().unwrap();
    }

    #[test]
    fn off_runtime_deadline_checked_on_poll() {
        use std::task::Wake;
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let (_c, op) = external_op::<u32>();
        let mut d = op.with_deadline(Instant::now() - Duration::from_millis(1));
        let waker = Waker::from(Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        // No runtime → no timer; the expired deadline is observed at poll.
        assert_eq!(
            Pin::new(&mut d).poll(&mut cx),
            Poll::Ready(Err(OpError::TimedOut))
        );
    }

    #[test]
    fn off_runtime_waiting_path() {
        // Completed op polled off any runtime resolves via the waker path.
        let (c, mut op) = external_op::<u32>();
        use std::task::Wake;
        struct Flag(std::sync::atomic::AtomicBool);
        impl Wake for Flag {
            fn wake(self: Arc<Self>) {
                self.0.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let flag = Arc::new(Flag(std::sync::atomic::AtomicBool::new(false)));
        let waker = Waker::from(flag.clone());
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut op).poll(&mut cx).is_pending());
        c.complete(5);
        assert!(flag.0.load(std::sync::atomic::Ordering::SeqCst));
        assert_eq!(Pin::new(&mut op).poll(&mut cx), Poll::Ready(Ok(5)));
    }
}
