//! The timer substrate: delivers latency expirations.
//!
//! The paper's model assumes an external world (remote servers, users,
//! storage) that makes suspended vertices ready again after their latency.
//! This module is that world's stand-in: a dedicated timer thread holds a
//! min-heap of deadlines and, when one expires, routes a
//! [`ResumeEvent`] to the inbox of the worker owning the suspended task's
//! deque — the paper's `callback(v, q)`, realized with the "polling in a
//! separate (system) thread" option its §3 footnote describes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::task::TaskRef;

/// A latency expiration to deliver.
#[derive(Debug)]
pub(crate) struct TimerEntry {
    /// When the latency expires.
    pub deadline: Instant,
    /// The suspended task.
    pub task: TaskRef,
    /// Worker owning the deque the task suspended on.
    pub worker: usize,
    /// The owner's local index of that deque.
    pub local_deque: usize,
}

/// Resume event delivered to a worker inbox: the paper's `callback(v, q)`
/// arguments.
#[derive(Debug)]
pub(crate) struct ResumeEvent {
    /// The resumed task (`v`).
    pub task: TaskRef,
    /// The owner's local index of the deque it belongs to (`q`).
    pub local_deque: usize,
}

/// Where the timer delivers events: one sender per worker plus an unpark
/// hook. Provided by the runtime.
pub(crate) trait ResumeSink: Send + Sync + 'static {
    /// Delivers `event` to worker `worker`'s inbox and wakes it.
    fn deliver(&self, worker: usize, event: ResumeEvent);
}

struct HeapEntry {
    deadline: Instant,
    seq: u64,
    entry: TimerEntry,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

#[derive(Default)]
struct TimerState {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    shutdown: bool,
}

/// Handle to the timer thread (shared with the runtime).
pub(crate) struct Timer {
    state: Mutex<TimerState>,
    cond: Condvar,
}

impl Timer {
    /// Creates the timer and spawns its thread, delivering into `sink`.
    pub fn start(sink: Arc<dyn ResumeSink>) -> (Arc<Timer>, std::thread::JoinHandle<()>) {
        let timer = Arc::new(Timer {
            state: Mutex::new(TimerState::default()),
            cond: Condvar::new(),
        });
        let t2 = timer.clone();
        let handle = std::thread::Builder::new()
            .name("lhws-timer".into())
            .spawn(move || t2.run(sink))
            .expect("spawn timer thread");
        (timer, handle)
    }

    /// Registers a latency expiration.
    pub fn register(&self, entry: TimerEntry) {
        let mut s = self.state.lock();
        let seq = s.seq;
        s.seq += 1;
        s.heap.push(Reverse(HeapEntry {
            deadline: entry.deadline,
            seq,
            entry,
        }));
        drop(s);
        self.cond.notify_one();
    }

    /// Signals the timer thread to exit.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cond.notify_one();
    }

    fn run(&self, sink: Arc<dyn ResumeSink>) {
        let mut s = self.state.lock();
        loop {
            if s.shutdown {
                return;
            }
            match s.heap.peek() {
                None => {
                    self.cond.wait(&mut s);
                }
                Some(Reverse(top)) => {
                    let now = Instant::now();
                    if top.deadline <= now {
                        let Reverse(he) = s.heap.pop().expect("peeked");
                        // Deliver without holding the lock: the sink may
                        // unpark threads or touch channels.
                        drop(s);
                        sink.deliver(
                            he.entry.worker,
                            ResumeEvent {
                                task: he.entry.task,
                                local_deque: he.entry.local_deque,
                            },
                        );
                        s = self.state.lock();
                    } else {
                        let deadline = top.deadline;
                        self.cond.wait_until(&mut s, deadline);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{BoxFuture, Task};
    use parking_lot::Mutex as PlMutex;
    use std::time::Duration;

    struct CollectSink {
        got: PlMutex<Vec<(usize, usize)>>,
    }
    impl ResumeSink for CollectSink {
        fn deliver(&self, worker: usize, event: ResumeEvent) {
            self.got.lock().push((worker, event.local_deque));
        }
    }

    fn dummy_task() -> TaskRef {
        let fut: BoxFuture = Box::pin(async {});
        Task::new_queued(std::sync::Weak::new(), fut)
    }

    #[test]
    fn delivers_in_deadline_order() {
        let sink = Arc::new(CollectSink {
            got: PlMutex::new(Vec::new()),
        });
        let (timer, handle) = Timer::start(sink.clone());
        let now = Instant::now();
        timer.register(TimerEntry {
            deadline: now + Duration::from_millis(30),
            task: dummy_task(),
            worker: 2,
            local_deque: 20,
        });
        timer.register(TimerEntry {
            deadline: now + Duration::from_millis(10),
            task: dummy_task(),
            worker: 1,
            local_deque: 10,
        });
        std::thread::sleep(Duration::from_millis(80));
        {
            let got = sink.got.lock();
            assert_eq!(got.as_slice(), &[(1, 10), (2, 20)]);
        }
        timer.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let sink = Arc::new(CollectSink {
            got: PlMutex::new(Vec::new()),
        });
        let (timer, handle) = Timer::start(sink.clone());
        timer.register(TimerEntry {
            deadline: Instant::now() - Duration::from_millis(5),
            task: dummy_task(),
            worker: 0,
            local_deque: 0,
        });
        // Generous bound for slow CI machines.
        let deadline = Instant::now() + Duration::from_secs(2);
        while sink.got.lock().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(sink.got.lock().len(), 1);
        timer.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_unblocks_empty_wait() {
        let sink = Arc::new(CollectSink {
            got: PlMutex::new(Vec::new()),
        });
        let (timer, handle) = Timer::start(sink);
        std::thread::sleep(Duration::from_millis(10));
        timer.shutdown();
        handle.join().unwrap(); // must not hang
    }

    #[test]
    fn many_timers_all_fire() {
        let sink = Arc::new(CollectSink {
            got: PlMutex::new(Vec::new()),
        });
        let (timer, handle) = Timer::start(sink.clone());
        let now = Instant::now();
        for i in 0..50 {
            timer.register(TimerEntry {
                deadline: now + Duration::from_millis(5 + (i % 7)),
                task: dummy_task(),
                worker: i as usize,
                local_deque: 0,
            });
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while sink.got.lock().len() < 50 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(sink.got.lock().len(), 50);
        timer.shutdown();
        handle.join().unwrap();
    }
}
