//! Deterministic fault injection and trace-backed invariant auditing.
//!
//! The scheduler's core guarantees — every suspension registration pairs
//! with exactly one resume, deques are recycled and never leaked, Lemma
//! 7's `U + 1` live-deque bound — are properties of adversarial
//! schedules, not of happy paths. This module manufactures the adversary:
//!
//! * [`FaultPlan`] is a seeded, declarative schedule of faults, enabled by
//!   [`Config::fault_plan`](crate::Config::fault_plan). When unset (the
//!   default) the runtime carries no injector at all — the same
//!   `Option<Arc<_>>` zero-cost pattern as the tracer.
//! * Each injection *site* (a scheduler decision point: steal attempts,
//!   resume delivery, polls, the worker loop) consumes one **visit** of a
//!   per-site counter. Whether the k-th visit of a site fires is a pure
//!   function of `(seed, site, k)` — a SplitMix64 stream — so the fault
//!   schedule for a given seed is bit-for-bit reproducible:
//!   [`FaultPlan::schedule_digest`] hashes it without running anything.
//!   (Which visit a given *dynamic* event lands on still depends on thread
//!   interleaving; determinism is per-site-stream, which is what makes a
//!   failing seed replayable.)
//! * [`audit`] replays a [`Trace`] after a chaos run and checks the
//!   invariants the faults are trying to break: suspension/resume pairing
//!   by `seq` tag, deque alloc/release balance, and the Lemma 7
//!   high-water bound.
//!
//! What each knob injects:
//!
//! | knob | site | effect |
//! |------|------|--------|
//! | `steal_fail_ppm` | steal loop | the attempt fails before drawing a victim (a forced lost race / retry storm) |
//! | `resume_delay_ppm` | `deliver_resume` | the event is re-routed through the timer with a jittered delay (late, but still exactly once) |
//! | `resume_reorder_ppm` | `deliver_batch` | the batch's event order is reversed before delivery |
//! | `spurious_wake_ppm` | after a `Pending` poll | the task is woken without any of its registrations completing |
//! | `poll_delay_ppm` | before a poll | the worker sleeps, emulating OS preemption between deadline computation and first poll |
//! | `task_panic_ppm` | first poll of a spawned task | the task panics (propagates at its join, as a user panic would) |
//! | `deque_switch_ppm` | after draining resumes | the non-empty active deque is demoted to the ready list |
//! | `drop_unpark_ppm` | inject/delivery | the wake-up is skipped; the park timeout is the only backstop |
//! | `dropped_readiness_ppm` | reactor event loop | a kernel readiness event is swallowed without firing the completer or disarming interest; level-triggered epoll re-reports it on the next wait |
//! | `stale_live_index_ppm` | thief victim draw | the thief samples the whole allocated slot prefix instead of the live-set index, as if its view of the index were stale — manufacturing dead-target probes the bounded-retry loop must absorb |
//! | `affinity_stale_ppm` | affinity victim draw | the thief's cached last-successful victim is poisoned before the draw, forcing the [`StealPolicy::Affinity`](crate::StealPolicy::Affinity) fallback path as if the victim had just retired |
//! | `worker_panic_after` | worker loop | the first worker to reach the N-th loop iteration panics, poisoning the runtime |

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::config::ConfigError;
use crate::trace::{EventKind, Trace, TraceEvent};

/// One million: ppm rates are fractions of this.
const PPM_SCALE: u64 = 1_000_000;

/// An injection site: a scheduler decision point the fault plan can
/// perturb. Each site consumes its own deterministic decision stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Forced steal failure (before the victim draw).
    StealFail,
    /// Delayed resume delivery at `deliver_resume`.
    ResumeDelay,
    /// Reversed event order within a delivered resume batch.
    ResumeReorder,
    /// Spurious wake of a task that polled `Pending`.
    SpuriousWake,
    /// Sleep before a poll (emulated preemption).
    PollDelay,
    /// Injected panic on a spawned task's first poll.
    TaskPanic,
    /// Forced demotion of the active deque to the ready list.
    DequeSwitch,
    /// Dropped wake-up after publishing work (park-timeout backstop).
    DropUnpark,
    /// Swallowed kernel readiness event in a reactor driver's event loop
    /// (recovered by level-triggered re-reporting).
    DroppedReadiness,
    /// Stale live-set view at the thief's victim draw: the thief samples
    /// over the whole allocated slot prefix (dead slots included) instead
    /// of the live index, proving the retry path absorbs dead targets.
    StaleLiveIndex,
    /// Poisoned affinity cache at the thief's victim draw: the cached
    /// last-successful victim is dropped before it is consulted, forcing
    /// the affinity fallback path as if the victim had just retired.
    AffinityStale,
}

impl FaultSite {
    /// Every site, in decision-stream order (the order
    /// [`FaultPlan::schedule_digest`] folds them in).
    pub const ALL: [FaultSite; 11] = [
        FaultSite::StealFail,
        FaultSite::ResumeDelay,
        FaultSite::ResumeReorder,
        FaultSite::SpuriousWake,
        FaultSite::PollDelay,
        FaultSite::TaskPanic,
        FaultSite::DequeSwitch,
        FaultSite::DropUnpark,
        FaultSite::DroppedReadiness,
        FaultSite::StaleLiveIndex,
        FaultSite::AffinityStale,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultSite::StealFail => 0,
            FaultSite::ResumeDelay => 1,
            FaultSite::ResumeReorder => 2,
            FaultSite::SpuriousWake => 3,
            FaultSite::PollDelay => 4,
            FaultSite::TaskPanic => 5,
            FaultSite::DequeSwitch => 6,
            FaultSite::DropUnpark => 7,
            FaultSite::DroppedReadiness => 8,
            FaultSite::StaleLiveIndex => 9,
            FaultSite::AffinityStale => 10,
        }
    }

    /// Per-site salt separating the decision streams under one seed.
    #[inline]
    fn salt(self) -> u64 {
        // Arbitrary distinct odd constants; part of the stable schedule
        // definition (changing one changes every digest).
        [
            0x517E_A1FA_117E_D001,
            0x52E5_0DE1_A7ED_0003,
            0x52E0_12DE_12ED_0005,
            0x5925_1005_3A8E_0007,
            0x90DE_1A75_0110_0009,
            0x7A5C_9A21_C000_000B,
            0xDE0E_5312_7C11_000D,
            0xD209_0213_9A12_000F,
            0x10C4_77A1_7ED1_0011,
            0x57A1_E11D_E0C5_0013,
            0xAFF1_2175_7A1E_0015,
        ][self.index()]
    }
}

const N_SITES: usize = FaultSite::ALL.len();

/// SplitMix64 finalizer: the stream generator behind every decision.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The decision word for visit `visit` of `site` under `seed` — a pure
/// function, so the schedule can be recomputed (or digested) offline.
#[inline]
pub fn decision_word(seed: u64, site: FaultSite, visit: u64) -> u64 {
    let stream = splitmix64(seed ^ site.salt());
    splitmix64(stream ^ visit.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A seeded fault-injection schedule. All rates are parts-per-million of
/// visits to the corresponding site (`0` = never, `1_000_000` = always);
/// the default plan injects nothing. Plain `Copy` data, so
/// [`Config`](crate::Config) stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of every decision stream.
    pub seed: u64,
    /// Rate of forced steal failures.
    pub steal_fail_ppm: u32,
    /// Rate of delayed resume deliveries.
    pub resume_delay_ppm: u32,
    /// Maximum delay added to a delayed resume, in microseconds (the
    /// actual jitter is drawn deterministically from the decision word).
    pub resume_delay_micros: u64,
    /// Rate of reversed resume batches.
    pub resume_reorder_ppm: u32,
    /// Rate of spurious wakes after `Pending` polls.
    pub spurious_wake_ppm: u32,
    /// Rate of sleeps before polls (emulated preemption).
    pub poll_delay_ppm: u32,
    /// Maximum pre-poll sleep, in microseconds.
    pub poll_delay_micros: u64,
    /// Rate of injected panics on spawned tasks' first polls.
    pub task_panic_ppm: u32,
    /// Rate of forced active-deque demotions.
    pub deque_switch_ppm: u32,
    /// Rate of dropped wake-ups.
    pub drop_unpark_ppm: u32,
    /// Rate of swallowed reactor readiness events. Only visited when a
    /// reactor driver is attached; level-triggered epoll makes every
    /// swallow recoverable (the fd stays ready, the next `epoll_wait`
    /// re-reports it). A rate of 1 000 000 would livelock the reactor.
    pub dropped_readiness_ppm: u32,
    /// Rate of stale-live-index victim draws: the thief falls back to the
    /// slot-array baseline sampler (dead slots included) for that probe.
    pub stale_live_index_ppm: u32,
    /// Rate of poisoned affinity caches: the thief's remembered
    /// last-successful victim is dropped before the affinity draw,
    /// forcing the fallback path. Only visited under
    /// [`StealPolicy::Affinity`](crate::StealPolicy::Affinity) or
    /// [`StealPolicy::Adaptive`](crate::StealPolicy::Adaptive) with a
    /// cached victim.
    pub affinity_stale_ppm: u32,
    /// If set, the first worker whose scheduler loop reaches this many
    /// total iterations (counted across all workers) panics — exercising
    /// the supervision/poisoning path. Fires at most once per runtime.
    pub worker_panic_after: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// A plan with the given seed and every fault disabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            steal_fail_ppm: 0,
            resume_delay_ppm: 0,
            resume_delay_micros: 200,
            resume_reorder_ppm: 0,
            spurious_wake_ppm: 0,
            poll_delay_ppm: 0,
            poll_delay_micros: 200,
            task_panic_ppm: 0,
            deque_switch_ppm: 0,
            drop_unpark_ppm: 0,
            dropped_readiness_ppm: 0,
            stale_live_index_ppm: 0,
            affinity_stale_ppm: 0,
            worker_panic_after: None,
        }
    }

    /// The standard chaos preset: every non-destructive fault at a rate
    /// that stresses the suspend/resume protocol without starving the
    /// workload. Task panics and worker panics stay off — enable them
    /// explicitly for supervision tests.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::new(seed)
            .steal_fail(200_000)
            .resume_delay(150_000, Duration::from_micros(300))
            .resume_reorder(300_000)
            .spurious_wake(100_000)
            .poll_delay(20_000, Duration::from_micros(150))
            .deque_switch(80_000)
            .drop_unpark(150_000)
            .dropped_readiness(150_000)
            .stale_live_index(200_000)
            .affinity_stale(200_000)
    }

    /// Sets the forced-steal-failure rate.
    pub fn steal_fail(mut self, ppm: u32) -> Self {
        self.steal_fail_ppm = ppm;
        self
    }

    /// Sets the delayed-resume rate and maximum delay.
    pub fn resume_delay(mut self, ppm: u32, max: Duration) -> Self {
        self.resume_delay_ppm = ppm;
        self.resume_delay_micros = max.as_micros().max(1) as u64;
        self
    }

    /// Sets the batch-reorder rate.
    pub fn resume_reorder(mut self, ppm: u32) -> Self {
        self.resume_reorder_ppm = ppm;
        self
    }

    /// Sets the spurious-wake rate.
    pub fn spurious_wake(mut self, ppm: u32) -> Self {
        self.spurious_wake_ppm = ppm;
        self
    }

    /// Sets the pre-poll delay rate and maximum sleep.
    pub fn poll_delay(mut self, ppm: u32, max: Duration) -> Self {
        self.poll_delay_ppm = ppm;
        self.poll_delay_micros = max.as_micros().max(1) as u64;
        self
    }

    /// Sets the injected-task-panic rate.
    pub fn task_panic(mut self, ppm: u32) -> Self {
        self.task_panic_ppm = ppm;
        self
    }

    /// Sets the forced-deque-switch rate.
    pub fn deque_switch(mut self, ppm: u32) -> Self {
        self.deque_switch_ppm = ppm;
        self
    }

    /// Sets the dropped-wake-up rate.
    pub fn drop_unpark(mut self, ppm: u32) -> Self {
        self.drop_unpark_ppm = ppm;
        self
    }

    /// Sets the swallowed-readiness rate for reactor drivers.
    pub fn dropped_readiness(mut self, ppm: u32) -> Self {
        self.dropped_readiness_ppm = ppm;
        self
    }

    /// Sets the stale-live-index rate for thief victim draws.
    pub fn stale_live_index(mut self, ppm: u32) -> Self {
        self.stale_live_index_ppm = ppm;
        self
    }

    /// Sets the poisoned-affinity-cache rate for affinity victim draws.
    pub fn affinity_stale(mut self, ppm: u32) -> Self {
        self.affinity_stale_ppm = ppm;
        self
    }

    /// Arms a one-shot worker-loop panic after `n` total loop iterations.
    pub fn worker_panic_after(mut self, n: u64) -> Self {
        self.worker_panic_after = Some(n);
        self
    }

    /// The configured rate for `site`, in ppm.
    pub fn rate(&self, site: FaultSite) -> u32 {
        match site {
            FaultSite::StealFail => self.steal_fail_ppm,
            FaultSite::ResumeDelay => self.resume_delay_ppm,
            FaultSite::ResumeReorder => self.resume_reorder_ppm,
            FaultSite::SpuriousWake => self.spurious_wake_ppm,
            FaultSite::PollDelay => self.poll_delay_ppm,
            FaultSite::TaskPanic => self.task_panic_ppm,
            FaultSite::DequeSwitch => self.deque_switch_ppm,
            FaultSite::DropUnpark => self.drop_unpark_ppm,
            FaultSite::DroppedReadiness => self.dropped_readiness_ppm,
            FaultSite::StaleLiveIndex => self.stale_live_index_ppm,
            FaultSite::AffinityStale => self.affinity_stale_ppm,
        }
    }

    /// Whether visit `visit` of `site` fires under this plan — the pure
    /// schedule function the injector evaluates at runtime.
    pub fn fires(&self, site: FaultSite, visit: u64) -> bool {
        let ppm = self.rate(site) as u64;
        ppm > 0 && decision_word(self.seed, site, visit) % PPM_SCALE < ppm
    }

    /// Hashes the first `visits_per_site` decisions of every site into one
    /// word. Two runs with the same plan share the digest by construction;
    /// the reproducibility tests (and the chaos soak) assert exactly that.
    pub fn schedule_digest(&self, visits_per_site: u64) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for site in FaultSite::ALL {
            let ppm = self.rate(site) as u64;
            for k in 0..visits_per_site {
                let w = decision_word(self.seed, site, k);
                let fired = (ppm > 0 && w % PPM_SCALE < ppm) as u64;
                // Spread the fired bit across the word before folding: a
                // single-bit XOR above the odd multiplier would confine
                // every fire to bit 63, letting an even number of fires
                // cancel out of the digest entirely.
                h = (h ^ w ^ fired.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Validates the plan's rates (each must be ≤ 1 000 000 ppm).
    pub fn validate(&self) -> Result<(), ConfigError> {
        for site in FaultSite::ALL {
            let ppm = self.rate(site);
            if ppm as u64 > PPM_SCALE {
                return Err(ConfigError::FaultRateOutOfRange { site, ppm });
            }
        }
        Ok(())
    }
}

/// The runtime half of a [`FaultPlan`]: per-site visit counters plus the
/// worker-loop iteration counter. Lives behind `Option<Arc<_>>` in the
/// runtime — `None` is the entire cost of disabled injection.
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    visits: [AtomicU64; N_SITES],
    injected: [AtomicU64; N_SITES],
    loop_iters: AtomicU64,
    worker_panics: AtomicU64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            visits: Default::default(),
            injected: Default::default(),
            loop_iters: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
        }
    }

    /// Consumes one visit of `site`; returns the decision word when the
    /// visit fires. Rate-zero sites are free (no counter traffic).
    #[inline]
    fn roll(&self, site: FaultSite) -> Option<u64> {
        let ppm = self.plan.rate(site) as u64;
        if ppm == 0 {
            return None;
        }
        let k = self.visits[site.index()].fetch_add(1, Ordering::Relaxed);
        let w = decision_word(self.plan.seed, site, k);
        if w % PPM_SCALE < ppm {
            self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
            Some(w)
        } else {
            None
        }
    }

    pub fn steal_fail(&self) -> bool {
        self.roll(FaultSite::StealFail).is_some()
    }

    /// Jittered delay to re-route a resume delivery through, if this
    /// visit fires. The jitter is drawn from the decision word, so it is
    /// part of the deterministic schedule.
    pub fn resume_delay(&self) -> Option<Duration> {
        self.roll(FaultSite::ResumeDelay)
            .map(|w| Duration::from_micros(1 + (w >> 20) % self.plan.resume_delay_micros))
    }

    pub fn resume_reorder(&self) -> bool {
        self.roll(FaultSite::ResumeReorder).is_some()
    }

    pub fn spurious_wake(&self) -> bool {
        self.roll(FaultSite::SpuriousWake).is_some()
    }

    pub fn poll_delay(&self) -> Option<Duration> {
        self.roll(FaultSite::PollDelay)
            .map(|w| Duration::from_micros(1 + (w >> 20) % self.plan.poll_delay_micros))
    }

    pub fn task_panic(&self) -> bool {
        self.roll(FaultSite::TaskPanic).is_some()
    }

    pub fn force_deque_switch(&self) -> bool {
        self.roll(FaultSite::DequeSwitch).is_some()
    }

    pub fn drop_unpark(&self) -> bool {
        self.roll(FaultSite::DropUnpark).is_some()
    }

    /// Whether a reactor driver should swallow this readiness event.
    pub fn dropped_readiness(&self) -> bool {
        self.roll(FaultSite::DroppedReadiness).is_some()
    }

    /// Whether this thief victim draw should pretend its live-set view is
    /// stale and sample the whole allocated slot prefix instead.
    pub fn stale_live_index(&self) -> bool {
        self.roll(FaultSite::StaleLiveIndex).is_some()
    }

    /// Whether this affinity victim draw should poison the thief's cached
    /// last-successful victim, forcing the fallback path.
    pub fn affinity_stale(&self) -> bool {
        self.roll(FaultSite::AffinityStale).is_some()
    }

    /// Counts one worker-loop iteration; `true` exactly when this
    /// iteration is the plan's `worker_panic_after` threshold (at most
    /// once per runtime — `fetch_add` hands out unique values).
    pub fn worker_loop_should_panic(&self) -> bool {
        match self.plan.worker_panic_after {
            None => false,
            Some(n) => {
                let fires = self.loop_iters.fetch_add(1, Ordering::Relaxed) + 1 == n;
                if fires {
                    self.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
                fires
            }
        }
    }

    /// Total faults injected so far, across all sites (plus the
    /// worker-loop panic, which has no per-visit site).
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.worker_panics.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("injected", &self.injected_total())
            .finish_non_exhaustive()
    }
}

/// A wrapper future that may panic on its first poll, per the plan's
/// `task_panic_ppm`. Wrapped *inside* the task's `CatchUnwind` at spawn,
/// so an injected panic travels the same road as a user panic: caught,
/// stored in the `JoinCell`, re-thrown at the join point.
pub(crate) struct PanicInjected<F> {
    inner: F,
    /// Taken on first poll; `None` (no plan / rate 0) is a no-op wrapper.
    armed: Option<std::sync::Arc<FaultInjector>>,
}

impl<F> PanicInjected<F> {
    pub fn new(inner: F, armed: Option<std::sync::Arc<FaultInjector>>) -> Self {
        PanicInjected { inner, armed }
    }
}

impl<F: std::future::Future> std::future::Future for PanicInjected<F> {
    type Output = F::Output;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        // Safety: `inner` is structurally pinned; `armed` is never pinned.
        let this = unsafe { self.get_unchecked_mut() };
        if let Some(f) = this.armed.take() {
            if f.task_panic() {
                panic!("injected task panic (fault plan)");
            }
        }
        unsafe { std::pin::Pin::new_unchecked(&mut this.inner) }.poll(cx)
    }
}

// ---------------------------------------------------------------------
// Trace auditing.
// ---------------------------------------------------------------------

/// How many violation messages [`audit`] keeps verbatim (the count keeps
/// counting past this).
const MAX_VIOLATION_MESSAGES: usize = 16;

/// Result of [`audit`]: counts, the Lemma 7 observables, and every
/// invariant violation found.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AuditReport {
    /// `Suspend` events seen (registrations).
    pub suspensions: u64,
    /// `ResumeReady` events seen (registrations drained by their owner).
    pub readies: u64,
    /// `ResumeExec` events seen (resumed tasks re-polled).
    pub execs: u64,
    /// Registrations with no `ResumeReady` — suspensions still in flight
    /// when the trace was cut. Non-zero is normal for mid-run snapshots
    /// and poisoned runtimes; quiescent drained runs should see `0`.
    pub unresolved: u64,
    /// Maximum simultaneously in-flight suspensions (the paper's `U`,
    /// as observable from the trace).
    pub max_inflight: u64,
    /// Per-worker live-deque high-water marks.
    pub deque_high_water: Vec<u64>,
    /// `IoRegister` events seen (readiness waits filed with a reactor).
    pub io_registered: u64,
    /// `IoReady` events seen (waits resolved by kernel readiness).
    pub io_ready: u64,
    /// `IoDeregister` events seen (waits withdrawn without readiness:
    /// cancel, timeout, or the shutdown drain).
    pub io_deregistered: u64,
    /// Registered I/O waits with neither an `IoReady` nor an
    /// `IoDeregister` — still parked in the registration table when the
    /// trace was cut. Like [`unresolved`](Self::unresolved), non-zero is
    /// normal for mid-run snapshots only.
    pub io_unresolved: u64,
    /// Total violations found (messages beyond the first few are counted,
    /// not stored).
    pub violation_count: u64,
    /// The first violations, as human-readable messages.
    pub violations: Vec<String>,
    /// The trace dropped events (ring overflow), so absence of a paired
    /// event proves nothing. `passed` is `false` in this state.
    pub inconclusive: bool,
}

impl AuditReport {
    /// `true` when no invariant violation was found *and* the trace was
    /// complete enough to tell.
    pub fn passed(&self) -> bool {
        self.violation_count == 0 && !self.inconclusive
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} — {} suspensions, {} ready, {} executed, {} unresolved, U={}, high-water {:?}",
            if self.passed() {
                "PASS"
            } else if self.inconclusive {
                "INCONCLUSIVE (trace dropped events)"
            } else {
                "FAIL"
            },
            self.suspensions,
            self.readies,
            self.execs,
            self.unresolved,
            self.max_inflight,
            self.deque_high_water,
        )?;
        if self.io_registered + self.io_ready + self.io_deregistered > 0 {
            writeln!(
                f,
                "  io: {} registered, {} readiness, {} deregistered, {} unresolved",
                self.io_registered, self.io_ready, self.io_deregistered, self.io_unresolved,
            )?;
        }
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        if self.violation_count as usize > self.violations.len() {
            writeln!(
                f,
                "  … and {} more",
                self.violation_count as usize - self.violations.len()
            )?;
        }
        Ok(())
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct SeqRec {
    suspends: u32,
    readies: u32,
    execs: u32,
}

#[derive(Debug, Default, Clone, Copy)]
struct IoRec {
    registers: u32,
    readies: u32,
    deregisters: u32,
}

/// Incremental, order-tolerant form of [`audit`]: feed it event batches as
/// they arrive (e.g. from a
/// [`TraceReader`](crate::trace::TraceReader)) and ask for an
/// [`AuditReport`] at any point.
///
/// A live reader's batch is a per-ring-consistent cut, not a globally
/// consistent one: polling ring A before ring B can surface a causally
/// *later* event from B (say a `ResumeReady`) in an earlier batch than its
/// causally earlier `Suspend` from A. `AuditState` therefore splits the
/// invariant checks in two:
///
/// - **Monotone** violations — duplicate suspends/readies, duplicate I/O
///   registration, double I/O resolution, per-worker deque-walk breaks —
///   only ever become *more* true as events arrive, so they are flagged
///   the moment the offending event is observed (this is what makes
///   continuous audit useful during a chaos soak).
/// - **Order-sensitive** checks — ready-without-suspend, more execs than
///   readies, I/O resolution without registration, unresolved counts, and
///   the Lemma 7 bound — are evaluated at [`report`](Self::report) time
///   over the accumulated tallies, where a transiently reordered pair has
///   already been matched up.
///
/// In-flight tracking is orphan-aware for the same reason: a `ResumeReady`
/// observed before its `Suspend` neither underflows the in-flight count
/// nor inflates `max_inflight` when the `Suspend` arrives later, so the
/// `U` used by the Lemma 7 check is not corrupted by read-order skew.
///
/// Feeding one complete timestamp-sorted trace in a single batch yields
/// the same verdict and counts as [`audit`] — which is in fact implemented
/// on top of this type.
#[derive(Debug, Clone)]
pub struct AuditState {
    seqs: HashMap<u64, SeqRec>,
    io: HashMap<u64, IoRec>,
    io_registered: u64,
    io_ready: u64,
    io_deregistered: u64,
    inflight: u64,
    max_inflight: u64,
    live: Vec<Option<u64>>,
    high: Vec<u64>,
    suspensions: u64,
    readies: u64,
    execs: u64,
    violation_count: u64,
    violations: Vec<String>,
    dropped: u64,
}

impl AuditState {
    /// New auditor for a runtime with `workers` worker threads.
    pub fn new(workers: usize) -> AuditState {
        AuditState {
            seqs: HashMap::new(),
            io: HashMap::new(),
            io_registered: 0,
            io_ready: 0,
            io_deregistered: 0,
            inflight: 0,
            max_inflight: 0,
            live: vec![None; workers],
            high: vec![0; workers],
            suspensions: 0,
            readies: 0,
            execs: 0,
            violation_count: 0,
            violations: Vec::new(),
            dropped: 0,
        }
    }

    fn violate(&mut self, msg: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_VIOLATION_MESSAGES {
            self.violations.push(msg);
        }
    }

    /// Folds a batch of events into the audit. Batches must each preserve
    /// per-worker recording order (any [`TraceReader`](crate::trace::TraceReader)
    /// batch or timestamp-sorted [`Trace`] does); cross-worker order may
    /// skew freely between batches.
    pub fn observe(&mut self, events: &[TraceEvent]) {
        for ev in events {
            match ev.kind {
                EventKind::Suspend { seq, .. } => {
                    self.suspensions += 1;
                    if seq != 0 {
                        let rec = self.seqs.entry(seq).or_default();
                        rec.suspends += 1;
                        // Orphan-aware: if the matching ready was observed
                        // first (read-order skew), the pair is already
                        // settled — don't count it as newly in flight.
                        let settled = rec.readies >= rec.suspends;
                        let dup = rec.suspends > 1;
                        if !settled {
                            self.inflight += 1;
                            self.max_inflight = self.max_inflight.max(self.inflight);
                        }
                        if dup {
                            let n = self.seqs[&seq].suspends;
                            self.violate(format!("suspension seq {seq:#x} registered {n} times"));
                        }
                    } else {
                        self.inflight += 1;
                        self.max_inflight = self.max_inflight.max(self.inflight);
                    }
                }
                EventKind::ResumeReady { seq, .. } => {
                    self.readies += 1;
                    if seq != 0 {
                        let rec = self.seqs.entry(seq).or_default();
                        rec.readies += 1;
                        // Only retire an in-flight slot this ready's own
                        // suspend actually opened; an early-observed ready
                        // waits for its suspend instead of underflowing.
                        let retire = rec.suspends >= rec.readies;
                        let dup = rec.readies > 1;
                        if retire {
                            self.inflight = self.inflight.saturating_sub(1);
                        }
                        if dup {
                            let n = self.seqs[&seq].readies;
                            self.violate(format!("suspension seq {seq:#x} resumed {n} times"));
                        }
                    } else {
                        self.inflight = self.inflight.saturating_sub(1);
                    }
                }
                EventKind::ResumeExec { seq } => {
                    self.execs += 1;
                    if seq != 0 {
                        self.seqs.entry(seq).or_default().execs += 1;
                    }
                }
                EventKind::DequeAlloc { live: l } => {
                    let w = ev.worker as usize;
                    if w < self.live.len() {
                        let expect = self.live[w].map_or(1, |cur| cur + 1);
                        if l as u64 != expect {
                            self.violate(format!(
                                "worker {w}: deque alloc jumped live count to {l} (expected {expect})"
                            ));
                        }
                        self.live[w] = Some(l as u64);
                        self.high[w] = self.high[w].max(l as u64);
                    }
                }
                EventKind::DequeRelease { live: l } => {
                    let w = ev.worker as usize;
                    if w < self.live.len() {
                        match self.live[w] {
                            Some(cur) if cur > 0 && l as u64 == cur - 1 => {
                                self.live[w] = Some(l as u64)
                            }
                            Some(cur) => {
                                self.violate(format!(
                                    "worker {w}: deque release moved live count {cur} → {l} (expected {})",
                                    cur.saturating_sub(1)
                                ));
                                self.live[w] = Some(l as u64);
                            }
                            None => {
                                self.violate(format!(
                                    "worker {w}: deque release before any allocation"
                                ));
                                self.live[w] = Some(l as u64);
                            }
                        }
                    }
                }
                EventKind::IoRegister { token } => {
                    self.io_registered += 1;
                    let rec = self.io.entry(token).or_default();
                    rec.registers += 1;
                    if rec.registers > 1 {
                        let n = self.io[&token].registers;
                        self.violate(format!("io token {token:#x} registered {n} times"));
                    }
                }
                EventKind::IoReady { token } => {
                    self.io_ready += 1;
                    let rec = self.io.entry(token).or_default();
                    rec.readies += 1;
                    if rec.readies + rec.deregisters > 1 {
                        let (r, d) = (rec.readies, rec.deregisters);
                        self.violate(format!(
                            "io token {token:#x} resolved {} times ({r} ready, {d} deregister)",
                            r + d,
                        ));
                    }
                }
                EventKind::IoDeregister { token } => {
                    self.io_deregistered += 1;
                    let rec = self.io.entry(token).or_default();
                    rec.deregisters += 1;
                    if rec.readies + rec.deregisters > 1 {
                        let (r, d) = (rec.readies, rec.deregisters);
                        self.violate(format!(
                            "io token {token:#x} resolved {} times ({r} ready, {d} deregister)",
                            r + d,
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    /// Accounts events lost before they could be observed (ring overflow
    /// reported by [`TraceBatch::dropped`](crate::trace::TraceBatch) or a
    /// [`Trace`]'s `dropped`). Any loss makes the final report
    /// inconclusive: absence of a paired event proves nothing.
    pub fn observe_dropped(&mut self, dropped: u64) {
        self.dropped += dropped;
    }

    /// Violations flagged so far by the monotone streaming checks. The
    /// final [`report`](Self::report) may add order-sensitive ones on top.
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// Events known lost so far (cumulative [`observe_dropped`](Self::observe_dropped)).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Evaluates the order-sensitive checks over everything observed so
    /// far and returns the full report. Non-consuming: a live auditor can
    /// report mid-run and keep observing.
    pub fn report(&self) -> AuditReport {
        let mut violation_count = self.violation_count;
        let mut violations = self.violations.clone();
        let mut violate = |msg: String| {
            violation_count += 1;
            if violations.len() < MAX_VIOLATION_MESSAGES {
                violations.push(msg);
            }
        };

        // Deferred pairing checks, in sorted key order so reports are
        // reproducible (HashMap iteration is not).
        let mut seq_keys: Vec<u64> = self.seqs.keys().copied().collect();
        seq_keys.sort_unstable();
        let mut unresolved = 0u64;
        for seq in seq_keys {
            let rec = self.seqs[&seq];
            if rec.readies > 0 && rec.suspends == 0 {
                violate(format!(
                    "resume for seq {seq:#x} with no matching suspension"
                ));
            }
            if rec.execs > rec.readies {
                violate(format!(
                    "seq {seq:#x} executed {} times but made ready only {}",
                    rec.execs, rec.readies
                ));
            }
            if rec.suspends > 0 && rec.readies == 0 {
                unresolved += 1;
            }
        }

        let mut io_keys: Vec<u64> = self.io.keys().copied().collect();
        io_keys.sort_unstable();
        let mut io_unresolved = 0u64;
        for token in io_keys {
            let rec = self.io[&token];
            if rec.registers == 0 && rec.readies > 0 {
                violate(format!(
                    "io readiness for token {token:#x} with no registration"
                ));
            }
            if rec.registers == 0 && rec.deregisters > 0 {
                violate(format!(
                    "io deregister for token {token:#x} with no registration"
                ));
            }
            if rec.registers > 0 && rec.readies + rec.deregisters == 0 {
                io_unresolved += 1;
            }
        }

        // Lemma 7: at most U + 1 live deques per worker.
        for (w, &hw) in self.high.iter().enumerate() {
            if hw > self.max_inflight + 1 {
                violate(format!(
                    "worker {w}: live-deque high-water {hw} exceeds Lemma 7 bound U+1 = {}",
                    self.max_inflight + 1
                ));
            }
        }

        AuditReport {
            suspensions: self.suspensions,
            readies: self.readies,
            execs: self.execs,
            unresolved,
            max_inflight: self.max_inflight,
            deque_high_water: self.high.clone(),
            io_registered: self.io_registered,
            io_ready: self.io_ready,
            io_deregistered: self.io_deregistered,
            io_unresolved,
            violation_count,
            violations,
            inconclusive: self.dropped > 0,
        }
    }
}

/// Replays `trace` and checks the scheduler's invariants:
///
/// 1. **Pairing** — every `seq` tag is suspended at most once, made ready
///    at most once, never ready without a suspension, and never executed
///    more often than it was made ready. (An exec count *below* the ready
///    count is legal: a resumed task that completed or panicked before its
///    re-poll never executes.)
/// 2. **Deque balance** — each worker's `DequeAlloc`/`DequeRelease` live
///    counts form a walk by ±1 that never goes negative: no double-free,
///    no leaked allocation slot.
/// 3. **Lemma 7** — every worker's live-deque high-water mark is at most
///    `U + 1`, where `U` is the maximum number of simultaneously in-flight
///    suspensions observed in the trace.
/// 4. **I/O wait pairing** — every reactor wait token is registered
///    exactly once and resolved at most once, by *either* an `IoReady`
///    (kernel readiness consumed) *or* an `IoDeregister` (cancel, timeout
///    or shutdown drain) — never both, never without a registration.
///
/// Works on any [`Trace`]; quiescent shutdown traces give the strongest
/// verdict. A trace with dropped events yields `inconclusive`.
pub fn audit(trace: &Trace) -> AuditReport {
    let mut state = AuditState::new(trace.workers);
    state.observe(&trace.events);
    state.observe_dropped(trace.dropped);
    state.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SuspendKind, TraceEvent};

    #[test]
    fn decision_stream_is_pure_and_separated() {
        for site in FaultSite::ALL {
            for k in 0..64 {
                assert_eq!(
                    decision_word(42, site, k),
                    decision_word(42, site, k),
                    "pure function"
                );
            }
        }
        // Different seeds and different sites give different streams.
        assert_ne!(
            decision_word(1, FaultSite::StealFail, 0),
            decision_word(2, FaultSite::StealFail, 0)
        );
        assert_ne!(
            decision_word(1, FaultSite::StealFail, 0),
            decision_word(1, FaultSite::ResumeDelay, 0)
        );
    }

    #[test]
    fn rates_hit_roughly_proportionally() {
        let plan = FaultPlan::new(7).steal_fail(250_000);
        let n = 100_000u64;
        let hits = (0..n)
            .filter(|&k| plan.fires(FaultSite::StealFail, k))
            .count() as f64;
        let frac = hits / n as f64;
        assert!(
            (frac - 0.25).abs() < 0.01,
            "250k ppm should fire ~25% of visits, got {frac}"
        );
        // Rate 0 never fires; rate 1M always fires.
        let never = FaultPlan::new(7);
        assert!((0..1000).all(|k| !never.fires(FaultSite::StealFail, k)));
        let always = FaultPlan::new(7).steal_fail(1_000_000);
        assert!((0..1000).all(|k| always.fires(FaultSite::StealFail, k)));
    }

    #[test]
    fn digest_depends_on_seed_and_rates() {
        let a = FaultPlan::chaos(1).schedule_digest(512);
        assert_eq!(a, FaultPlan::chaos(1).schedule_digest(512), "reproducible");
        assert_ne!(a, FaultPlan::chaos(2).schedule_digest(512), "seed matters");
        assert_ne!(
            a,
            FaultPlan::chaos(1).steal_fail(1).schedule_digest(512),
            "rates matter"
        );
    }

    #[test]
    fn plan_validation_rejects_over_unit_rates() {
        assert!(FaultPlan::chaos(0).validate().is_ok());
        let bad = FaultPlan::new(0).spurious_wake(1_000_001);
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::FaultRateOutOfRange {
                site: FaultSite::SpuriousWake,
                ppm: 1_000_001
            })
        ));
    }

    #[test]
    fn injector_counts_and_worker_panic_fires_once() {
        let inj = FaultInjector::new(
            FaultPlan::new(3)
                .steal_fail(1_000_000)
                .worker_panic_after(4),
        );
        assert!(inj.steal_fail() && inj.steal_fail());
        assert_eq!(inj.injected_total(), 2);
        let fired: Vec<bool> = (0..8).map(|_| inj.worker_loop_should_panic()).collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 1);
        assert!(fired[3], "fires exactly at the threshold iteration");
    }

    fn ev(ts: u64, worker: u32, kind: EventKind) -> TraceEvent {
        TraceEvent { ts, worker, kind }
    }

    fn suspend(ts: u64, worker: u32, seq: u64) -> TraceEvent {
        ev(
            ts,
            worker,
            EventKind::Suspend {
                deque: 0,
                kind: SuspendKind::Timer,
                seq,
            },
        )
    }

    fn ready(ts: u64, worker: u32, seq: u64) -> TraceEvent {
        ev(
            ts,
            worker,
            EventKind::ResumeReady {
                seq,
                enabled_at: ts,
            },
        )
    }

    fn trace_of(events: Vec<TraceEvent>, workers: usize) -> Trace {
        Trace {
            events,
            dropped: 0,
            workers,
        }
    }

    #[test]
    fn audit_passes_clean_lifecycle() {
        let t = trace_of(
            vec![
                ev(1, 0, EventKind::DequeAlloc { live: 1 }),
                suspend(2, 0, 9),
                ready(3, 0, 9),
                ev(4, 0, EventKind::ResumeExec { seq: 9 }),
                ev(5, 0, EventKind::DequeRelease { live: 0 }),
            ],
            1,
        );
        let r = audit(&t);
        assert!(r.passed(), "{r}");
        assert_eq!(
            (r.suspensions, r.readies, r.execs, r.unresolved),
            (1, 1, 1, 0)
        );
        assert_eq!(r.max_inflight, 1);
        assert_eq!(r.deque_high_water, vec![1]);
    }

    #[test]
    fn audit_flags_double_resume_and_orphan() {
        let t = trace_of(
            vec![
                suspend(1, 0, 5),
                ready(2, 0, 5),
                ready(3, 0, 5),
                ready(4, 0, 6),
            ],
            1,
        );
        let r = audit(&t);
        assert!(!r.passed());
        assert_eq!(r.violation_count, 2, "{r}");
    }

    #[test]
    fn audit_flags_deque_imbalance_and_lemma7() {
        // live jumps 1 → 3 (skipped alloc) and exceeds U+1 (no suspensions
        // at all, so the bound is 1).
        let t = trace_of(
            vec![
                ev(1, 0, EventKind::DequeAlloc { live: 1 }),
                ev(2, 0, EventKind::DequeAlloc { live: 3 }),
            ],
            1,
        );
        let r = audit(&t);
        assert!(!r.passed());
        assert!(r.violations.iter().any(|v| v.contains("jumped")), "{r}");
        assert!(r.violations.iter().any(|v| v.contains("Lemma 7")), "{r}");
    }

    #[test]
    fn audit_marks_dropped_traces_inconclusive() {
        let mut t = trace_of(vec![suspend(1, 0, 5), ready(2, 0, 5)], 1);
        t.dropped = 3;
        let r = audit(&t);
        assert!(!r.passed());
        assert!(r.inconclusive);
        assert_eq!(r.violation_count, 0);
    }

    #[test]
    fn audit_io_pairing_pass_and_fail() {
        // Clean: one wait resolved by readiness, one by deregistration,
        // one still in flight (unresolved, not a violation).
        let t = trace_of(
            vec![
                ev(1, 0, EventKind::IoRegister { token: 1 }),
                ev(2, u32::MAX, EventKind::IoReady { token: 1 }),
                ev(3, 0, EventKind::IoRegister { token: 2 }),
                ev(4, 0, EventKind::IoDeregister { token: 2 }),
                ev(5, 0, EventKind::IoRegister { token: 3 }),
            ],
            1,
        );
        let r = audit(&t);
        assert!(r.passed(), "{r}");
        assert_eq!(
            (
                r.io_registered,
                r.io_ready,
                r.io_deregistered,
                r.io_unresolved
            ),
            (3, 1, 1, 1)
        );
        assert!(format!("{r}").contains("io:"));

        // Double resolution (ready then deregister) and an orphan ready.
        let t = trace_of(
            vec![
                ev(1, 0, EventKind::IoRegister { token: 7 }),
                ev(2, u32::MAX, EventKind::IoReady { token: 7 }),
                ev(3, 0, EventKind::IoDeregister { token: 7 }),
                ev(4, u32::MAX, EventKind::IoReady { token: 8 }),
            ],
            1,
        );
        let r = audit(&t);
        assert!(!r.passed());
        assert_eq!(r.violation_count, 2, "{r}");

        // Double registration of one token.
        let t = trace_of(
            vec![
                ev(1, 0, EventKind::IoRegister { token: 9 }),
                ev(2, 0, EventKind::IoRegister { token: 9 }),
            ],
            1,
        );
        assert!(!audit(&t).passed());
    }

    #[test]
    fn dropped_readiness_site_rolls_and_digests() {
        let inj = FaultInjector::new(FaultPlan::new(5).dropped_readiness(1_000_000));
        assert!(inj.dropped_readiness());
        assert_eq!(inj.injected_total(), 1);
        let off = FaultInjector::new(FaultPlan::new(5));
        assert!(!off.dropped_readiness());
        // The new site participates in the digest.
        assert_ne!(
            FaultPlan::new(5).schedule_digest(128),
            FaultPlan::new(5)
                .dropped_readiness(500_000)
                .schedule_digest(128),
        );
    }

    #[test]
    fn stale_live_index_site_rolls_and_digests() {
        let inj = FaultInjector::new(FaultPlan::new(5).stale_live_index(1_000_000));
        assert!(inj.stale_live_index());
        assert_eq!(inj.injected_total(), 1);
        let off = FaultInjector::new(FaultPlan::new(5));
        assert!(!off.stale_live_index());
        // The new site participates in the digest.
        assert_ne!(
            FaultPlan::new(5).schedule_digest(128),
            FaultPlan::new(5)
                .stale_live_index(500_000)
                .schedule_digest(128),
        );
    }

    #[test]
    fn affinity_stale_site_rolls_and_digests() {
        let inj = FaultInjector::new(FaultPlan::new(5).affinity_stale(1_000_000));
        assert!(inj.affinity_stale());
        assert_eq!(inj.injected_total(), 1);
        let off = FaultInjector::new(FaultPlan::new(5));
        assert!(!off.affinity_stale());
        // The new site participates in the digest.
        assert_ne!(
            FaultPlan::new(5).schedule_digest(128),
            FaultPlan::new(5)
                .affinity_stale(500_000)
                .schedule_digest(128),
        );
    }

    #[test]
    fn audit_counts_unresolved_without_violating() {
        let t = trace_of(vec![suspend(1, 0, 5), suspend(2, 0, 6), ready(3, 0, 5)], 1);
        let r = audit(&t);
        assert!(r.passed(), "in-flight suspensions are not violations: {r}");
        assert_eq!(r.unresolved, 1);
        assert_eq!(r.max_inflight, 2);
    }

    #[test]
    fn audit_state_tolerates_cross_batch_reorder() {
        // A live reader polling ring B before ring A can observe a
        // ResumeReady in an earlier batch than its causally earlier
        // Suspend. The incremental auditor must neither flag it nor let
        // the transient orphan corrupt the in-flight high-water.
        let mut st = AuditState::new(2);
        st.observe(&[ready(10, 1, 5)]);
        st.observe(&[suspend(2, 0, 5)]);
        let r = st.report();
        assert!(r.passed(), "{r}");
        assert_eq!((r.suspensions, r.readies, r.unresolved), (1, 1, 0));
        assert_eq!(r.max_inflight, 0, "settled pair never counted in flight");
    }

    #[test]
    fn audit_state_batch_split_matches_single_shot() {
        let events = vec![
            ev(1, 0, EventKind::DequeAlloc { live: 1 }),
            suspend(2, 0, 9),
            suspend(3, 0, 11),
            ready(4, 0, 9),
            ev(5, 0, EventKind::ResumeExec { seq: 9 }),
            ready(6, 0, 11),
            ev(7, 0, EventKind::ResumeExec { seq: 11 }),
            ev(8, 0, EventKind::DequeRelease { live: 0 }),
            ev(9, 0, EventKind::IoRegister { token: 3 }),
            ev(10, u32::MAX, EventKind::IoReady { token: 3 }),
        ];
        let single = audit(&trace_of(events.clone(), 1));
        for split in 1..events.len() {
            let mut st = AuditState::new(1);
            st.observe(&events[..split]);
            st.observe(&events[split..]);
            let r = st.report();
            assert_eq!(r.passed(), single.passed(), "split at {split}: {r}");
            assert_eq!(r.violation_count, single.violation_count);
            assert_eq!(r.suspensions, single.suspensions);
            assert_eq!(r.max_inflight, single.max_inflight);
            assert_eq!(r.deque_high_water, single.deque_high_water);
        }
    }

    #[test]
    fn audit_state_streams_monotone_violations_before_report() {
        let mut st = AuditState::new(1);
        st.observe(&[suspend(1, 0, 5), ready(2, 0, 5)]);
        assert_eq!(st.violation_count(), 0);
        st.observe(&[ready(3, 0, 5)]);
        assert_eq!(st.violation_count(), 1, "duplicate ready flagged live");
        // Order-sensitive orphan only appears in the report.
        st.observe(&[ready(4, 0, 77)]);
        assert_eq!(st.violation_count(), 1);
        let r = st.report();
        assert_eq!(r.violation_count, 2, "{r}");
        assert!(!r.passed());
    }

    #[test]
    fn audit_state_dropped_makes_inconclusive() {
        let mut st = AuditState::new(1);
        st.observe(&[suspend(1, 0, 5), ready(2, 0, 5)]);
        assert!(st.report().passed());
        st.observe_dropped(2);
        assert_eq!(st.dropped(), 2);
        let r = st.report();
        assert!(r.inconclusive && !r.passed());
    }
}
