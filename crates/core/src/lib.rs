//! Latency-hiding work-stealing runtime.
//!
//! The primary contribution of *Muller & Acar, SPAA 2016*, as a real
//! multithreaded executor: user-level tasks (futures) are scheduled by work
//! stealing where each worker owns **many deques**, one active at a time. A
//! task that performs a latency-incurring operation ([`simulate_latency`],
//! [`RemoteService`]) *suspends* — its worker switches to other work
//! instead of blocking — and is reinjected in parallel with its batch when
//! the latency expires. On computations with no latency the runtime
//! behaves exactly like standard work stealing (one deque per worker).
//!
//! The paper's experimental baseline is one config knob away:
//! [`LatencyMode::Block`] makes latency operations block the worker thread,
//! turning the runtime into a conventional work stealer.
//!
//! ## Quickstart
//!
//! ```
//! use lhws_core::{Runtime, fork2, simulate_latency};
//! use std::time::Duration;
//!
//! let rt = Runtime::builder().workers(2).build().unwrap();
//! let sum = rt.block_on(async {
//!     let (a, b) = fork2(
//!         async { 20u32 },
//!         async {
//!             simulate_latency(Duration::from_millis(2)).await; // suspends
//!             22u32
//!         },
//!     )
//!     .await;
//!     a + b
//! });
//! assert_eq!(sum, 42);
//! ```
//!
//! ## Observability
//!
//! Turn on tracing with [`RuntimeBuilder::trace_capacity`]; every scheduler
//! decision (steals, suspensions, resumes, deque switches, parks) is then
//! recorded into per-worker lock-free rings. [`Runtime::trace_export`]
//! writes a Chrome-trace/Perfetto JSON timeline, and
//! [`Trace::stats`](trace::Trace::stats) derives suspension-latency
//! histograms, steal success rates and per-worker live-deque high-water
//! marks (the quantity Lemma 7 bounds by `U + 1`).
//!
//! ## Chaos testing
//!
//! [`RuntimeBuilder::fault_plan`] arms deterministic, seeded fault
//! injection at the scheduler's decision points — delayed and reordered
//! resume deliveries, forced steal failures, spurious wakes, dropped
//! unparks, injected task and worker panics — and
//! [`Trace::audit`](trace::Trace::audit) checks the scheduler's
//! invariants over the recorded trace afterwards. See [`fault`].

#![warn(missing_docs)]

pub mod channel;
mod config;
pub mod driver;
pub mod external;
pub mod fault;
mod join;
mod latency;
mod metrics;
pub mod obs;
mod pfor;
mod runtime;
mod sleep;
mod steal;
mod task;
mod timer;
pub mod trace;
mod worker;

pub use config::{Config, ConfigError, LatencyMode, RuntimeBuilder, StealPolicy, TimerKind};
pub use driver::{Driver, DriverHooks, DriverReport, IoTraceEvent};
pub use external::{
    external_op, Canceled, Completer, DeadlineExt, DeadlineOp, ExternalOp, OpError,
};
pub use fault::{audit, AuditReport, AuditState, FaultPlan, FaultSite};
pub use join::JoinHandle;
pub use latency::{latency_until, simulate_latency, LatencyFuture, LatencyProfile, RemoteService};
pub use metrics::{Metrics, MetricsSnapshot};
pub use obs::{encode_prometheus, LiveAudit, Observer};
pub use runtime::{Runtime, RuntimeError, ShutdownReport};
pub use trace::{LiveStats, Trace, TraceBatch, TraceReader, TraceStats};

use std::future::Future;

/// Spawns a task onto the current runtime's active deque (the fork of a
/// fork-join). Must be called from inside a task (`Runtime::block_on` /
/// `Runtime::spawn`).
///
/// # Panics
/// Panics when called off a runtime worker thread.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let rt = worker_runtime_or_panic();
    runtime_spawn(&rt, fut)
}

fn worker_runtime_or_panic() -> std::sync::Arc<runtime::RtInner> {
    worker_current().expect(
        "lhws::spawn / lhws::fork2 require a worker context: \
         call them inside Runtime::block_on or Runtime::spawn",
    )
}

fn worker_current() -> Option<std::sync::Arc<runtime::RtInner>> {
    worker::current_runtime()
}

fn runtime_spawn<F>(rt: &std::sync::Arc<runtime::RtInner>, fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    runtime::spawn_on(rt, fut)
}

/// Binary fork-join: spawns `right` as a stealable child task, runs `left`
/// inline as the continuation (the left child keeps the higher priority,
/// as in the paper's edge ordering), then joins.
///
/// Mirrors the paper's `fork2(e1, e2)` (Figures 8 and 10). A panic in
/// either branch propagates at the join point.
pub async fn fork2<A, B>(left: A, right: B) -> (A::Output, B::Output)
where
    A: Future,
    B: Future + Send + 'static,
    B::Output: Send + 'static,
{
    let handle = spawn(right);
    let la = left.await;
    let rb = handle.await;
    (la, rb)
}

/// Recursively fork-joins `f` over `lo..hi`, two halves at a time — the
/// skeleton of the paper's `distMapReduce` (Figure 8). Results are combined
/// with `g` (associative, with identity `id` for the empty range).
pub fn par_map_reduce<T, Ff, Fut, G>(
    lo: u64,
    hi: u64,
    f: Ff,
    g: G,
    id: T,
) -> std::pin::Pin<Box<dyn Future<Output = T> + Send>>
where
    T: Send + 'static,
    Ff: Fn(u64) -> Fut + Send + Sync + Clone + 'static,
    Fut: Future<Output = T> + Send + 'static,
    G: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    Box::pin(async move {
        let n = hi.saturating_sub(lo);
        match n {
            0 => id,
            1 => f(lo).await,
            _ => {
                let piv = lo + n / 2;
                let (r1, r2) = fork2(
                    par_map_reduce(lo, piv, f.clone(), g.clone(), id),
                    // The identity for the right half is never used when
                    // the range is non-empty; synthesize via g on award?
                    // No: pass through recursion only for empty ranges,
                    // which cannot occur here (piv < hi).
                    par_map_reduce_nonempty(piv, hi, f, g.clone()),
                )
                .await;
                g(r1, r2)
            }
        }
    })
}

fn par_map_reduce_nonempty<T, Ff, Fut, G>(
    lo: u64,
    hi: u64,
    f: Ff,
    g: G,
) -> std::pin::Pin<Box<dyn Future<Output = T> + Send>>
where
    T: Send + 'static,
    Ff: Fn(u64) -> Fut + Send + Sync + Clone + 'static,
    Fut: Future<Output = T> + Send + 'static,
    G: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    debug_assert!(lo < hi);
    Box::pin(async move {
        if hi - lo == 1 {
            f(lo).await
        } else {
            let piv = lo + (hi - lo) / 2;
            let (r1, r2) = fork2(
                par_map_reduce_nonempty(lo, piv, f.clone(), g.clone()),
                par_map_reduce_nonempty(piv, hi, f, g.clone()),
            )
            .await;
            g(r1, r2)
        }
    })
}

/// Awaits every handle in order, collecting the results. The tasks were
/// already spawned, so they run in parallel; this only sequences the joins.
pub async fn join_all<T>(handles: impl IntoIterator<Item = JoinHandle<T>>) -> Vec<T> {
    let mut out = Vec::new();
    for h in handles {
        out.push(h.await);
    }
    out
}

/// Cooperatively yields the current task once: it is requeued at the
/// bottom of the active deque and re-polled after anything enabled in the
/// meantime.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        if self.yielded {
            std::task::Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            std::task::Poll::Pending
        }
    }
}
