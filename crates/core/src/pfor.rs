//! Pfor tasks: parallel reinjection of resumed vertices.
//!
//! When several suspended tasks belonging to one deque resume together, the
//! owner cannot afford to re-schedule them one by one (the paper: "since
//! there can be arbitrarily many resumed vertices at a check point, a
//! worker cannot handle them by itself without harming performance").
//! Instead, `addResumedVertices` pushes a single *pfor* task holding the
//! whole batch. When that task runs — on the owner or on a thief — it
//! splits the batch in half, re-pushing one half as a fresh stealable pfor
//! task, until batches reach the configured grain and the resumed tasks
//! themselves are scheduled. The unfolding forms a balanced binary tree
//! with logarithmic span and at most one internal node per leaf, exactly
//! the pfor tree of the paper's analysis (§4.1).

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use crate::runtime::RtInner;
use crate::task::{Task, TaskRef};
use crate::worker;

/// Future body of a pfor task.
struct PforFuture {
    tasks: Vec<TaskRef>,
    grain: usize,
}

impl Future for PforFuture {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let grain = self.grain.max(1);
        let mut tasks = std::mem::take(&mut self.tasks);
        // Split off stealable halves until the remainder fits the grain.
        while tasks.len() > grain {
            let right = tasks.split_off(tasks.len() / 2);
            let rt = worker::current_runtime().expect("pfor tasks only run on worker threads");
            let sub = new_pfor_task(&rt, right);
            worker::push_queued_task(sub);
        }
        worker::schedule_resumed_batch(tasks);
        Poll::Ready(())
    }
}

/// Creates a QUEUED pfor task over `tasks` (ready to be pushed to a deque).
pub(crate) fn new_pfor_task(rt: &Arc<RtInner>, tasks: Vec<TaskRef>) -> TaskRef {
    debug_assert!(!tasks.is_empty());
    rt.counters.bump(&rt.counters.tasks_spawned);
    let fut = PforFuture {
        tasks,
        grain: rt.config.pfor_grain,
    };
    Task::new_queued(Arc::downgrade(rt), Box::pin(fut))
}
