//! Per-event scheduler tracing: the observability layer for the paper's
//! schedule-shaped claims.
//!
//! Every quantity the paper reasons about — steal attempts `R`, suspension
//! width `U`, the ≤ `U + 1` live deques per worker of Lemma 7, the delay
//! between a heavy edge becoming *enabled* and its vertex being *ready*
//! and then *executed* — is a property of the schedule, not of any
//! aggregate counter. This module records the schedule itself:
//!
//! * Each worker owns a **lock-free, fixed-capacity SPSC ring**
//!   (cache-padded): the worker is the only producer, the
//!   collector ([`Trace`] snapshots) the only consumer. Recording an
//!   event is a clock read plus two relaxed-ish atomics and one slot
//!   write — never a lock, never an allocation.
//! * Events produced off the worker threads (injections, resume-batch
//!   deliveries from timer threads, unparks from arbitrary producers) go
//!   to a bounded mutex-protected side buffer; those paths already take
//!   locks, so the mutex adds nothing.
//! * When the ring is full the **newest event is dropped** and counted
//!   ([`Trace::dropped`]); existing events are never overwritten, so the
//!   recorded prefix of each worker's history is always contiguous.
//! * Tracing is enabled by [`crate::Config::trace_capacity`] (or
//!   `RuntimeBuilder::trace_capacity`); when disabled (the default) every record
//!   site is one branch on an `Option` that is always `None` — the hot
//!   path cost is indistinguishable from the untraced build.
//!
//! Suspension lifecycle events are linked by a per-registration **`seq`**
//! tag so the collector can reconstruct per-suspension latency:
//!
//! ```text
//! Suspend{seq}          worker registers the suspension   (suspend time)
//!   └─ Resume{batch}    timer/completer delivers          (enable time)
//!       └─ ResumeReady{seq, enabled_at}  owner drains it  (ready time)
//!           └─ ResumeExec{seq}           task re-polled   (executed time)
//! ```
//!
//! [`Trace::stats`] derives the paper-facing statistics (steal success
//! rate, enable→ready→executed histograms, per-worker deque high-water
//! marks against Lemma 7) and [`Trace::export_chrome`] writes the raw
//! events as Chrome-trace/Perfetto JSON.

mod export;
mod stats;

pub use stats::{LatencyHistogram, TraceStats};

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::CachePadded;

/// Sentinel worker/deque index for "not applicable / off-runtime".
pub const NONE_ID: u32 = u32::MAX;

/// Outcome of one steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealOutcome {
    /// The attempt returned a task.
    Success,
    /// The victim deque was empty (or freed, or not yet selectable).
    Empty,
    /// The pop-top raced with another thief/the owner and the bounded
    /// retry budget ran out.
    LostRace,
    /// The victim deque was dead: freed into its owner's recycling pool
    /// and not yet reused. Only the slot-array baseline sampler
    /// (`Registry::random_id`) produces these in steady state; the
    /// live-set index drives them to ~0.
    Dead,
}

/// What kind of latency-incurring operation a suspension came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendKind {
    /// A timer-backed latency ([`crate::simulate_latency`]).
    Timer,
    /// An externally completed operation ([`crate::external_op`],
    /// channel receives).
    External,
}

/// One scheduler event. Field conventions:
///
/// * deque indices named `deque` are **owner-local** (the worker's own
///   numbering, the same space Lemma 7's `U + 1` bound lives in);
/// * `victim_deque` in [`EventKind::Steal`] is the **global registry id**
///   ([`lhws_deque::DequeId`]), since thieves address deques globally;
/// * [`NONE_ID`] marks "no such index" (e.g. a steal attempt drawn from
///   an empty registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// One steal attempt (exactly one per `steals_attempted` bump).
    Steal {
        /// Global registry id of the victim deque, or [`NONE_ID`].
        victim_deque: u32,
        /// Worker owning the victim deque, or [`NONE_ID`].
        victim_worker: u32,
        /// How the attempt ended.
        outcome: StealOutcome,
    },
    /// A steal attempt claimed a multi-task batch (steal-half with
    /// [`crate::Config::steal_batch_limit`] > 1). Emitted **in addition
    /// to** the per-attempt [`EventKind::Steal`] event, so `Steal`
    /// events still count attempts exactly; only batches of two or more
    /// tasks are recorded (a single-task claim is just a steal).
    StealBatch {
        /// Global registry id of the victim deque.
        victim: u32,
        /// Number of tasks claimed in the batch (≥ 2).
        n: u32,
    },
    /// A task registered a suspension against its active deque.
    Suspend {
        /// Owner-local index of the deque the task suspended on.
        deque: u32,
        /// Timer- or externally-completed suspension.
        kind: SuspendKind,
        /// Per-registration tag linking the later `ResumeReady` /
        /// `ResumeExec` events.
        seq: u64,
    },
    /// A batch of resume events was delivered to a worker inbox (the
    /// timestamp is the **enable** time of every event in the batch).
    Resume {
        /// Number of events in the delivered batch.
        batch_len: u32,
        /// Timer-wheel tick the batch expired on (0 for heap-timer and
        /// external deliveries).
        tick: u64,
    },
    /// The owning worker drained one resume event into its deque — the
    /// suspension's vertex is now **ready**.
    ResumeReady {
        /// Tag of the matching `Suspend`.
        seq: u64,
        /// Enable timestamp stamped at delivery (nanoseconds on the
        /// trace clock), for the enable→ready latency.
        enabled_at: u64,
    },
    /// A resumed task reached its next poll — the vertex **executed**.
    ResumeExec {
        /// Tag of the matching `Suspend`.
        seq: u64,
    },
    /// An idle worker switched to one of its ready deques.
    DequeSwitch {
        /// Owner-local index of the deque switched to.
        deque: u32,
    },
    /// The worker brought a deque live (fresh or recycled).
    DequeAlloc {
        /// Live deques owned by this worker **after** the allocation —
        /// running maximum is the Lemma 7 high-water mark.
        live: u32,
    },
    /// The worker freed an empty, suspension-less deque.
    DequeRelease {
        /// Live deques owned by this worker after the release.
        live: u32,
    },
    /// Releasing a deque compacted a live-set registry shard (its dense
    /// id list shrank after mass releases).
    RegistryCompact {
        /// Global registry id of the deque whose release triggered the
        /// compaction.
        deque: u32,
    },
    /// The worker found no work anywhere and parked.
    Park,
    /// A producer unparked a worker (at most one per published event).
    Unpark {
        /// The worker that was woken.
        worker: u32,
    },
    /// A task entered the global injector from outside any worker.
    Inject,
    /// An I/O readiness wait was filed with a reactor driver (the socket
    /// was not ready and the task is about to suspend on it).
    IoRegister {
        /// Driver-unique wait token linking the later `IoReady` or
        /// `IoDeregister`.
        token: u64,
    },
    /// The reactor consumed a kernel readiness event for a wait and fired
    /// its completer (exactly one of `IoReady`/`IoDeregister` per token).
    IoReady {
        /// Token of the matching `IoRegister`.
        token: u64,
    },
    /// A wait was withdrawn without readiness: canceled by drop, timeout,
    /// or the shutdown drain of the registration table.
    IoDeregister {
        /// Token of the matching `IoRegister`.
        token: u64,
    },
}

/// A timestamped event recorded by worker `worker` (or, for side-buffer
/// events, *concerning* that worker; [`NONE_ID`] when unattributable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the runtime's trace epoch.
    pub ts: u64,
    /// Worker index (ring index for worker-recorded events).
    pub worker: u32,
    /// The event.
    pub kind: EventKind,
}

/// Fixed-capacity SPSC ring. The producing worker writes `tail`, the
/// (mutex-serialized) collector advances `head`. Full ring ⇒ the new
/// event is dropped and counted, never overwriting history.
struct Ring {
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// Safety: `slots` is only written by the single producer (guarded by the
// head/tail protocol) and read by the single consumer; `TraceEvent` is
// `Copy` so reads never observe a partially dropped value.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn with_capacity(capacity: usize) -> Ring {
        let capacity = capacity.max(2).next_power_of_two();
        Ring {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side: append or drop-and-count.
    #[inline]
    fn push(&self, ev: TraceEvent) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { (*self.slots[tail & self.mask].get()).write(ev) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side (callers hold the collector lock).
    fn pop(&self) -> Option<TraceEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let ev = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(ev)
    }
}

/// The runtime's event recorder: one ring per worker plus the shared side
/// buffer. Lives behind `Option<Arc<_>>` in the runtime — `None` is the
/// entire cost of disabled tracing.
pub(crate) struct Tracer {
    rings: Box<[CachePadded<Ring>]>,
    /// Off-worker events (injections, deliveries, unparks).
    shared: Mutex<Vec<TraceEvent>>,
    shared_capacity: usize,
    shared_dropped: AtomicU64,
    /// Serializes collectors so the rings stay single-consumer.
    collect: Mutex<()>,
    epoch: Instant,
}

impl Tracer {
    /// Creates a tracer for `workers` rings of (at least) `capacity`
    /// events each.
    pub fn new(workers: usize, capacity: usize) -> Tracer {
        Tracer {
            rings: (0..workers)
                .map(|_| CachePadded::new(Ring::with_capacity(capacity)))
                .collect(),
            shared: Mutex::new(Vec::new()),
            shared_capacity: capacity.max(2).next_power_of_two(),
            shared_dropped: AtomicU64::new(0),
            collect: Mutex::new(()),
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since the trace epoch.
    #[inline]
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records an event from worker `worker`'s own thread (the SPSC
    /// producer for its ring).
    #[inline]
    pub fn record(&self, worker: usize, kind: EventKind) {
        self.rings[worker].push(TraceEvent {
            ts: self.now(),
            worker: worker as u32,
            kind,
        });
    }

    /// Records an event from an arbitrary thread, attributed to `worker`
    /// (or [`NONE_ID`]). Goes to the mutex-protected side buffer.
    pub fn record_shared(&self, worker: u32, kind: EventKind) {
        let ev = TraceEvent {
            ts: self.now(),
            worker,
            kind,
        };
        let mut buf = self.shared.lock();
        if buf.len() >= self.shared_capacity {
            self.shared_dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(ev);
        }
    }

    /// Drains every ring and the side buffer into a [`Trace`] snapshot,
    /// sorted by timestamp. Events recorded concurrently with the drain
    /// land in the next snapshot.
    pub fn drain(&self) -> Trace {
        let _guard = self.collect.lock();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in self.rings.iter() {
            while let Some(ev) = ring.pop() {
                events.push(ev);
            }
            dropped += ring.dropped.load(Ordering::Relaxed);
        }
        events.append(&mut self.shared.lock());
        dropped += self.shared_dropped.load(Ordering::Relaxed);
        events.sort_by_key(|e| e.ts);
        Trace {
            events,
            dropped,
            workers: self.rings.len(),
        }
    }
}

/// A drained snapshot of the runtime's event history.
///
/// Obtained from [`Runtime::trace_snapshot`](crate::Runtime::trace_snapshot)
/// (point-in-time, racing with the still-running schedule) or from
/// [`Runtime::shutdown`](crate::Runtime::shutdown) (complete and quiescent).
#[derive(Debug, Clone)]
pub struct Trace {
    /// All recorded events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow (raise
    /// [`Config::trace_capacity`](crate::Config::trace_capacity) if
    /// non-zero and completeness matters).
    pub dropped: u64,
    /// Number of worker rings the trace was collected from.
    pub workers: usize,
}

impl Trace {
    /// Derives the paper-facing statistics from the recorded events.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_events(&self.events, self.workers)
    }

    /// Writes the events as Chrome-trace/Perfetto JSON (load via
    /// `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn export_chrome<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        export::write_chrome_trace(self, w)
    }

    /// Runs the invariant auditor over this trace — suspension/resume
    /// pairing, deque alloc/release balance, the Lemma 7 high-water bound.
    /// Convenience for [`crate::fault::audit`].
    pub fn audit(&self) -> crate::fault::AuditReport {
        crate::fault::audit(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts,
            worker: 0,
            kind,
        }
    }

    #[test]
    fn ring_roundtrip_in_order() {
        let r = Ring::with_capacity(8);
        for i in 0..5 {
            r.push(ev(i, EventKind::Park));
        }
        for i in 0..5 {
            assert_eq!(r.pop().unwrap().ts, i);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn ring_drops_newest_when_full() {
        let r = Ring::with_capacity(4); // rounded to 4
        for i in 0..6 {
            r.push(ev(i, EventKind::Park));
        }
        assert_eq!(r.dropped.load(Ordering::Relaxed), 2);
        // The *oldest* events survive.
        let got: Vec<u64> = std::iter::from_fn(|| r.pop()).map(|e| e.ts).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_wraps_after_drain() {
        let r = Ring::with_capacity(4);
        for round in 0..10u64 {
            r.push(ev(round, EventKind::Park));
            assert_eq!(r.pop().unwrap().ts, round);
        }
        assert_eq!(r.dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn ring_spsc_concurrent() {
        let r = std::sync::Arc::new(Ring::with_capacity(1 << 12));
        let n = 100_000u64;
        let producer = {
            let r = r.clone();
            std::thread::spawn(move || {
                for i in 0..n {
                    r.push(ev(i, EventKind::Park));
                }
            })
        };
        let mut last = None;
        let mut got = 0u64;
        while got < n {
            if let Some(e) = r.pop() {
                // Order is preserved even if overflow dropped some.
                if let Some(prev) = last {
                    assert!(e.ts > prev);
                }
                last = Some(e.ts);
                got += 1;
            }
            if got + r.dropped.load(Ordering::Relaxed) >= n && r.pop().is_none() {
                break;
            }
        }
        producer.join().unwrap();
        while r.pop().is_some() {
            got += 1;
        }
        assert_eq!(got + r.dropped.load(Ordering::Relaxed), n);
    }

    #[test]
    fn tracer_drain_merges_and_sorts() {
        let t = Tracer::new(2, 64);
        t.record(1, EventKind::Park);
        t.record(0, EventKind::Park);
        t.record_shared(NONE_ID, EventKind::Inject);
        let trace = t.drain();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.workers, 2);
        assert!(trace.events.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Second drain starts empty.
        assert!(t.drain().events.is_empty());
    }
}
