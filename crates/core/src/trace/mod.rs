//! Per-event scheduler tracing: the observability layer for the paper's
//! schedule-shaped claims.
//!
//! Every quantity the paper reasons about — steal attempts `R`, suspension
//! width `U`, the ≤ `U + 1` live deques per worker of Lemma 7, the delay
//! between a heavy edge becoming *enabled* and its vertex being *ready*
//! and then *executed* — is a property of the schedule, not of any
//! aggregate counter. This module records the schedule itself:
//!
//! * Each worker owns a **lock-free, fixed-capacity SPSC ring**
//!   (cache-padded): the worker is the only producer, the
//!   collector ([`Trace`] snapshots) the only consumer. Recording an
//!   event is a clock read plus two relaxed-ish atomics and one slot
//!   write — never a lock, never an allocation.
//! * Events produced off the worker threads (injections, resume-batch
//!   deliveries from timer threads, unparks from arbitrary producers) go
//!   to a bounded mutex-protected side buffer; those paths already take
//!   locks, so the mutex adds nothing.
//! * When the ring is full the **newest event is dropped** and counted
//!   ([`Trace::dropped`]); existing events are never overwritten, so the
//!   recorded prefix of each worker's history is always contiguous.
//! * Consumption is either **destructive** (the shutdown drain into a
//!   [`Trace`]) or **incremental**: a [`TraceReader`] holds a cursor per
//!   ring and polls non-destructively while producers keep recording
//!   ([`TraceReader::poll_events`]). Slots are reclaimed at the slowest
//!   reader's cursor, so two readers on one ring see every event
//!   independently, and a reader that falls behind a drain (or another
//!   consumer's reclaim) is told exactly how many events it *missed* —
//!   loss is always counted, never silent.
//! * Tracing is enabled by [`crate::Config::trace_capacity`] (or
//!   `RuntimeBuilder::trace_capacity`); when disabled (the default) every record
//!   site is one branch on an `Option` that is always `None` — the hot
//!   path cost is indistinguishable from the untraced build.
//!
//! Suspension lifecycle events are linked by a per-registration **`seq`**
//! tag so the collector can reconstruct per-suspension latency:
//!
//! ```text
//! Suspend{seq}          worker registers the suspension   (suspend time)
//!   └─ Resume{batch}    timer/completer delivers          (enable time)
//!       └─ ResumeReady{seq, enabled_at}  owner drains it  (ready time)
//!           └─ ResumeExec{seq}           task re-polled   (executed time)
//! ```
//!
//! [`Trace::stats`] derives the paper-facing statistics (steal success
//! rate, enable→ready→executed histograms, per-worker deque high-water
//! marks against Lemma 7) and [`Trace::export_chrome`] writes the raw
//! events as Chrome-trace/Perfetto JSON.

mod export;
mod stats;

pub use stats::{LatencyHistogram, LiveStats, TraceStats};

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::CachePadded;

/// Sentinel worker/deque index for "not applicable / off-runtime".
pub const NONE_ID: u32 = u32::MAX;

/// Outcome of one steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealOutcome {
    /// The attempt returned a task.
    Success,
    /// The victim deque was empty (or freed, or not yet selectable).
    Empty,
    /// The pop-top raced with another thief/the owner and the bounded
    /// retry budget ran out.
    LostRace,
    /// The victim deque was dead: freed into its owner's recycling pool
    /// and not yet reused. Only the slot-array baseline sampler
    /// (`Registry::random_id`) produces these in steady state; the
    /// live-set index drives them to ~0.
    Dead,
}

/// What kind of latency-incurring operation a suspension came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendKind {
    /// A timer-backed latency ([`crate::simulate_latency`]).
    Timer,
    /// An externally completed operation ([`crate::external_op`],
    /// channel receives).
    External,
}

/// One scheduler event. Field conventions:
///
/// * deque indices named `deque` are **owner-local** (the worker's own
///   numbering, the same space Lemma 7's `U + 1` bound lives in);
/// * `victim_deque` in [`EventKind::Steal`] is the **global registry id**
///   ([`lhws_deque::DequeId`]), since thieves address deques globally;
/// * [`NONE_ID`] marks "no such index" (e.g. a steal attempt drawn from
///   an empty registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// One steal attempt (exactly one per `steals_attempted` bump).
    Steal {
        /// Global registry id of the victim deque, or [`NONE_ID`].
        victim_deque: u32,
        /// Worker owning the victim deque, or [`NONE_ID`].
        victim_worker: u32,
        /// How the attempt ended.
        outcome: StealOutcome,
    },
    /// A steal attempt claimed a multi-task batch (steal-half with
    /// [`crate::Config::steal_batch_limit`] > 1). Emitted **in addition
    /// to** the per-attempt [`EventKind::Steal`] event, so `Steal`
    /// events still count attempts exactly; only batches of two or more
    /// tasks are recorded (a single-task claim is just a steal).
    StealBatch {
        /// Global registry id of the victim deque.
        victim: u32,
        /// Number of tasks claimed in the batch (≥ 2).
        n: u32,
    },
    /// A task registered a suspension against its active deque.
    Suspend {
        /// Owner-local index of the deque the task suspended on.
        deque: u32,
        /// Timer- or externally-completed suspension.
        kind: SuspendKind,
        /// Per-registration tag linking the later `ResumeReady` /
        /// `ResumeExec` events.
        seq: u64,
    },
    /// A batch of resume events was delivered to a worker inbox (the
    /// timestamp is the **enable** time of every event in the batch).
    Resume {
        /// Number of events in the delivered batch.
        batch_len: u32,
        /// Timer-wheel tick the batch expired on (0 for heap-timer and
        /// external deliveries).
        tick: u64,
    },
    /// The owning worker drained one resume event into its deque — the
    /// suspension's vertex is now **ready**.
    ResumeReady {
        /// Tag of the matching `Suspend`.
        seq: u64,
        /// Enable timestamp stamped at delivery (nanoseconds on the
        /// trace clock), for the enable→ready latency.
        enabled_at: u64,
    },
    /// A resumed task reached its next poll — the vertex **executed**.
    ResumeExec {
        /// Tag of the matching `Suspend`.
        seq: u64,
    },
    /// An idle worker switched to one of its ready deques.
    DequeSwitch {
        /// Owner-local index of the deque switched to.
        deque: u32,
    },
    /// The worker brought a deque live (fresh or recycled).
    DequeAlloc {
        /// Live deques owned by this worker **after** the allocation —
        /// running maximum is the Lemma 7 high-water mark.
        live: u32,
    },
    /// The worker freed an empty, suspension-less deque.
    DequeRelease {
        /// Live deques owned by this worker after the release.
        live: u32,
    },
    /// Releasing a deque compacted a live-set registry shard (its dense
    /// id list shrank after mass releases).
    RegistryCompact {
        /// Global registry id of the deque whose release triggered the
        /// compaction.
        deque: u32,
    },
    /// The worker found no work anywhere and parked.
    Park,
    /// A producer unparked a worker (at most one per published event).
    Unpark {
        /// The worker that was woken.
        worker: u32,
    },
    /// A task entered the global injector from outside any worker.
    Inject,
    /// An I/O readiness wait was filed with a reactor driver (the socket
    /// was not ready and the task is about to suspend on it).
    IoRegister {
        /// Driver-unique wait token linking the later `IoReady` or
        /// `IoDeregister`.
        token: u64,
    },
    /// The reactor consumed a kernel readiness event for a wait and fired
    /// its completer (exactly one of `IoReady`/`IoDeregister` per token).
    IoReady {
        /// Token of the matching `IoRegister`.
        token: u64,
    },
    /// A wait was withdrawn without readiness: canceled by drop, timeout,
    /// or the shutdown drain of the registration table.
    IoDeregister {
        /// Token of the matching `IoRegister`.
        token: u64,
    },
}

/// A timestamped event recorded by worker `worker` (or, for side-buffer
/// events, *concerning* that worker; [`NONE_ID`] when unattributable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the runtime's trace epoch.
    pub ts: u64,
    /// Worker index (ring index for worker-recorded events).
    pub worker: u32,
    /// The event.
    pub kind: EventKind,
}

/// Fixed-capacity SPSC ring. The producing worker writes `tail`, the
/// (mutex-serialized) consumers advance `head`. Full ring ⇒ the new
/// event is dropped and counted, never overwriting history.
///
/// `head` and `tail` are *absolute* monotonically increasing positions
/// (masked into the slot array on access), which is what makes cursor
/// readers possible: a reader remembers the next absolute position it
/// has not yet seen, and `head` is simply the reclaim frontier — the
/// position below which slots may be reused by the producer.
struct Ring {
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// Safety: `slots` is only written by the single producer (guarded by the
// head/tail protocol) and read by the single consumer; `TraceEvent` is
// `Copy` so reads never observe a partially dropped value.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn with_capacity(capacity: usize) -> Ring {
        let capacity = capacity.max(2).next_power_of_two();
        Ring {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side: append or drop-and-count.
    #[inline]
    fn push(&self, ev: TraceEvent) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { (*self.slots[tail & self.mask].get()).write(ev) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side (callers hold the collector lock).
    fn pop(&self) -> Option<TraceEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let ev = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(ev)
    }

    /// Non-destructive read of absolute position `pos`. Caller holds the
    /// collector lock and has checked `head <= pos < tail`: the producer
    /// never rewrites a slot in that range (push refuses when the ring is
    /// full rather than overwrite), and `head` only moves under the same
    /// lock, so the slot is stable for the duration of the read.
    fn read_at(&self, pos: usize) -> TraceEvent {
        unsafe { (*self.slots[pos & self.mask].get()).assume_init_read() }
    }
}

/// Off-worker events with an absolute base index, so cursor readers can
/// address the side buffer the same way they address the rings.
#[derive(Default)]
struct SharedBuf {
    events: VecDeque<TraceEvent>,
    /// Absolute position of `events[0]`: `base` events have already been
    /// reclaimed (drained or passed by every reader).
    base: usize,
}

/// One registered reader's cursor state. Lives inside the `collect`
/// mutex so every consumer — readers and the destructive drain — is
/// serialized and the rings stay single-consumer.
struct ReaderCursors {
    id: u64,
    /// Next absolute position to read, one cursor per worker ring.
    rings: Vec<usize>,
    /// Next absolute side-buffer position to read.
    shared: usize,
    /// Producer-side overflow total already surfaced to this reader
    /// (baseline for per-poll `dropped` deltas).
    dropped_seen: u64,
}

/// The set of registered incremental readers.
#[derive(Default)]
struct ReaderSet {
    readers: Vec<ReaderCursors>,
    next_id: u64,
}

/// The runtime's event recorder: one ring per worker plus the shared side
/// buffer. Lives behind `Option<Arc<_>>` in the runtime — `None` is the
/// entire cost of disabled tracing.
pub(crate) struct Tracer {
    rings: Box<[CachePadded<Ring>]>,
    /// Off-worker events (injections, deliveries, unparks).
    shared: Mutex<SharedBuf>,
    shared_capacity: usize,
    shared_dropped: AtomicU64,
    /// Serializes consumers (readers and the destructive drain) so the
    /// rings stay single-consumer, and registers the readers' cursors.
    collect: Mutex<ReaderSet>,
    epoch: Instant,
}

impl Tracer {
    /// Creates a tracer for `workers` rings of (at least) `capacity`
    /// events each.
    pub fn new(workers: usize, capacity: usize) -> Tracer {
        Tracer {
            rings: (0..workers)
                .map(|_| CachePadded::new(Ring::with_capacity(capacity)))
                .collect(),
            shared: Mutex::new(SharedBuf::default()),
            shared_capacity: capacity.max(2).next_power_of_two(),
            shared_dropped: AtomicU64::new(0),
            collect: Mutex::new(ReaderSet::default()),
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since the trace epoch.
    #[inline]
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records an event from worker `worker`'s own thread (the SPSC
    /// producer for its ring).
    #[inline]
    pub fn record(&self, worker: usize, kind: EventKind) {
        self.rings[worker].push(TraceEvent {
            ts: self.now(),
            worker: worker as u32,
            kind,
        });
    }

    /// Records an event from an arbitrary thread, attributed to `worker`
    /// (or [`NONE_ID`]). Goes to the mutex-protected side buffer.
    pub fn record_shared(&self, worker: u32, kind: EventKind) {
        let ev = TraceEvent {
            ts: self.now(),
            worker,
            kind,
        };
        let mut buf = self.shared.lock();
        if buf.events.len() >= self.shared_capacity {
            self.shared_dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.events.push_back(ev);
        }
    }

    /// Total events lost to producer-side overflow (ring full, side
    /// buffer full) over the tracer's lifetime.
    pub fn dropped_total(&self) -> u64 {
        let mut d = self.shared_dropped.load(Ordering::Relaxed);
        for ring in self.rings.iter() {
            d += ring.dropped.load(Ordering::Relaxed);
        }
        d
    }

    /// Drains every ring and the side buffer into a [`Trace`] snapshot,
    /// sorted by timestamp. Events recorded concurrently with the drain
    /// land in the next snapshot. Destructive: registered readers that
    /// had not yet seen the drained events count them as missed on their
    /// next poll.
    pub fn drain(&self) -> Trace {
        let _guard = self.collect.lock();
        let mut events = Vec::new();
        for ring in self.rings.iter() {
            while let Some(ev) = ring.pop() {
                events.push(ev);
            }
        }
        {
            let mut buf = self.shared.lock();
            let n = buf.events.len();
            events.extend(buf.events.drain(..));
            buf.base += n;
        }
        events.sort_by_key(|e| e.ts);
        Trace {
            events,
            dropped: self.dropped_total(),
            workers: self.rings.len(),
        }
    }

    /// Registers a new incremental reader. Its cursors start at the
    /// current reclaim frontier: everything not yet consumed is visible,
    /// nothing is delivered twice.
    pub fn new_reader(self: &Arc<Self>) -> TraceReader {
        let mut set = self.collect.lock();
        let id = set.next_id;
        set.next_id += 1;
        set.readers.push(ReaderCursors {
            id,
            rings: self
                .rings
                .iter()
                .map(|r| r.head.load(Ordering::Acquire))
                .collect(),
            shared: self.shared.lock().base,
            dropped_seen: self.dropped_total(),
        });
        drop(set);
        TraceReader {
            tracer: self.clone(),
            id,
        }
    }

    /// One non-destructive poll for reader `id`: reads every ring and the
    /// side buffer up to their current tails, advances the reader's
    /// cursors, then reclaims slots behind the slowest reader.
    fn poll_reader(&self, id: u64) -> TraceBatch {
        let mut set = self.collect.lock();
        let idx = set
            .readers
            .iter()
            .position(|r| r.id == id)
            .expect("reader is registered until dropped");
        let mut events = Vec::new();
        let mut missed = 0u64;
        for (r, ring) in self.rings.iter().enumerate() {
            let head = ring.head.load(Ordering::Acquire);
            let tail = ring.tail.load(Ordering::Acquire);
            let cur = &mut set.readers[idx].rings[r];
            if *cur < head {
                // Another consumer (a drain, or reclaim on behalf of a
                // faster co-reader that has since unregistered) freed
                // events this reader never saw.
                missed += (head - *cur) as u64;
                *cur = head;
            }
            while *cur < tail {
                events.push(ring.read_at(*cur));
                *cur += 1;
            }
        }
        {
            let buf = self.shared.lock();
            let cur = &mut set.readers[idx].shared;
            if *cur < buf.base {
                missed += (buf.base - *cur) as u64;
                *cur = buf.base;
            }
            while *cur < buf.base + buf.events.len() {
                events.push(buf.events[*cur - buf.base]);
                *cur += 1;
            }
        }
        let total = self.dropped_total();
        let dropped = total.saturating_sub(set.readers[idx].dropped_seen);
        set.readers[idx].dropped_seen = total;
        self.reclaim(&set);
        events.sort_by_key(|e| e.ts);
        TraceBatch {
            events,
            dropped,
            missed,
            workers: self.rings.len(),
        }
    }

    /// Overflow total already surfaced to reader `id` through its poll
    /// deltas (the baseline for folding a final destructive drain into an
    /// incremental consumer without double-counting drops).
    fn reader_dropped_seen(&self, id: u64) -> u64 {
        self.collect
            .lock()
            .readers
            .iter()
            .find(|r| r.id == id)
            .map_or(0, |r| r.dropped_seen)
    }

    /// Advances each ring's head (and the side buffer's base) to the
    /// slowest registered reader's cursor, freeing the slots every reader
    /// has passed. With no readers the frontier is left alone — only the
    /// destructive drain consumes then.
    fn reclaim(&self, set: &ReaderSet) {
        if set.readers.is_empty() {
            return;
        }
        for (r, ring) in self.rings.iter().enumerate() {
            let min = set.readers.iter().map(|c| c.rings[r]).min().unwrap();
            if min > ring.head.load(Ordering::Relaxed) {
                ring.head.store(min, Ordering::Release);
            }
        }
        let min = set.readers.iter().map(|c| c.shared).min().unwrap();
        let mut buf = self.shared.lock();
        while buf.base < min && buf.events.pop_front().is_some() {
            buf.base += 1;
        }
    }

    /// Unregisters reader `id` and reclaims anything it alone was
    /// holding back.
    fn drop_reader(&self, id: u64) {
        let mut set = self.collect.lock();
        set.readers.retain(|c| c.id != id);
        self.reclaim(&set);
    }
}

/// A cursor-based, non-destructive reader over the tracer's rings.
///
/// Obtained from [`Observer::trace_reader`](crate::obs::Observer::trace_reader).
/// Each [`poll_events`](TraceReader::poll_events) call returns every event
/// recorded since the previous call (across all rings and the side
/// buffer, timestamp-sorted), concurrently with producers — no event is
/// ever returned twice to the same reader, and multiple readers on the
/// same runtime each get an independent cursor. Slots are only reclaimed
/// once every registered reader has passed them, so a second reader costs
/// ring capacity, not correctness.
///
/// Loss is accounted, never silent: [`TraceBatch::dropped`] reports
/// producer-side ring overflow since the last poll (raise
/// [`Config::trace_capacity`](crate::Config::trace_capacity) or poll more
/// often), and [`TraceBatch::missed`] reports events another consumer (a
/// destructive drain) freed before this reader saw them.
pub struct TraceReader {
    tracer: Arc<Tracer>,
    id: u64,
}

impl fmt::Debug for TraceReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceReader")
            .field("id", &self.id)
            .field("workers", &self.tracer.rings.len())
            .finish()
    }
}

impl TraceReader {
    /// Polls every ring and the side buffer for events recorded since the
    /// last poll. Non-destructive with respect to other readers; each
    /// batch is a consistent cut (every ring read up to its tail at poll
    /// time), sorted by timestamp.
    pub fn poll_events(&mut self) -> TraceBatch {
        self.tracer.poll_reader(self.id)
    }

    /// Number of worker rings this reader covers.
    pub fn workers(&self) -> usize {
        self.tracer.rings.len()
    }

    /// Producer-side overflow total already surfaced through this
    /// reader's poll deltas.
    pub(crate) fn dropped_seen(&self) -> u64 {
        self.tracer.reader_dropped_seen(self.id)
    }
}

impl Drop for TraceReader {
    fn drop(&mut self) {
        self.tracer.drop_reader(self.id);
    }
}

/// One [`TraceReader::poll_events`] result: the events recorded since the
/// previous poll, plus per-reader loss accounting.
#[derive(Debug, Clone, Default)]
pub struct TraceBatch {
    /// Events recorded since the last poll, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Events lost to producer-side ring overflow since the last poll
    /// (recorded nowhere; raise the trace capacity or poll faster).
    pub dropped: u64,
    /// Events another consumer (a destructive drain) reclaimed before
    /// this reader saw them — they exist in that consumer's snapshot,
    /// just not in this reader's stream.
    pub missed: u64,
    /// Number of worker rings polled.
    pub workers: usize,
}

impl TraceBatch {
    /// True when the poll returned nothing and lost nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0 && self.missed == 0
    }

    /// Converts the batch into a standalone [`Trace`]. Both loss kinds
    /// fold into [`Trace::dropped`]: from this batch's point of view a
    /// missed event is as gone as an overflowed one, and the auditor must
    /// treat the trace as incomplete either way.
    pub fn into_trace(self) -> Trace {
        Trace {
            events: self.events,
            dropped: self.dropped + self.missed,
            workers: self.workers,
        }
    }
}

/// A drained snapshot of the runtime's event history.
///
/// Obtained from [`Runtime::shutdown`](crate::Runtime::shutdown) (complete
/// and quiescent), from [`TraceBatch::into_trace`] (one incremental
/// reader poll), or from the deprecated
/// [`Runtime::trace_snapshot`](crate::Runtime::trace_snapshot)
/// (point-in-time destructive drain, racing with the running schedule).
#[derive(Debug, Clone)]
pub struct Trace {
    /// All recorded events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow (raise
    /// [`Config::trace_capacity`](crate::Config::trace_capacity) if
    /// non-zero and completeness matters).
    pub dropped: u64,
    /// Number of worker rings the trace was collected from.
    pub workers: usize,
}

impl Trace {
    /// Derives the paper-facing statistics from the recorded events.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_events(&self.events, self.workers)
    }

    /// Writes the events as Chrome-trace/Perfetto JSON (load via
    /// `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn export_chrome<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        export::write_chrome_trace(self, w)
    }

    /// Runs the invariant auditor over this trace — suspension/resume
    /// pairing, deque alloc/release balance, the Lemma 7 high-water bound.
    /// Convenience for [`crate::fault::audit`].
    pub fn audit(&self) -> crate::fault::AuditReport {
        crate::fault::audit(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts,
            worker: 0,
            kind,
        }
    }

    #[test]
    fn ring_roundtrip_in_order() {
        let r = Ring::with_capacity(8);
        for i in 0..5 {
            r.push(ev(i, EventKind::Park));
        }
        for i in 0..5 {
            assert_eq!(r.pop().unwrap().ts, i);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn ring_drops_newest_when_full() {
        let r = Ring::with_capacity(4); // rounded to 4
        for i in 0..6 {
            r.push(ev(i, EventKind::Park));
        }
        assert_eq!(r.dropped.load(Ordering::Relaxed), 2);
        // The *oldest* events survive.
        let got: Vec<u64> = std::iter::from_fn(|| r.pop()).map(|e| e.ts).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_wraps_after_drain() {
        let r = Ring::with_capacity(4);
        for round in 0..10u64 {
            r.push(ev(round, EventKind::Park));
            assert_eq!(r.pop().unwrap().ts, round);
        }
        assert_eq!(r.dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn ring_spsc_concurrent() {
        let r = std::sync::Arc::new(Ring::with_capacity(1 << 12));
        let n = 100_000u64;
        let producer = {
            let r = r.clone();
            std::thread::spawn(move || {
                for i in 0..n {
                    r.push(ev(i, EventKind::Park));
                }
            })
        };
        let mut last = None;
        let mut got = 0u64;
        while got < n {
            if let Some(e) = r.pop() {
                // Order is preserved even if overflow dropped some.
                if let Some(prev) = last {
                    assert!(e.ts > prev);
                }
                last = Some(e.ts);
                got += 1;
            }
            if got + r.dropped.load(Ordering::Relaxed) >= n && r.pop().is_none() {
                break;
            }
        }
        producer.join().unwrap();
        while r.pop().is_some() {
            got += 1;
        }
        assert_eq!(got + r.dropped.load(Ordering::Relaxed), n);
    }

    #[test]
    fn tracer_drain_merges_and_sorts() {
        let t = Tracer::new(2, 64);
        t.record(1, EventKind::Park);
        t.record(0, EventKind::Park);
        t.record_shared(NONE_ID, EventKind::Inject);
        let trace = t.drain();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.workers, 2);
        assert!(trace.events.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Second drain starts empty.
        assert!(t.drain().events.is_empty());
    }

    #[test]
    fn reader_polls_each_event_exactly_once() {
        let t = std::sync::Arc::new(Tracer::new(2, 64));
        let mut r = t.new_reader();
        t.record(0, EventKind::Park);
        t.record(1, EventKind::Park);
        t.record_shared(NONE_ID, EventKind::Inject);
        let b = r.poll_events();
        assert_eq!(b.events.len(), 3);
        assert_eq!((b.dropped, b.missed), (0, 0));
        assert!(r.poll_events().is_empty());
        t.record(0, EventKind::Park);
        assert_eq!(r.poll_events().events.len(), 1);
    }

    #[test]
    fn reader_reclaims_so_ring_never_fills_when_polled() {
        let t = std::sync::Arc::new(Tracer::new(1, 4));
        let mut r = t.new_reader();
        // 10 rounds of capacity-filling bursts, polled between bursts:
        // reclaim frees the slots so nothing is ever dropped.
        let mut seen = 0;
        for _ in 0..10 {
            for _ in 0..4 {
                t.record(0, EventKind::Park);
            }
            seen += r.poll_events().events.len();
        }
        assert_eq!(seen, 40);
        assert_eq!(t.dropped_total(), 0);
    }

    #[test]
    fn slow_reader_overflow_is_counted_not_lost() {
        let t = std::sync::Arc::new(Tracer::new(1, 4));
        let mut r = t.new_reader();
        // Burst past capacity without polling: 4 stored, 6 dropped.
        for _ in 0..10 {
            t.record(0, EventKind::Park);
        }
        let b = r.poll_events();
        assert_eq!(b.events.len(), 4);
        assert_eq!(b.dropped, 6);
        assert_eq!(b.missed, 0);
        // events + dropped account for every push — nothing silent.
        assert_eq!(b.events.len() as u64 + b.dropped, 10);
        // The delta was consumed; the next poll reports no new drops.
        assert!(r.poll_events().is_empty());
    }

    #[test]
    fn two_readers_have_independent_cursors() {
        let t = std::sync::Arc::new(Tracer::new(1, 64));
        let mut a = t.new_reader();
        let mut b = t.new_reader();
        for _ in 0..5 {
            t.record(0, EventKind::Park);
        }
        assert_eq!(a.poll_events().events.len(), 5);
        // Reader b still sees all 5: slots reclaim at the slowest cursor.
        assert_eq!(b.poll_events().events.len(), 5);
        for _ in 0..3 {
            t.record(0, EventKind::Park);
        }
        assert_eq!(b.poll_events().events.len(), 3);
        assert_eq!(a.poll_events().events.len(), 3);
        assert_eq!(t.dropped_total(), 0);
    }

    #[test]
    fn dropped_reader_stops_holding_back_reclaim() {
        let t = std::sync::Arc::new(Tracer::new(1, 4));
        let mut fast = t.new_reader();
        let slow = t.new_reader();
        for _ in 0..4 {
            t.record(0, EventKind::Park);
        }
        assert_eq!(fast.poll_events().events.len(), 4);
        // The lagging reader pins the slots: the ring is still full.
        t.record(0, EventKind::Park);
        assert_eq!(t.dropped_total(), 1);
        drop(slow);
        // Its cursor no longer pins the frontier; capacity is back. The
        // overflowed push is gone (drop-newest), surfaced as a count.
        t.record(0, EventKind::Park);
        assert_eq!(t.dropped_total(), 1);
        let b = fast.poll_events();
        assert_eq!(b.events.len(), 1);
        assert_eq!(b.dropped, 1);
    }

    #[test]
    fn drain_past_reader_counts_missed() {
        let t = std::sync::Arc::new(Tracer::new(1, 64));
        let mut r = t.new_reader();
        t.record(0, EventKind::Park);
        t.record(0, EventKind::Park);
        t.record_shared(NONE_ID, EventKind::Inject);
        // A destructive drain consumes events the reader never saw.
        assert_eq!(t.drain().events.len(), 3);
        let b = r.poll_events();
        assert!(b.events.is_empty());
        assert_eq!(b.missed, 3);
        // Fresh events flow to the reader again afterwards.
        t.record(0, EventKind::Park);
        assert_eq!(r.poll_events().events.len(), 1);
    }

    #[test]
    fn reader_poll_concurrent_with_producer_sees_everything() {
        let t = std::sync::Arc::new(Tracer::new(1, 1 << 12));
        let n = 50_000u64;
        // Register the reader before the producer starts so every overflow
        // drop lands in this reader's accounting window.
        let mut r = t.new_reader();
        let producer = {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..n {
                    // Tag pushes via the Unpark worker field so the reader
                    // can verify order and exactly-once delivery.
                    t.record(0, EventKind::Unpark { worker: i as u32 });
                }
            })
        };
        let mut seen = 0u64;
        let mut dropped = 0u64;
        let mut last: Option<u32> = None;
        while seen + dropped < n {
            let b = r.poll_events();
            for ev in &b.events {
                let EventKind::Unpark { worker } = ev.kind else {
                    panic!("unexpected event {ev:?}");
                };
                if let Some(prev) = last {
                    assert!(worker > prev, "duplicate or reordered event");
                }
                last = Some(worker);
            }
            seen += b.events.len() as u64;
            dropped += b.dropped;
            assert_eq!(b.missed, 0);
        }
        producer.join().unwrap();
        let tail = r.poll_events();
        assert_eq!(seen + tail.events.len() as u64 + dropped + tail.dropped, n);
    }

    #[test]
    fn batch_into_trace_folds_loss() {
        let t = std::sync::Arc::new(Tracer::new(1, 4));
        let mut r = t.new_reader();
        for _ in 0..6 {
            t.record(0, EventKind::Park);
        }
        let trace = r.poll_events().into_trace();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 2);
        assert_eq!(trace.workers, 1);
    }
}
