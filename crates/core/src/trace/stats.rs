//! Derived statistics: the paper's quantities measured on a real run.

use std::collections::HashMap;
use std::fmt;

use super::{EventKind, StealOutcome, TraceEvent};

/// Number of power-of-two latency buckets (covers 1ns..≈17min).
const BUCKETS: usize = 40;

/// In-flight suspension record while pairing lifecycle events:
/// `(suspend_ts, Some((enabled_at, ready_ts)))` once delivery was seen.
type Lifecycle = (Option<u64>, Option<(u64, u64)>);

/// A log₂-bucketed latency histogram over nanosecond samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` ns (bucket 0 also takes
/// zero). Quantiles are reported as the upper bound of the bucket the
/// quantile falls in — at most 2× off, which is plenty for the
/// order-of-magnitude latency questions the paper asks.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Adds one sample, in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        let idx = (63 - nanos.max(1).leading_zeros()) as usize;
        self.buckets[idx.min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds (saturating).
    pub fn sum_nanos(&self) -> u64 {
        self.sum
    }

    /// Iterates the buckets as `(upper_bound_ns, count)` pairs — bucket
    /// `i` covers `[2^i, 2^(i+1))` ns, reported by its upper bound.
    /// Counts are per-bucket (not cumulative); exporters wanting
    /// Prometheus-style cumulative `le` buckets accumulate while walking.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (1u64 << (i + 1).min(63), c))
    }

    /// True if no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample, in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Smallest sample, in nanoseconds (0 when empty).
    pub fn min_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, in nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket holding quantile `q` (`0.0..=1.0`), in
    /// nanoseconds. Returns 0 when empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }
}

/// Formats nanoseconds with a human unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{}.{}µs", ns / 1_000, (ns % 1_000) / 100),
        1_000_000..=999_999_999 => format!("{}.{}ms", ns / 1_000_000, (ns % 1_000_000) / 100_000),
        _ => format!(
            "{}.{}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 100_000_000
        ),
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(no samples)");
        }
        write!(
            f,
            "n={} min={} mean={} p50≤{} p90≤{} p99≤{} max={}",
            self.count,
            fmt_ns(self.min_nanos()),
            fmt_ns(self.mean_nanos()),
            fmt_ns(self.quantile_nanos(0.50)),
            fmt_ns(self.quantile_nanos(0.90)),
            fmt_ns(self.quantile_nanos(0.99)),
            fmt_ns(self.max_nanos()),
        )
    }
}

/// Statistics derived from a [`Trace`](super::Trace): every number the
/// ISSUE's empirical checks need, computed in one pass over the events.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct TraceStats {
    /// Steal attempts recorded (the paper's `R`).
    pub steal_attempts: u64,
    /// Attempts that returned a task.
    pub steal_successes: u64,
    /// Attempts that found an empty/freed victim.
    pub steal_empty: u64,
    /// Attempts abandoned after losing pop-top races.
    pub steal_lost_race: u64,
    /// Attempts that sampled a dead (freed, not reused) deque — the
    /// slot-array baseline's probe waste; ~0 under the live-set index.
    pub steal_dead: u64,
    /// Multi-task steal batches recorded (steal-half claims of ≥ 2).
    pub steal_batches: u64,
    /// Tasks claimed across all multi-task batches.
    pub steal_batch_tasks: u64,
    /// Largest single steal batch.
    pub max_steal_batch: u64,
    /// Suspensions registered.
    pub suspensions: u64,
    /// Resume events delivered (sum of batch lengths).
    pub resumes_delivered: u64,
    /// Resume batches delivered.
    pub resume_batches: u64,
    /// Largest delivered batch.
    pub max_resume_batch: u64,
    /// Deque switches (idle worker resumed a ready deque).
    pub deque_switches: u64,
    /// Live-set registry shard compactions.
    pub registry_compactions: u64,
    /// Parks recorded.
    pub parks: u64,
    /// Unparks recorded.
    pub unparks: u64,
    /// External injections recorded.
    pub injects: u64,
    /// I/O readiness waits registered with a reactor driver.
    pub io_registrations: u64,
    /// Kernel readiness events the reactor turned into completions.
    pub io_readiness_events: u64,
    /// I/O waits withdrawn without readiness (cancel/timeout/shutdown).
    pub io_deregistrations: u64,
    /// Suspension registration → enable (delivery) latency: the latency
    /// the operation actually incurred.
    pub suspend_to_enable: LatencyHistogram,
    /// Enable → ready latency: delivery until the owner drained the event
    /// into a deque (the scheduler's share of resume delay).
    pub enable_to_ready: LatencyHistogram,
    /// Ready → executed latency: in-deque wait until the resumed task's
    /// next poll.
    pub ready_to_exec: LatencyHistogram,
    /// Per-worker live-deque high-water marks (Lemma 7: ≤ `U + 1`).
    pub deque_high_water: Vec<u64>,
}

impl TraceStats {
    /// Computes the statistics from `events` recorded across `workers`
    /// rings.
    pub fn from_events(events: &[TraceEvent], workers: usize) -> TraceStats {
        let mut live = LiveStats::new(workers);
        live.observe(events);
        live.into_stats()
    }

    /// Fraction of steal attempts that succeeded (`0.0` when none).
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steal_successes as f64 / self.steal_attempts as f64
        }
    }

    /// The largest per-worker deque high-water mark.
    pub fn max_deque_high_water(&self) -> u64 {
        self.deque_high_water.iter().copied().max().unwrap_or(0)
    }
}

/// Incremental [`TraceStats`] folder for live observation: feed it
/// [`TraceReader`](super::TraceReader) batches as they arrive and read
/// the running statistics between polls. Suspension lifecycles are paired
/// across batches — a `Suspend` in one poll and its `ResumeExec` three
/// polls later still produce one latency sample.
#[derive(Debug, Clone, Default)]
pub struct LiveStats {
    stats: TraceStats,
    /// seq → (suspend_ts, (enabled_at, ready_ts)); carried across
    /// batches so lifecycles split over polls still pair up.
    pending: HashMap<u64, Lifecycle>,
}

impl LiveStats {
    /// Creates an empty folder covering `workers` rings.
    pub fn new(workers: usize) -> LiveStats {
        LiveStats {
            stats: TraceStats {
                deque_high_water: vec![0; workers],
                ..TraceStats::default()
            },
            pending: HashMap::new(),
        }
    }

    /// The statistics folded so far.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Consumes the folder, returning the statistics.
    pub fn into_stats(self) -> TraceStats {
        self.stats
    }

    /// Suspension lifecycles still in flight (seen but not yet executed).
    pub fn pending_lifecycles(&self) -> usize {
        self.pending.len()
    }

    /// Folds one batch of events into the running statistics.
    pub fn observe(&mut self, events: &[TraceEvent]) {
        let s = &mut self.stats;
        let pending = &mut self.pending;
        for ev in events {
            match ev.kind {
                EventKind::Steal { outcome, .. } => {
                    s.steal_attempts += 1;
                    match outcome {
                        StealOutcome::Success => s.steal_successes += 1,
                        StealOutcome::Empty => s.steal_empty += 1,
                        StealOutcome::LostRace => s.steal_lost_race += 1,
                        StealOutcome::Dead => s.steal_dead += 1,
                    }
                }
                EventKind::StealBatch { n, .. } => {
                    s.steal_batches += 1;
                    s.steal_batch_tasks += n as u64;
                    s.max_steal_batch = s.max_steal_batch.max(n as u64);
                }
                EventKind::Suspend { seq, .. } => {
                    s.suspensions += 1;
                    pending.entry(seq).or_default().0 = Some(ev.ts);
                }
                EventKind::Resume { batch_len, .. } => {
                    s.resume_batches += 1;
                    s.resumes_delivered += batch_len as u64;
                    s.max_resume_batch = s.max_resume_batch.max(batch_len as u64);
                }
                EventKind::ResumeReady { seq, enabled_at } => {
                    let entry = pending.entry(seq).or_default();
                    entry.1 = Some((enabled_at, ev.ts));
                }
                EventKind::ResumeExec { seq } => {
                    if let Some((suspend, Some((enabled_at, ready_ts)))) = pending.remove(&seq) {
                        if let Some(suspend_ts) = suspend {
                            s.suspend_to_enable
                                .record(enabled_at.saturating_sub(suspend_ts));
                        }
                        s.enable_to_ready
                            .record(ready_ts.saturating_sub(enabled_at));
                        s.ready_to_exec.record(ev.ts.saturating_sub(ready_ts));
                    }
                }
                EventKind::DequeSwitch { .. } => s.deque_switches += 1,
                EventKind::DequeAlloc { live } => {
                    if let Some(hw) = s.deque_high_water.get_mut(ev.worker as usize) {
                        *hw = (*hw).max(live as u64);
                    }
                }
                EventKind::DequeRelease { .. } => {}
                EventKind::RegistryCompact { .. } => s.registry_compactions += 1,
                EventKind::Park => s.parks += 1,
                EventKind::Unpark { .. } => s.unparks += 1,
                EventKind::Inject => s.injects += 1,
                EventKind::IoRegister { .. } => s.io_registrations += 1,
                EventKind::IoReady { .. } => s.io_readiness_events += 1,
                EventKind::IoDeregister { .. } => s.io_deregistrations += 1,
            }
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "steals            : {}/{} succeeded ({:.1}%), {} empty, {} lost races, {} dead",
            self.steal_successes,
            self.steal_attempts,
            self.steal_success_rate() * 100.0,
            self.steal_empty,
            self.steal_lost_race,
            self.steal_dead,
        )?;
        writeln!(
            f,
            "steal batches     : {} batches, {} tasks (max batch {})",
            self.steal_batches, self.steal_batch_tasks, self.max_steal_batch,
        )?;
        writeln!(
            f,
            "suspensions       : {} registered, {} resumed in {} batches (max batch {})",
            self.suspensions, self.resumes_delivered, self.resume_batches, self.max_resume_batch,
        )?;
        writeln!(f, "suspend→enable    : {}", self.suspend_to_enable)?;
        writeln!(f, "enable→ready      : {}", self.enable_to_ready)?;
        writeln!(f, "ready→executed    : {}", self.ready_to_exec)?;
        writeln!(
            f,
            "deque switches    : {}  parks: {}  unparks: {}  injects: {}  compactions: {}",
            self.deque_switches, self.parks, self.unparks, self.injects, self.registry_compactions,
        )?;
        writeln!(
            f,
            "io waits          : {} registered, {} readiness, {} deregistered",
            self.io_registrations, self.io_readiness_events, self.io_deregistrations,
        )?;
        write!(
            f,
            "deque high-water  : {:?} (max {})",
            self.deque_high_water,
            self.max_deque_high_water(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::{SuspendKind, NONE_ID};
    use super::*;

    fn ev(ts: u64, worker: u32, kind: EventKind) -> TraceEvent {
        TraceEvent { ts, worker, kind }
    }

    #[test]
    fn histogram_basics() {
        let mut h = LatencyHistogram::default();
        assert!(h.is_empty());
        for v in [100, 200, 400, 800, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min_nanos(), 100);
        assert_eq!(h.max_nanos(), 100_000);
        assert!(h.mean_nanos() > 0);
        // The median (3rd of 5) is 400, bucket [256,512) → upper bound 512.
        assert_eq!(h.quantile_nanos(0.5), 512);
        assert!(h.quantile_nanos(1.0) >= 100_000 / 2);
        assert!(!format!("{h}").is_empty());
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_nanos(), 0);
    }

    #[test]
    fn stats_steals_and_rate() {
        let mk = |o| EventKind::Steal {
            victim_deque: 1,
            victim_worker: 0,
            outcome: o,
        };
        let events = vec![
            ev(1, 0, mk(StealOutcome::Success)),
            ev(2, 0, mk(StealOutcome::Empty)),
            ev(3, 1, mk(StealOutcome::Empty)),
            ev(4, 1, mk(StealOutcome::LostRace)),
        ];
        let s = TraceStats::from_events(&events, 2);
        assert_eq!(s.steal_attempts, 4);
        assert_eq!(s.steal_successes, 1);
        assert_eq!(s.steal_empty, 2);
        assert_eq!(s.steal_lost_race, 1);
        assert!((s.steal_success_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn stats_steal_batches_counted() {
        let events = vec![
            ev(1, 0, EventKind::StealBatch { victim: 3, n: 4 }),
            ev(2, 1, EventKind::StealBatch { victim: 3, n: 2 }),
        ];
        let s = TraceStats::from_events(&events, 2);
        assert_eq!(s.steal_batches, 2);
        assert_eq!(s.steal_batch_tasks, 6);
        assert_eq!(s.max_steal_batch, 4);
        assert!(format!("{s}").contains("steal batches"));
    }

    #[test]
    fn stats_suspension_lifecycle_pairs_by_seq() {
        let events = vec![
            ev(
                100,
                0,
                EventKind::Suspend {
                    deque: 0,
                    kind: SuspendKind::Timer,
                    seq: 7,
                },
            ),
            ev(
                500,
                NONE_ID,
                EventKind::Resume {
                    batch_len: 1,
                    tick: 3,
                },
            ),
            ev(
                600,
                0,
                EventKind::ResumeReady {
                    seq: 7,
                    enabled_at: 500,
                },
            ),
            ev(900, 0, EventKind::ResumeExec { seq: 7 }),
        ];
        let s = TraceStats::from_events(&events, 1);
        assert_eq!(s.suspensions, 1);
        assert_eq!(s.resumes_delivered, 1);
        assert_eq!(s.suspend_to_enable.count(), 1);
        assert_eq!(s.suspend_to_enable.min_nanos(), 400);
        assert_eq!(s.enable_to_ready.min_nanos(), 100);
        assert_eq!(s.ready_to_exec.min_nanos(), 300);
    }

    #[test]
    fn stats_io_events_counted() {
        let events = vec![
            ev(1, 0, EventKind::IoRegister { token: 1 }),
            ev(2, NONE_ID, EventKind::IoReady { token: 1 }),
            ev(3, 0, EventKind::IoRegister { token: 2 }),
            ev(4, 0, EventKind::IoDeregister { token: 2 }),
        ];
        let s = TraceStats::from_events(&events, 1);
        assert_eq!(s.io_registrations, 2);
        assert_eq!(s.io_readiness_events, 1);
        assert_eq!(s.io_deregistrations, 1);
        assert!(format!("{s}").contains("io waits"));
    }

    #[test]
    fn live_stats_pairs_lifecycles_across_batches() {
        let mut ls = LiveStats::new(1);
        ls.observe(&[ev(
            100,
            0,
            EventKind::Suspend {
                deque: 0,
                kind: SuspendKind::Timer,
                seq: 7,
            },
        )]);
        assert_eq!(ls.stats().suspensions, 1);
        assert_eq!(ls.pending_lifecycles(), 1);
        ls.observe(&[ev(
            600,
            0,
            EventKind::ResumeReady {
                seq: 7,
                enabled_at: 500,
            },
        )]);
        ls.observe(&[ev(900, 0, EventKind::ResumeExec { seq: 7 })]);
        assert_eq!(ls.stats().suspend_to_enable.count(), 1);
        assert_eq!(ls.stats().suspend_to_enable.min_nanos(), 400);
        assert_eq!(ls.stats().ready_to_exec.min_nanos(), 300);
        assert_eq!(ls.pending_lifecycles(), 0);
    }

    #[test]
    fn histogram_buckets_iterate_with_bounds() {
        let mut h = LatencyHistogram::default();
        h.record(3); // bucket [2,4) → upper bound 4
        h.record(1000); // bucket [512,1024) → wait: 1000 < 1024, idx 9 → le 1024
        let nonzero: Vec<(u64, u64)> = h.buckets().filter(|&(_, c)| c > 0).collect();
        assert_eq!(nonzero, vec![(4, 1), (1024, 1)]);
        assert_eq!(h.sum_nanos(), 1003);
        assert_eq!(h.buckets().map(|(_, c)| c).sum::<u64>(), h.count());
    }

    #[test]
    fn stats_high_water_per_worker() {
        let events = vec![
            ev(1, 0, EventKind::DequeAlloc { live: 1 }),
            ev(2, 0, EventKind::DequeAlloc { live: 2 }),
            ev(3, 0, EventKind::DequeRelease { live: 1 }),
            ev(4, 1, EventKind::DequeAlloc { live: 5 }),
        ];
        let s = TraceStats::from_events(&events, 2);
        assert_eq!(s.deque_high_water, vec![2, 5]);
        assert_eq!(s.max_deque_high_water(), 5);
    }
}
