//! Chrome-trace/Perfetto JSON export (hand-rolled — the workspace builds
//! offline, without serde).
//!
//! Output follows the Trace Event Format's JSON-object flavor:
//! `{"displayTimeUnit": "ms", "traceEvents": [...]}` where each event is
//! an instant (`"ph": "i"`) on the recording worker's track, plus one
//! complete span (`"ph": "X"`) named `suspended` per fully observed
//! suspension lifecycle (registration → next poll). Timestamps are
//! microseconds with nanosecond fraction, as the format specifies.

use std::collections::HashMap;
use std::io::{self, Write};

use super::{EventKind, StealOutcome, SuspendKind, Trace, NONE_ID};

/// Track id used for events recorded off any worker thread.
const EXTERN_TID: u32 = 9_999;

fn tid(worker: u32) -> u32 {
    if worker == NONE_ID {
        EXTERN_TID
    } else {
        worker
    }
}

/// Nanoseconds → microsecond timestamp string with fractional part.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn outcome_str(o: StealOutcome) -> &'static str {
    match o {
        StealOutcome::Success => "success",
        StealOutcome::Empty => "empty",
        StealOutcome::LostRace => "lost_race",
        StealOutcome::Dead => "dead",
    }
}

fn kind_str(k: SuspendKind) -> &'static str {
    match k {
        SuspendKind::Timer => "timer",
        SuspendKind::External => "external",
    }
}

/// Writes `trace` in Chrome-trace JSON form.
pub(super) fn write_chrome_trace<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    let mut w = io::BufWriter::new(w);
    write!(w, "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [")?;
    let mut first = true;
    let mut emit = |w: &mut io::BufWriter<&mut W>, line: String| -> io::Result<()> {
        if first {
            first = false;
        } else {
            write!(w, ",")?;
        }
        write!(w, "\n  {line}")?;
        Ok(())
    };

    // Track names.
    for i in 0..trace.workers as u32 {
        emit(
            &mut w,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {i}, \
                 \"args\": {{\"name\": \"worker-{i}\"}}}}"
            ),
        )?;
    }
    emit(
        &mut w,
        format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {EXTERN_TID}, \
             \"args\": {{\"name\": \"external\"}}}}"
        ),
    )?;

    // Suspension lifecycles observed so far: seq → (suspend_ts, worker, kind).
    let mut suspended: HashMap<u64, (u64, u32, SuspendKind)> = HashMap::new();

    for ev in &trace.events {
        let t = tid(ev.worker);
        let ts = ts_us(ev.ts);
        let line = match ev.kind {
            EventKind::Steal {
                victim_deque,
                victim_worker,
                outcome,
            } => {
                let victim = if victim_deque == NONE_ID {
                    "null".to_string()
                } else {
                    victim_deque.to_string()
                };
                let owner = if victim_worker == NONE_ID {
                    "null".to_string()
                } else {
                    victim_worker.to_string()
                };
                format!(
                    "{{\"name\": \"steal\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                     \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"victim_deque\": {victim}, \
                     \"victim_worker\": {owner}, \"outcome\": \"{}\"}}}}",
                    outcome_str(outcome)
                )
            }
            EventKind::StealBatch { victim, n } => format!(
                "{{\"name\": \"steal_batch\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"victim\": {victim}, \"n\": {n}}}}}"
            ),
            EventKind::Suspend { deque, kind, seq } => {
                suspended.insert(seq, (ev.ts, ev.worker, kind));
                format!(
                    "{{\"name\": \"suspend\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                     \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"deque\": {deque}, \
                     \"kind\": \"{}\", \"seq\": {seq}}}}}",
                    kind_str(kind)
                )
            }
            EventKind::Resume { batch_len, tick } => format!(
                "{{\"name\": \"resume_batch\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"batch_len\": {batch_len}, \
                 \"tick\": {tick}}}}}"
            ),
            EventKind::ResumeReady { seq, enabled_at } => format!(
                "{{\"name\": \"resume_ready\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"seq\": {seq}, \
                 \"enabled_us\": {}}}}}",
                ts_us(enabled_at)
            ),
            EventKind::ResumeExec { seq } => {
                // Close the lifecycle span if its registration was seen.
                if let Some((start, worker, kind)) = suspended.remove(&seq) {
                    let dur = ts_us(ev.ts.saturating_sub(start));
                    emit(
                        &mut w,
                        format!(
                            "{{\"name\": \"suspended\", \"ph\": \"X\", \"pid\": 0, \
                             \"tid\": {}, \"ts\": {}, \"dur\": {dur}, \
                             \"args\": {{\"seq\": {seq}, \"kind\": \"{}\"}}}}",
                            tid(worker),
                            ts_us(start),
                            kind_str(kind)
                        ),
                    )?;
                }
                format!(
                    "{{\"name\": \"resume_exec\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                     \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"seq\": {seq}}}}}"
                )
            }
            EventKind::DequeSwitch { deque } => format!(
                "{{\"name\": \"deque_switch\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"deque\": {deque}}}}}"
            ),
            EventKind::DequeAlloc { live } => format!(
                "{{\"name\": \"deque_alloc\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"live\": {live}}}}}"
            ),
            EventKind::DequeRelease { live } => format!(
                "{{\"name\": \"deque_release\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"live\": {live}}}}}"
            ),
            EventKind::RegistryCompact { deque } => format!(
                "{{\"name\": \"registry_compact\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"deque\": {deque}}}}}"
            ),
            EventKind::Park => format!(
                "{{\"name\": \"park\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}}}"
            ),
            EventKind::Unpark { worker } => format!(
                "{{\"name\": \"unpark\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"worker\": {worker}}}}}"
            ),
            EventKind::Inject => format!(
                "{{\"name\": \"inject\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}}}"
            ),
            EventKind::IoRegister { token } => format!(
                "{{\"name\": \"io_register\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"token\": {token}}}}}"
            ),
            EventKind::IoReady { token } => format!(
                "{{\"name\": \"io_ready\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"token\": {token}}}}}"
            ),
            EventKind::IoDeregister { token } => format!(
                "{{\"name\": \"io_deregister\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                 \"tid\": {t}, \"ts\": {ts}, \"args\": {{\"token\": {token}}}}}"
            ),
        };
        emit(&mut w, line)?;
    }
    writeln!(w, "\n]}}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::super::TraceEvent;
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    ts: 1_500,
                    worker: 0,
                    kind: EventKind::Suspend {
                        deque: 0,
                        kind: SuspendKind::Timer,
                        seq: 1,
                    },
                },
                TraceEvent {
                    ts: 2_000,
                    worker: NONE_ID,
                    kind: EventKind::Resume {
                        batch_len: 1,
                        tick: 9,
                    },
                },
                TraceEvent {
                    ts: 2_200,
                    worker: 0,
                    kind: EventKind::ResumeReady {
                        seq: 1,
                        enabled_at: 2_000,
                    },
                },
                TraceEvent {
                    ts: 2_900,
                    worker: 0,
                    kind: EventKind::ResumeExec { seq: 1 },
                },
                TraceEvent {
                    ts: 3_000,
                    worker: 1,
                    kind: EventKind::Steal {
                        victim_deque: NONE_ID,
                        victim_worker: NONE_ID,
                        outcome: StealOutcome::Empty,
                    },
                },
            ],
            dropped: 0,
            workers: 2,
        }
    }

    #[test]
    fn export_shape() {
        let mut out = Vec::new();
        sample_trace().export_chrome(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(s.trim_end().ends_with("]}"));
        // The lifecycle produced a complete span with the right duration
        // (2900ns - 1500ns = 1400ns = 1.400µs).
        assert!(s.contains("\"ph\": \"X\""));
        assert!(s.contains("\"dur\": 1.400"));
        // Null victims serialize as JSON null, not a sentinel number.
        assert!(s.contains("\"victim_deque\": null"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let balance = |open: char, close: char| {
            s.chars().filter(|&c| c == open).count() == s.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn export_empty_trace() {
        let mut out = Vec::new();
        let t = Trace {
            events: Vec::new(),
            dropped: 0,
            workers: 1,
        };
        t.export_chrome(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("thread_name"));
        assert!(s.trim_end().ends_with("]}"));
    }
}
